//! `clientmap` — the user-facing CLI.
//!
//! ```text
//! clientmap run     [--scale tiny|small|paper] [--seed N] [--faults PROFILE] [--fault-seed N]
//!                   [--snapshot-in FILE] [--snapshot-out FILE] [--expiry-budget F]
//! clientmap export  [--scale ...] [--seed N] --out DIR
//! clientmap query   PREFIX [--scale ...] [--seed N]
//! clientmap stats   [--scale ...] [--seed N]
//! ```
//!
//! `run` executes the full pipeline and prints the headline numbers;
//! `--snapshot-out` saves the sweep's warm-start snapshot, and a later
//! run with `--snapshot-in` replays everything the snapshot already
//! knows, probing only what `--expiry-budget` (fraction of scopes
//! refreshed per sweep, e.g. `0.1`) or fault quarantine marks stale.
//! `export` writes the *shareable* datasets (technique outputs + the
//! APNIC-style estimates) as CSV; `query` answers the paper's title
//! question for one prefix ("does this network have clients?") from
//! the public activity map; `stats` summarises the generated world and
//! the most-active networks. (The evaluation harness regenerating
//! every paper table/figure is the separate `repro` binary in
//! `clientmap-bench`.)

use std::io::Write as _;
use std::path::PathBuf;

use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::datasets::export;
use clientmap::faults::{FaultConfig, FaultProfile};
use clientmap::net::Prefix;
use clientmap::store::{AsBitsets, Slash24Bitset, SweepSnapshot};

struct Args {
    scale: String,
    seed: u64,
    faults: FaultProfile,
    fault_seed: u64,
    out: Option<PathBuf>,
    snapshot_in: Option<PathBuf>,
    snapshot_out: Option<PathBuf>,
    expiry_budget: f64,
    positional: Vec<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        scale: "tiny".into(),
        seed: 2021,
        faults: FaultProfile::Off,
        fault_seed: 0,
        out: None,
        snapshot_in: None,
        snapshot_out: None,
        expiry_budget: 0.0,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = argv.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--seed" => {
                args.seed = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(2021);
                i += 2;
            }
            "--faults" => {
                let name = argv.get(i + 1).cloned().unwrap_or_default();
                args.faults = match name.parse() {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("bad --faults {name:?}: {e}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--fault-seed" => {
                args.fault_seed = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            "--out" => {
                args.out = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--snapshot-in" => {
                args.snapshot_in = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--snapshot-out" => {
                args.snapshot_out = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--expiry-budget" => {
                args.expiry_budget =
                    argv.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--expiry-budget needs a fraction, e.g. 0.1");
                            std::process::exit(2);
                        });
                i += 2;
            }
            other => {
                args.positional.push(other.to_string());
                i += 1;
            }
        }
    }
    args
}

fn config_for(args: &Args) -> PipelineConfig {
    let mut config = match args.scale.as_str() {
        "paper" => PipelineConfig::paper_scale(args.seed),
        "small" => PipelineConfig::small(args.seed),
        _ => PipelineConfig::tiny(args.seed),
    };
    config.faults = FaultConfig::profile(args.faults, args.fault_seed);
    config.probe.expiry_budget = args.expiry_budget;
    config
}

fn load_snapshot(path: &std::path::Path) -> SweepSnapshot {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read snapshot {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    match SweepSnapshot::decode(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snapshot {} is not usable: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn run_or_exit(config: PipelineConfig, prior: Option<SweepSnapshot>) -> PipelineOutput {
    match Pipeline::run_warm(config, prior) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: clientmap <run|export|query|stats> [--scale tiny|small|paper] [--seed N] \
         [--faults off|light|lossy|pop-churn] [--fault-seed N] [--out DIR] \
         [--snapshot-in FILE] [--snapshot-out FILE] [--expiry-budget F] [PREFIX]"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cmd = argv[0].clone();
    let args = parse_args(&argv[1..]);

    match cmd.as_str() {
        "run" => {
            let prior = args.snapshot_in.as_deref().map(load_snapshot);
            let warm = prior.is_some();
            let out = run_or_exit(config_for(&args), prior);
            println!("{}", out.report().headlines());
            if let Some(robustness) = out.report().robustness() {
                println!("{robustness}");
            }
            println!(
                "active space: {} /24s across {} hit scopes; {} resolvers with Chromium activity",
                out.cache_probe.active_set().num_slash24s(),
                out.cache_probe.hit_prefixes().len(),
                out.dns_logs.resolvers.len(),
            );
            if warm {
                let snap = out.metrics_snapshot();
                println!(
                    "warm start: {} of {} slots replayed from snapshot, {} probed live \
                     ({} new, {} expired, {} rescue, {} quarantine-dirty)",
                    snap.counter("cacheprobe.planner.skipped_warm"),
                    snap.counter("cacheprobe.planner.universe"),
                    snap.counter("cacheprobe.planner.planned"),
                    snap.counter("cacheprobe.planner.new"),
                    snap.counter("cacheprobe.planner.expired"),
                    snap.counter("cacheprobe.planner.rescued"),
                    snap.counter("cacheprobe.planner.dirty"),
                );
            }
            if let Some(path) = args.snapshot_out.as_deref() {
                match std::fs::write(path, out.sweep.encode()) {
                    Ok(()) => println!(
                        "wrote snapshot {} (epoch {})",
                        path.display(),
                        out.sweep.epoch
                    ),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        "export" => {
            let Some(dir) = args.out.clone() else {
                eprintln!("export requires --out DIR");
                std::process::exit(2);
            };
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
            let out = run_or_exit(config_for(&args), None);
            let rib = &out.sim.world().rib;
            let files = [
                (
                    "cache_probing.csv",
                    export::prefix_view_with_origins_csv(&out.bundle.cache_probing, rib),
                ),
                (
                    "dns_logs.csv",
                    export::prefix_view_csv(&out.bundle.dns_logs),
                ),
                ("apnic.csv", export::apnic_csv(&out.apnic)),
                (
                    "dns_logs_by_as.csv",
                    export::as_view_csv(&out.bundle.dns_logs_as),
                ),
            ];
            for (name, contents) in files {
                let path = dir.join(name);
                match std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(contents.as_bytes()))
                {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
            println!(
                "(the Microsoft-derived validation views are deliberately not exportable — \
                 see DESIGN.md)"
            );
        }
        "query" => {
            let Some(prefix_s) = args.positional.first() else {
                eprintln!("query requires a PREFIX argument, e.g. 1.2.3.0/24");
                std::process::exit(2);
            };
            let prefix: Prefix = match prefix_s.parse() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("bad prefix {prefix_s:?}: {e}");
                    std::process::exit(2);
                }
            };
            let out = run_or_exit(config_for(&args), None);
            let active = out.cache_probe.active_set();
            let dns_hit = out.bundle.dns_logs.set.intersects(prefix);
            let verdict = if active.contains_slash24(prefix) || active.intersects(prefix) {
                "ACTIVE: cache probing found client activity here"
            } else if dns_hit {
                "RESOLVER: a recursive resolver with Chromium clients lives here"
            } else {
                "no client signal from either public technique"
            };
            let asn = out
                .sim
                .world()
                .rib
                .origin_of_prefix(prefix)
                .map(|a| a.to_string())
                .unwrap_or_else(|| "unrouted".into());
            println!("{prefix} ({asn}): {verdict}");
        }
        "stats" => {
            let world = clientmap::world::World::generate(config_for(&args).world);
            println!(
                "world: {} ASes, {} routed /24s, {:.1}M users, {} resolvers, {} blocks",
                world.ases.len(),
                world.routed_slash24s(),
                world.total_users() / 1e6,
                world.resolvers.len(),
                world.blocks.len(),
            );
            let mut by_cat: std::collections::BTreeMap<&str, usize> = Default::default();
            for a in &world.ases {
                *by_cat.entry(a.category.label()).or_insert(0) += 1;
            }
            for (cat, n) in by_cat {
                println!("  {cat:<14} {n}");
            }
            // Per-AS activity: one AND+popcount per AS between its
            // announced space and the technique's active /24 set.
            let out = run_or_exit(config_for(&args), None);
            let active = Slash24Bitset::from_prefixes(&out.cache_probe.active_set().prefixes());
            let mut per_as = AsBitsets::from_rib(&out.sim.world().rib).active_slash24s(&active);
            per_as.sort_by_key(|(asn, n)| (std::cmp::Reverse(*n), asn.0));
            println!(
                "client activity (cache probing): {} active /24s across {} ASes; top networks:",
                active.count(),
                per_as.len(),
            );
            for (asn, n) in per_as.iter().take(10) {
                println!("  {asn:<10} {n} active /24s");
            }
        }
        _ => usage(),
    }
}
