//! `clientmap` — the user-facing CLI.
//!
//! ```text
//! clientmap run     [--scale tiny|small|paper] [--seed N] [--faults PROFILE] [--fault-seed N]
//!                   [--snapshot-in FILE] [--snapshot-out FILE] [--expiry-budget F]
//!                   [--duration-hours F] [--metrics FILE]
//! clientmap export  [--scale ...] [--seed N] --out DIR
//! clientmap query   PREFIX [--scale ...] [--seed N]
//! clientmap stats   [--scale ...] [--seed N]
//! clientmap worker  [--listen ADDR] [--once] [--fail-after N]
//! clientmap driver  --workers a:p,b:p,... [--shards N] [--connect-timeout S]
//!                   [run flags except --faults]
//! clientmap fleet-bench [--scale ...] [--seed N] [--threads-per-worker N]
//!                   [--workers-list 1,2,4] [--duration-hours F] [--json FILE]
//! ```
//!
//! `run` executes the full pipeline and prints the headline numbers;
//! `--snapshot-out` saves the sweep's warm-start snapshot, and a later
//! run with `--snapshot-in` replays everything the snapshot already
//! knows, probing only what `--expiry-budget` (fraction of scopes
//! refreshed per sweep, e.g. `0.1`) or fault quarantine marks stale.
//! `export` writes the *shareable* datasets (technique outputs + the
//! APNIC-style estimates) as CSV; `query` answers the paper's title
//! question for one prefix ("does this network have clients?") from
//! the public activity map; `stats` summarises the generated world and
//! the most-active networks. (The evaluation harness regenerating
//! every paper table/figure is the separate `repro` binary in
//! `clientmap-bench`.)
//!
//! `worker` and `driver` run the same pipeline as `run`, but with the
//! probing window sharded across worker processes over TCP: the driver
//! prepares the sweep, deals contiguous unit shards to its workers,
//! and merges their checksummed deltas in shard order, so driver
//! output is **byte-identical** to `run` at any ⟨worker, thread⟩
//! combination. `fleet-bench` spawns a local fleet at several sizes
//! and writes the scaling curve as JSON.

use std::io::{BufRead as _, Write as _};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use clientmap::core::{Pipeline, PipelineConfig, PipelineError, PipelineOutput};
use clientmap::datasets::export;
use clientmap::faults::{FaultConfig, FaultProfile};
use clientmap::fleet::{run_worker, FleetOptions, FleetSweep, WorkerOptions};
use clientmap::net::Prefix;
use clientmap::store::{AsBitsets, Slash24Bitset, SweepSnapshot};

struct Args {
    scale: String,
    seed: u64,
    faults: FaultProfile,
    fault_seed: u64,
    out: Option<PathBuf>,
    snapshot_in: Option<PathBuf>,
    snapshot_out: Option<PathBuf>,
    expiry_budget: f64,
    duration_hours: Option<f64>,
    metrics: Option<PathBuf>,
    listen: String,
    once: bool,
    fail_after: Option<u32>,
    workers: Vec<String>,
    shards: u32,
    connect_timeout_secs: u64,
    threads_per_worker: usize,
    workers_list: Vec<usize>,
    json: Option<PathBuf>,
    positional: Vec<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        scale: "tiny".into(),
        seed: 2021,
        faults: FaultProfile::Off,
        fault_seed: 0,
        out: None,
        snapshot_in: None,
        snapshot_out: None,
        expiry_budget: 0.0,
        duration_hours: None,
        metrics: None,
        listen: "127.0.0.1:0".into(),
        once: false,
        fail_after: None,
        workers: Vec::new(),
        shards: 0,
        connect_timeout_secs: 10,
        threads_per_worker: 1,
        workers_list: vec![1, 2, 4],
        json: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = argv.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--seed" => {
                args.seed = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(2021);
                i += 2;
            }
            "--faults" => {
                let name = argv.get(i + 1).cloned().unwrap_or_default();
                args.faults = match name.parse() {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("bad --faults {name:?}: {e}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--fault-seed" => {
                args.fault_seed = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            "--out" => {
                args.out = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--snapshot-in" => {
                args.snapshot_in = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--snapshot-out" => {
                args.snapshot_out = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--expiry-budget" => {
                args.expiry_budget =
                    argv.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--expiry-budget needs a fraction, e.g. 0.1");
                            std::process::exit(2);
                        });
                i += 2;
            }
            "--duration-hours" => {
                args.duration_hours = Some(
                    argv.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--duration-hours needs a number, e.g. 8");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            "--metrics" => {
                args.metrics = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--listen" => {
                args.listen = argv.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--listen needs an address, e.g. 127.0.0.1:7801");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--once" => {
                args.once = true;
                i += 1;
            }
            "--fail-after" => {
                args.fail_after = Some(
                    argv.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--fail-after needs a shard count");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            "--workers" => {
                let list = argv.get(i + 1).cloned().unwrap_or_default();
                args.workers
                    .extend(list.split(',').filter(|s| !s.is_empty()).map(String::from));
                i += 2;
            }
            "--shards" => {
                args.shards = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            "--connect-timeout" => {
                args.connect_timeout_secs =
                    argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(10);
                i += 2;
            }
            "--threads-per-worker" => {
                args.threads_per_worker = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or(1);
                i += 2;
            }
            "--workers-list" => {
                let list = argv.get(i + 1).cloned().unwrap_or_default();
                args.workers_list = list
                    .split(',')
                    .filter_map(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .collect();
                if args.workers_list.is_empty() {
                    eprintln!("--workers-list needs counts, e.g. 1,2,4");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--json" => {
                args.json = argv.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            other => {
                args.positional.push(other.to_string());
                i += 1;
            }
        }
    }
    args
}

fn config_for(args: &Args) -> PipelineConfig {
    let mut config = match args.scale.as_str() {
        "paper" => PipelineConfig::paper_scale(args.seed),
        "small" => PipelineConfig::small(args.seed),
        _ => PipelineConfig::tiny(args.seed),
    };
    config.faults = FaultConfig::profile(args.faults, args.fault_seed);
    config.probe.expiry_budget = args.expiry_budget;
    if let Some(hours) = args.duration_hours {
        config.probe.duration_hours = hours;
    }
    config
}

fn load_snapshot(path: &std::path::Path) -> SweepSnapshot {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read snapshot {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    match SweepSnapshot::decode(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snapshot {} is not usable: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn run_or_exit(config: PipelineConfig, prior: Option<SweepSnapshot>) -> PipelineOutput {
    match Pipeline::run_warm(config, prior) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The `run` subcommand's stdout, shared verbatim by `driver` (and the
/// fleet-bench identity check) so a fleet run is byte-identical to a
/// single-process run — fleet progress goes to stderr only.
fn run_report_string(out: &PipelineOutput, warm: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(s, "{}", out.report().headlines()).expect("string write");
    if let Some(robustness) = out.report().robustness() {
        writeln!(s, "{robustness}").expect("string write");
    }
    writeln!(
        s,
        "active space: {} /24s across {} hit scopes; {} resolvers with Chromium activity",
        out.cache_probe.active_set().num_slash24s(),
        out.cache_probe.hit_prefixes().len(),
        out.dns_logs.resolvers.len(),
    )
    .expect("string write");
    if warm {
        let snap = out.metrics_snapshot();
        writeln!(
            s,
            "warm start: {} of {} slots replayed from snapshot, {} probed live \
             ({} new, {} expired, {} rescue, {} quarantine-dirty)",
            snap.counter("cacheprobe.planner.skipped_warm"),
            snap.counter("cacheprobe.planner.universe"),
            snap.counter("cacheprobe.planner.planned"),
            snap.counter("cacheprobe.planner.new"),
            snap.counter("cacheprobe.planner.expired"),
            snap.counter("cacheprobe.planner.rescued"),
            snap.counter("cacheprobe.planner.dirty"),
        )
        .expect("string write");
    }
    s
}

fn print_run_report(out: &PipelineOutput, warm: bool) {
    print!("{}", run_report_string(out, warm));
}

/// The `run`/`driver` output files: optional warm-start snapshot and
/// metrics JSON dump.
fn write_run_outputs(out: &PipelineOutput, args: &Args) {
    if let Some(path) = args.snapshot_out.as_deref() {
        match std::fs::write(path, out.sweep.encode()) {
            Ok(()) => println!(
                "wrote snapshot {} (epoch {})",
                path.display(),
                out.sweep.epoch
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = args.metrics.as_deref() {
        if let Err(e) = std::fs::write(path, out.metrics_snapshot().to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Spawns a local `clientmap worker --once` child pinned to `threads`
/// probing threads, and parses the bound address off its first stdout
/// line (`clientmap worker listening on {addr}`).
fn spawn_local_worker(threads: usize) -> (std::process::Child, String) {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own binary: {e}");
        std::process::exit(1);
    });
    let mut child = match std::process::Command::new(exe)
        .args(["worker", "--listen", "127.0.0.1:0", "--once"])
        .env("CLIENTMAP_THREADS", threads.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot spawn worker: {e}");
            std::process::exit(1);
        }
    };
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let mut line = String::new();
    let got = std::io::BufReader::new(stdout).read_line(&mut line);
    if got.is_err() || line.trim().is_empty() {
        eprintln!("worker did not announce a listen address");
        let _ = child.kill();
        std::process::exit(1);
    }
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .unwrap_or_default()
        .to_string();
    (child, addr)
}

/// `fleet-bench`: a cold single-process baseline and a warm re-sweep,
/// then the same cold sweep fanned over each fleet size in
/// `--workers-list` — every process pinned to `--threads-per-worker`
/// probing threads so the curve isolates the fleet dimension. Verifies
/// every fleet report is byte-identical to the baseline and writes the
/// scaling curve as JSON (stdout, or `--json FILE`).
fn fleet_bench(args: &Args) {
    if args.faults != FaultProfile::Off {
        eprintln!("fleet-bench requires --faults off");
        std::process::exit(2);
    }
    let tpw = args.threads_per_worker;
    fn stage_secs(timings: &[(String, f64)], name: &str) -> f64 {
        timings
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    }

    eprintln!("fleet-bench: single-process cold baseline ({tpw} threads)");
    let mut cold_timings = Vec::new();
    let t0 = Instant::now();
    let baseline = clientmap::par::with_threads(tpw, || {
        Pipeline::run_warm_timed(config_for(args), None, &mut cold_timings)
    });
    let baseline = match baseline {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline failed: {e}");
            std::process::exit(1);
        }
    };
    let cold_total = t0.elapsed().as_secs_f64();
    let cold_probing = stage_secs(&cold_timings, "probing");
    let report_ref = run_report_string(&baseline, false);

    eprintln!("fleet-bench: single-process warm re-sweep");
    let mut warm_timings = Vec::new();
    let t0 = Instant::now();
    let warm = clientmap::par::with_threads(tpw, || {
        Pipeline::run_warm_timed(
            config_for(args),
            Some(baseline.sweep.clone()),
            &mut warm_timings,
        )
    });
    if let Err(e) = warm {
        eprintln!("warm re-sweep failed: {e}");
        std::process::exit(1);
    }
    let warm_total = t0.elapsed().as_secs_f64();
    let warm_probing = stage_secs(&warm_timings, "probing");

    let mut identical = true;
    let mut rows = Vec::new();
    for &w in &args.workers_list {
        eprintln!("fleet-bench: cold sweep over {w} worker(s) x {tpw} thread(s)");
        let mut children = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..w {
            let (child, addr) = spawn_local_worker(tpw);
            children.push(child);
            addrs.push(addr);
        }
        let shards = if args.shards == 0 {
            4 * w as u32
        } else {
            args.shards
        };
        let opts = FleetOptions {
            workers: addrs,
            num_shards: args.shards,
            connect_timeout: Duration::from_secs(args.connect_timeout_secs),
            ..FleetOptions::default()
        };
        let mut fleet = FleetSweep::new(opts, args.scale.clone());
        let mut timings = Vec::new();
        let t0 = Instant::now();
        let out = clientmap::par::with_threads(tpw, || {
            Pipeline::run_warm_timed_with(config_for(args), None, &mut timings, &mut fleet)
        });
        let out = match out {
            Ok(out) => out,
            Err(e) => {
                eprintln!("fleet run with {w} workers failed: {e}");
                for mut child in children {
                    let _ = child.kill();
                }
                std::process::exit(1);
            }
        };
        let total = t0.elapsed().as_secs_f64();
        for mut child in children {
            let _ = child.wait();
        }
        if run_report_string(&out, false) != report_ref {
            identical = false;
            eprintln!("fleet-bench: report MISMATCH at {w} workers");
        }
        rows.push((w, shards, total, stage_secs(&timings, "probing")));
    }

    use std::fmt::Write as _;
    let cfg = config_for(args);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"scale\": \"{}\",", args.scale).expect("string write");
    writeln!(json, "  \"seed\": {},", args.seed).expect("string write");
    writeln!(json, "  \"faults\": \"off\",").expect("string write");
    writeln!(json, "  \"host_cores\": {cores},").expect("string write");
    writeln!(json, "  \"threads_per_worker\": {tpw},").expect("string write");
    writeln!(json, "  \"duration_hours\": {},", cfg.probe.duration_hours).expect("string write");
    writeln!(
        json,
        "  \"single_process\": {{\n    \"cold\": {{ \"total_secs\": {cold_total:.3}, \
         \"probing_secs\": {cold_probing:.3} }},\n    \"warm\": {{ \"total_secs\": \
         {warm_total:.3}, \"probing_secs\": {warm_probing:.3}, \"speedup_vs_cold\": {:.2} }}\n  }},",
        cold_total / warm_total.max(1e-9)
    )
    .expect("string write");
    writeln!(json, "  \"fleet_cold\": [").expect("string write");
    let base_total = rows.first().map(|&(_, _, t, _)| t).unwrap_or(0.0);
    for (i, &(w, shards, total, probing)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{ \"workers\": {w}, \"shards\": {shards}, \"total_secs\": {total:.3}, \
             \"probing_secs\": {probing:.3}, \"speedup_vs_1_worker\": {:.2} }}{comma}",
            base_total / total.max(1e-9)
        )
        .expect("string write");
    }
    writeln!(json, "  ],").expect("string write");
    writeln!(json, "  \"identical_reports\": {identical},").expect("string write");
    let monotone = rows.windows(2).all(|w| w[1].2 < w[0].2);
    writeln!(json, "  \"monotonic_decreasing\": {monotone},").expect("string write");
    let note = if cores == 1 {
        "single-core host: workers time-slice one CPU and each duplicates world prep, \
         so the fleet curve measures overhead, not scaling"
    } else {
        "threads pinned per process so the curve isolates the worker dimension"
    };
    writeln!(json, "  \"note\": \"{note}\"").expect("string write");
    json.push_str("}\n");

    match args.json.as_deref() {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("fleet-bench: wrote {}", path.display());
        }
        None => print!("{json}"),
    }
    if !identical {
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: clientmap <run|export|query|stats|worker|driver|fleet-bench> \
         [--scale tiny|small|paper] [--seed N] \
         [--faults off|light|lossy|pop-churn] [--fault-seed N] [--out DIR] \
         [--snapshot-in FILE] [--snapshot-out FILE] [--expiry-budget F] \
         [--duration-hours F] [--metrics FILE] [PREFIX]\n\
         \x20      clientmap worker [--listen ADDR] [--once] [--fail-after N]\n\
         \x20      clientmap driver --workers host:port[,host:port...] [--shards N] \
         [--connect-timeout S] [run flags except --faults]\n\
         \x20      clientmap fleet-bench [--threads-per-worker N] [--workers-list 1,2,4] \
         [--json FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cmd = argv[0].clone();
    let args = parse_args(&argv[1..]);

    match cmd.as_str() {
        "run" => {
            let prior = args.snapshot_in.as_deref().map(load_snapshot);
            let warm = prior.is_some();
            let out = run_or_exit(config_for(&args), prior);
            print_run_report(&out, warm);
            write_run_outputs(&out, &args);
        }
        "worker" => {
            let opts = WorkerOptions {
                listen: args.listen.clone(),
                once: args.once,
                fail_after: args.fail_after,
            };
            if let Err(e) = run_worker(&opts) {
                eprintln!("worker failed: {e}");
                std::process::exit(1);
            }
        }
        "driver" => {
            clientmap::fleet::shutdown::install_sigint_handler();
            if args.faults != FaultProfile::Off {
                eprintln!(
                    "driver requires --faults off: fleet sweeps do not support fault injection"
                );
                std::process::exit(2);
            }
            if args.workers.is_empty() {
                eprintln!("driver requires --workers host:port[,host:port...]");
                std::process::exit(2);
            }
            let prior = args.snapshot_in.as_deref().map(load_snapshot);
            let warm = prior.is_some();
            let opts = FleetOptions {
                workers: args.workers.clone(),
                num_shards: args.shards,
                connect_timeout: Duration::from_secs(args.connect_timeout_secs),
                ..FleetOptions::default()
            };
            let mut fleet = FleetSweep::new(opts, args.scale.clone());
            let mut timings = Vec::new();
            let out = match Pipeline::run_warm_timed_with(
                config_for(&args),
                prior,
                &mut timings,
                &mut fleet,
            ) {
                Ok(out) => out,
                Err(PipelineError::Interrupted { completed, total }) => {
                    eprintln!(
                        "interrupted: {completed}/{total} shards complete; in-flight shards \
                         drained and workers released; no output written"
                    );
                    std::process::exit(130);
                }
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    std::process::exit(1);
                }
            };
            print_run_report(&out, warm);
            write_run_outputs(&out, &args);
        }
        "fleet-bench" => {
            fleet_bench(&args);
        }
        "export" => {
            let Some(dir) = args.out.clone() else {
                eprintln!("export requires --out DIR");
                std::process::exit(2);
            };
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
            let out = run_or_exit(config_for(&args), None);
            let rib = &out.sim.world().rib;
            let files = [
                (
                    "cache_probing.csv",
                    export::prefix_view_with_origins_csv(&out.bundle.cache_probing, rib),
                ),
                (
                    "dns_logs.csv",
                    export::prefix_view_csv(&out.bundle.dns_logs),
                ),
                ("apnic.csv", export::apnic_csv(&out.apnic)),
                (
                    "dns_logs_by_as.csv",
                    export::as_view_csv(&out.bundle.dns_logs_as),
                ),
            ];
            for (name, contents) in files {
                let path = dir.join(name);
                match std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(contents.as_bytes()))
                {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
            println!(
                "(the Microsoft-derived validation views are deliberately not exportable — \
                 see DESIGN.md)"
            );
        }
        "query" => {
            let Some(prefix_s) = args.positional.first() else {
                eprintln!("query requires a PREFIX argument, e.g. 1.2.3.0/24");
                std::process::exit(2);
            };
            let prefix: Prefix = match prefix_s.parse() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("bad prefix {prefix_s:?}: {e}");
                    std::process::exit(2);
                }
            };
            let out = run_or_exit(config_for(&args), None);
            let active = out.cache_probe.active_set();
            let dns_hit = out.bundle.dns_logs.set.intersects(prefix);
            let verdict = if active.contains_slash24(prefix) || active.intersects(prefix) {
                "ACTIVE: cache probing found client activity here"
            } else if dns_hit {
                "RESOLVER: a recursive resolver with Chromium clients lives here"
            } else {
                "no client signal from either public technique"
            };
            let asn = out
                .sim
                .world()
                .rib
                .origin_of_prefix(prefix)
                .map(|a| a.to_string())
                .unwrap_or_else(|| "unrouted".into());
            println!("{prefix} ({asn}): {verdict}");
        }
        "stats" => {
            let world = clientmap::world::World::generate(config_for(&args).world);
            println!(
                "world: {} ASes, {} routed /24s, {:.1}M users, {} resolvers, {} blocks",
                world.ases.len(),
                world.routed_slash24s(),
                world.total_users() / 1e6,
                world.resolvers.len(),
                world.blocks.len(),
            );
            let mut by_cat: std::collections::BTreeMap<&str, usize> = Default::default();
            for a in &world.ases {
                *by_cat.entry(a.category.label()).or_insert(0) += 1;
            }
            for (cat, n) in by_cat {
                println!("  {cat:<14} {n}");
            }
            // Per-AS activity: one AND+popcount per AS between its
            // announced space and the technique's active /24 set.
            let out = run_or_exit(config_for(&args), None);
            let active = Slash24Bitset::from_prefixes(&out.cache_probe.active_set().prefixes());
            let mut per_as = AsBitsets::from_rib(&out.sim.world().rib).active_slash24s(&active);
            per_as.sort_by_key(|(asn, n)| (std::cmp::Reverse(*n), asn.0));
            println!(
                "client activity (cache probing): {} active /24s across {} ASes; top networks:",
                active.count(),
                per_as.len(),
            );
            for (asn, n) in per_as.iter().take(10) {
                println!("  {asn:<10} {n} active /24s");
            }
        }
        _ => usage(),
    }
}
