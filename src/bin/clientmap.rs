//! `clientmap` — the user-facing CLI.
//!
//! ```text
//! clientmap run     [--scale tiny|small|paper] [--seed N] [--faults PROFILE] [--fault-seed N]
//!                   [--snapshot-in FILE] [--snapshot-out FILE] [--expiry-budget F]
//!                   [--duration-hours F] [--metrics FILE] [--clustered-probing]
//!                   [--cluster-epsilon F] [--cluster-escalate-below F]
//! clientmap export  [--scale ...] [--seed N] --out DIR
//! clientmap query   PREFIX [--scale ...] [--seed N]
//! clientmap query   --connect ADDR [--trace FILE | QUERY...]
//! clientmap stats   [--scale ...] [--seed N]
//! clientmap worker  [--listen ADDR] [--once] [--fail-after N]
//! clientmap driver  --workers a:p,b:p,... [--shards N] [--connect-timeout S]
//!                   [run flags except --faults]
//! clientmap fleet-bench [--scale ...] [--seed N] [--threads-per-worker N]
//!                   [--workers-list 1,2,4] [--duration-hours F] [--json FILE]
//! clientmap serve   [--listen ADDR] [--sweeps N] [--event-log FILE]
//!                   [--compact-every N] [run flags]
//! clientmap serve-bench [--sweeps N] [--storm-queries N]
//!                   [--connections-list 1,2,4] [--json FILE] [run flags]
//! ```
//!
//! `run` executes the full pipeline and prints the headline numbers;
//! `--snapshot-out` saves the sweep's warm-start snapshot, and a later
//! run with `--snapshot-in` replays everything the snapshot already
//! knows, probing only what `--expiry-budget` (fraction of scopes
//! refreshed per sweep, e.g. `0.1`) or fault quarantine marks stale.
//! `export` writes the *shareable* datasets (technique outputs + the
//! APNIC-style estimates) as CSV; `query` answers the paper's title
//! question for one prefix ("does this network have clients?") from
//! the public activity map; `stats` summarises the generated world and
//! the most-active networks. (The evaluation harness regenerating
//! every paper table/figure is the separate `repro` binary in
//! `clientmap-bench`.)
//!
//! `worker` and `driver` run the same pipeline as `run`, but with the
//! probing window sharded across worker processes over TCP: the driver
//! prepares the sweep, deals contiguous unit shards to its workers,
//! and merges their checksummed deltas in shard order, so driver
//! output is **byte-identical** to `run` at any ⟨worker, thread⟩
//! combination. `fleet-bench` spawns a local fleet at several sizes
//! and writes the scaling curve as JSON.
//!
//! `serve` keeps the sweep store resident: it chains `--sweeps` warm
//! re-sweeps, appends each sweep's verdict delta to an append-only
//! checksummed event log (`--event-log`), publishes an immutable store
//! generation per sweep, and answers per-AS / per-country / per-prefix
//! activity queries, top-K rankings, ECDFs, and generation
//! introspection over TCP while sweeping. `query --connect` is the
//! matching client (one query per argument line, or a `--trace` file);
//! `serve-bench` runs an in-process service and storms it with a
//! seeded synthetic query mix, writing the queries/sec curve as JSON.

use std::io::{BufRead as _, Write as _};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::{Duration, Instant};

use clientmap::core::{Pipeline, PipelineConfig, PipelineError, PipelineOutput};
use clientmap::datasets::export;
use clientmap::faults::{FaultConfig, FaultProfile};
use clientmap::fleet::{run_worker, FleetOptions, FleetSweep, WorkerOptions};
use clientmap::net::Prefix;
use clientmap::serve::{
    query_storm, run_trace, serve, Query, QueryClient, ServeOptions, StormOptions,
};
use clientmap::store::{AsBitsets, Slash24Bitset, SweepSnapshot};

/// One typed reason the command line could not be used. Every parse
/// failure funnels through here (and then through [`usage`]) — no
/// subcommand rolls its own `eprintln!`/`exit` pair.
#[derive(Debug)]
enum CliError {
    /// A flag was given without its value.
    MissingValue(&'static str, &'static str),
    /// A flag's value did not parse.
    BadValue(&'static str, String, &'static str),
    /// A subcommand-level constraint failed (missing required flag,
    /// forbidden combination).
    Invalid(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingValue(flag, hint) => {
                write!(f, "{flag} needs a value, e.g. {flag} {hint}")
            }
            CliError::BadValue(flag, got, hint) => {
                write!(f, "bad {flag} {got:?}, expected e.g. {hint}")
            }
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

/// The flags shared by every pipeline-running subcommand (`run`,
/// `driver`, `serve`, `fleet-bench`, `serve-bench`, `export`, `query`,
/// `stats`): which world, which probing knobs, which outputs.
struct CommonOpts {
    scale: String,
    seed: u64,
    faults: FaultProfile,
    fault_seed: u64,
    snapshot_in: Option<PathBuf>,
    snapshot_out: Option<PathBuf>,
    expiry_budget: f64,
    duration_hours: Option<f64>,
    metrics: Option<PathBuf>,
    clustered_probing: bool,
    cluster_epsilon: Option<f64>,
    cluster_escalate_below: Option<f64>,
}

impl CommonOpts {
    /// The pipeline configuration these flags describe.
    fn config(&self) -> PipelineConfig {
        let mut config = match self.scale.as_str() {
            "paper" => PipelineConfig::paper_scale(self.seed),
            "small" => PipelineConfig::small(self.seed),
            _ => PipelineConfig::tiny(self.seed),
        };
        config.faults = FaultConfig::profile(self.faults, self.fault_seed);
        config.probe.expiry_budget = self.expiry_budget;
        if let Some(hours) = self.duration_hours {
            config.probe.duration_hours = hours;
        }
        config.probe.clustered_probing = self.clustered_probing;
        if let Some(eps) = self.cluster_epsilon {
            config.probe.cluster_epsilon = eps;
        }
        if let Some(below) = self.cluster_escalate_below {
            config.probe.cluster_escalate_below = below;
        }
        config
    }
}

struct Args {
    common: CommonOpts,
    out: Option<PathBuf>,
    listen: String,
    once: bool,
    fail_after: Option<u32>,
    workers: Vec<String>,
    shards: u32,
    connect_timeout_secs: u64,
    io_timeout_secs: u64,
    fail_sweep: Option<u32>,
    threads_per_worker: usize,
    workers_list: Vec<usize>,
    json: Option<PathBuf>,
    sweeps: u32,
    event_log: Option<PathBuf>,
    compact_every: u32,
    connect: Option<String>,
    trace: Option<String>,
    storm_queries: u64,
    connections_list: Vec<u32>,
    positional: Vec<String>,
}

/// The one flag parser every subcommand shares. Unknown tokens land in
/// `positional` (prefix/query words); every malformed value is a typed
/// [`CliError`].
fn parse_args(argv: &[String]) -> Result<Args, CliError> {
    let mut args = Args {
        common: CommonOpts {
            scale: "tiny".into(),
            seed: 2021,
            faults: FaultProfile::Off,
            fault_seed: 0,
            snapshot_in: None,
            snapshot_out: None,
            expiry_budget: 0.0,
            duration_hours: None,
            metrics: None,
            clustered_probing: false,
            cluster_epsilon: None,
            cluster_escalate_below: None,
        },
        out: None,
        listen: "127.0.0.1:0".into(),
        once: false,
        fail_after: None,
        workers: Vec::new(),
        shards: 0,
        connect_timeout_secs: 10,
        io_timeout_secs: 600,
        fail_sweep: None,
        threads_per_worker: 1,
        workers_list: vec![1, 2, 4],
        json: None,
        sweeps: 3,
        event_log: None,
        compact_every: 0,
        connect: None,
        trace: None,
        storm_queries: 2_000,
        connections_list: vec![1, 2, 4, 8],
        positional: Vec::new(),
    };

    /// `argv[i + 1]` as the raw value of `flag`, or the typed error.
    fn raw<'a>(
        argv: &'a [String],
        i: usize,
        flag: &'static str,
        hint: &'static str,
    ) -> Result<&'a str, CliError> {
        argv.get(i + 1)
            .map(String::as_str)
            .ok_or(CliError::MissingValue(flag, hint))
    }

    /// `argv[i + 1]` parsed as `T`, or the typed error.
    fn val<T: FromStr>(
        argv: &[String],
        i: usize,
        flag: &'static str,
        hint: &'static str,
    ) -> Result<T, CliError> {
        let s = raw(argv, i, flag, hint)?;
        s.parse()
            .map_err(|_| CliError::BadValue(flag, s.to_string(), hint))
    }

    /// A comma-separated list parsed as `Vec<T>` (empty = error).
    fn list<T: FromStr>(
        argv: &[String],
        i: usize,
        flag: &'static str,
        hint: &'static str,
    ) -> Result<Vec<T>, CliError> {
        let s = raw(argv, i, flag, hint)?;
        let parsed: Vec<T> = s
            .split(',')
            .filter(|w| !w.is_empty())
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| CliError::BadValue(flag, s.to_string(), hint))?;
        if parsed.is_empty() {
            return Err(CliError::BadValue(flag, s.to_string(), hint));
        }
        Ok(parsed)
    }

    let mut i = 0;
    while i < argv.len() {
        let mut consumed = 2;
        match argv[i].as_str() {
            "--scale" => args.common.scale = raw(argv, i, "--scale", "tiny")?.to_string(),
            "--seed" => args.common.seed = val(argv, i, "--seed", "2021")?,
            "--faults" => args.common.faults = val(argv, i, "--faults", "lossy")?,
            "--fault-seed" => args.common.fault_seed = val(argv, i, "--fault-seed", "7")?,
            "--out" => args.out = Some(PathBuf::from(raw(argv, i, "--out", "DIR")?)),
            "--snapshot-in" => {
                args.common.snapshot_in =
                    Some(PathBuf::from(raw(argv, i, "--snapshot-in", "FILE")?))
            }
            "--snapshot-out" => {
                args.common.snapshot_out =
                    Some(PathBuf::from(raw(argv, i, "--snapshot-out", "FILE")?))
            }
            "--expiry-budget" => {
                args.common.expiry_budget = val(argv, i, "--expiry-budget", "0.1")?
            }
            "--duration-hours" => {
                args.common.duration_hours = Some(val(argv, i, "--duration-hours", "8")?)
            }
            "--metrics" => {
                args.common.metrics = Some(PathBuf::from(raw(argv, i, "--metrics", "FILE")?))
            }
            "--clustered-probing" => {
                args.common.clustered_probing = true;
                consumed = 1;
            }
            "--cluster-epsilon" => {
                args.common.cluster_epsilon = Some(val(argv, i, "--cluster-epsilon", "0.25")?)
            }
            "--cluster-escalate-below" => {
                args.common.cluster_escalate_below =
                    Some(val(argv, i, "--cluster-escalate-below", "0.5")?)
            }
            "--listen" => args.listen = raw(argv, i, "--listen", "127.0.0.1:7801")?.to_string(),
            "--once" => {
                args.once = true;
                consumed = 1;
            }
            "--fail-after" => args.fail_after = Some(val(argv, i, "--fail-after", "2")?),
            "--workers" => args.workers = list(argv, i, "--workers", "host:port,host:port")?,
            "--shards" => args.shards = val(argv, i, "--shards", "8")?,
            "--connect-timeout" => {
                args.connect_timeout_secs = val(argv, i, "--connect-timeout", "10")?
            }
            "--io-timeout" => {
                args.io_timeout_secs = val::<u64>(argv, i, "--io-timeout", "600")?.max(1)
            }
            "--fail-sweep" => args.fail_sweep = Some(val(argv, i, "--fail-sweep", "2")?),
            "--threads-per-worker" => {
                args.threads_per_worker = val::<usize>(argv, i, "--threads-per-worker", "2")?.max(1)
            }
            "--workers-list" => args.workers_list = list(argv, i, "--workers-list", "1,2,4")?,
            "--json" => args.json = Some(PathBuf::from(raw(argv, i, "--json", "FILE")?)),
            "--sweeps" => args.sweeps = val(argv, i, "--sweeps", "3")?,
            "--event-log" => {
                args.event_log = Some(PathBuf::from(raw(argv, i, "--event-log", "FILE")?))
            }
            "--compact-every" => args.compact_every = val(argv, i, "--compact-every", "4")?,
            "--connect" => {
                args.connect = Some(raw(argv, i, "--connect", "127.0.0.1:7900")?.to_string())
            }
            "--trace" => args.trace = Some(raw(argv, i, "--trace", "FILE")?.to_string()),
            "--storm-queries" => args.storm_queries = val(argv, i, "--storm-queries", "2000")?,
            "--connections-list" => {
                args.connections_list = list(argv, i, "--connections-list", "1,2,4,8")?
            }
            other => {
                args.positional.push(other.to_string());
                consumed = 1;
            }
        }
        i += consumed;
    }
    Ok(args)
}

fn load_snapshot(path: &std::path::Path) -> SweepSnapshot {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read snapshot {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    match SweepSnapshot::decode(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("snapshot {} is not usable: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn run_or_exit(config: PipelineConfig, prior: Option<SweepSnapshot>) -> PipelineOutput {
    match Pipeline::run_warm(config, prior) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The `run` subcommand's stdout, shared verbatim by `driver` (and the
/// fleet-bench identity check) so a fleet run is byte-identical to a
/// single-process run — fleet progress goes to stderr only.
fn run_report_string(out: &PipelineOutput, warm: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(s, "{}", out.report().headlines()).expect("string write");
    if let Some(robustness) = out.report().robustness() {
        writeln!(s, "{robustness}").expect("string write");
    }
    if let Some(ablation) = out.report().cluster_ablation() {
        writeln!(s, "{ablation}").expect("string write");
    }
    writeln!(
        s,
        "active space: {} /24s across {} hit scopes; {} resolvers with Chromium activity",
        out.cache_probe.active_set().num_slash24s(),
        out.cache_probe.hit_prefixes().len(),
        out.dns_logs.resolvers.len(),
    )
    .expect("string write");
    if warm {
        let snap = out.metrics_snapshot();
        writeln!(
            s,
            "warm start: {} of {} slots replayed from snapshot, {} probed live \
             ({} new, {} expired, {} rescue, {} quarantine-dirty)",
            snap.counter("cacheprobe.planner.skipped_warm"),
            snap.counter("cacheprobe.planner.universe"),
            snap.counter("cacheprobe.planner.planned"),
            snap.counter("cacheprobe.planner.new"),
            snap.counter("cacheprobe.planner.expired"),
            snap.counter("cacheprobe.planner.rescued"),
            snap.counter("cacheprobe.planner.dirty"),
        )
        .expect("string write");
    }
    s
}

fn print_run_report(out: &PipelineOutput, warm: bool) {
    print!("{}", run_report_string(out, warm));
}

/// The `run`/`driver` output files: optional warm-start snapshot and
/// metrics JSON dump.
fn write_run_outputs(out: &PipelineOutput, common: &CommonOpts) {
    if let Some(path) = common.snapshot_out.as_deref() {
        match std::fs::write(path, out.sweep.encode()) {
            Ok(()) => println!(
                "wrote snapshot {} (epoch {})",
                path.display(),
                out.sweep.epoch
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = common.metrics.as_deref() {
        if let Err(e) = std::fs::write(path, out.metrics_snapshot().to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Spawns a local `clientmap worker --once` child pinned to `threads`
/// probing threads, and parses the bound address off its first stdout
/// line (`clientmap worker listening on {addr}`).
fn spawn_local_worker(threads: usize) -> (std::process::Child, String) {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate own binary: {e}");
        std::process::exit(1);
    });
    let mut child = match std::process::Command::new(exe)
        .args(["worker", "--listen", "127.0.0.1:0", "--once"])
        .env("CLIENTMAP_THREADS", threads.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot spawn worker: {e}");
            std::process::exit(1);
        }
    };
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let mut line = String::new();
    let got = std::io::BufReader::new(stdout).read_line(&mut line);
    if got.is_err() || line.trim().is_empty() {
        eprintln!("worker did not announce a listen address");
        let _ = child.kill();
        std::process::exit(1);
    }
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .unwrap_or_default()
        .to_string();
    (child, addr)
}

/// `fleet-bench`: a cold single-process baseline and a warm re-sweep,
/// then the same cold sweep fanned over each fleet size in
/// `--workers-list` — every process pinned to `--threads-per-worker`
/// probing threads so the curve isolates the fleet dimension. Verifies
/// every fleet report is byte-identical to the baseline and writes the
/// scaling curve as JSON (stdout, or `--json FILE`).
fn fleet_bench(args: &Args) {
    let tpw = args.threads_per_worker;
    fn stage_secs(timings: &[(String, f64)], name: &str) -> f64 {
        timings
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    }

    eprintln!("fleet-bench: single-process cold baseline ({tpw} threads)");
    let mut cold_timings = Vec::new();
    let t0 = Instant::now();
    let baseline = clientmap::par::with_threads(tpw, || {
        Pipeline::run_warm_timed(args.common.config(), None, &mut cold_timings)
    });
    let baseline = match baseline {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline failed: {e}");
            std::process::exit(1);
        }
    };
    let cold_total = t0.elapsed().as_secs_f64();
    let cold_probing = stage_secs(&cold_timings, "probing");
    let report_ref = run_report_string(&baseline, false);

    eprintln!("fleet-bench: single-process warm re-sweep");
    let mut warm_timings = Vec::new();
    let t0 = Instant::now();
    let warm = clientmap::par::with_threads(tpw, || {
        Pipeline::run_warm_timed(
            args.common.config(),
            Some(baseline.sweep.clone()),
            &mut warm_timings,
        )
    });
    if let Err(e) = warm {
        eprintln!("warm re-sweep failed: {e}");
        std::process::exit(1);
    }
    let warm_total = t0.elapsed().as_secs_f64();
    let warm_probing = stage_secs(&warm_timings, "probing");

    let mut identical = true;
    let mut rows = Vec::new();
    for &w in &args.workers_list {
        eprintln!("fleet-bench: cold sweep over {w} worker(s) x {tpw} thread(s)");
        let mut children = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..w {
            let (child, addr) = spawn_local_worker(tpw);
            children.push(child);
            addrs.push(addr);
        }
        let shards = if args.shards == 0 {
            4 * w as u32
        } else {
            args.shards
        };
        let opts = FleetOptions {
            workers: addrs,
            num_shards: args.shards,
            connect_timeout: Duration::from_secs(args.connect_timeout_secs),
            io_timeout: Duration::from_secs(args.io_timeout_secs),
        };
        let mut fleet = FleetSweep::new(opts, args.common.scale.clone());
        let mut timings = Vec::new();
        let t0 = Instant::now();
        let out = clientmap::par::with_threads(tpw, || {
            Pipeline::run_warm_timed_with(args.common.config(), None, &mut timings, &mut fleet)
        });
        let out = match out {
            Ok(out) => out,
            Err(e) => {
                eprintln!("fleet run with {w} workers failed: {e}");
                for mut child in children {
                    let _ = child.kill();
                }
                std::process::exit(1);
            }
        };
        let total = t0.elapsed().as_secs_f64();
        for mut child in children {
            let _ = child.wait();
        }
        if run_report_string(&out, false) != report_ref {
            identical = false;
            eprintln!("fleet-bench: report MISMATCH at {w} workers");
        }
        rows.push((w, shards, total, stage_secs(&timings, "probing")));
    }

    use std::fmt::Write as _;
    let cfg = args.common.config();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"scale\": \"{}\",", args.common.scale).expect("string write");
    writeln!(json, "  \"seed\": {},", args.common.seed).expect("string write");
    writeln!(json, "  \"faults\": \"{}\",", args.common.faults.as_str()).expect("string write");
    writeln!(json, "  \"host_cores\": {cores},").expect("string write");
    writeln!(json, "  \"threads_per_worker\": {tpw},").expect("string write");
    writeln!(json, "  \"duration_hours\": {},", cfg.probe.duration_hours).expect("string write");
    writeln!(
        json,
        "  \"single_process\": {{\n    \"cold\": {{ \"total_secs\": {cold_total:.3}, \
         \"probing_secs\": {cold_probing:.3} }},\n    \"warm\": {{ \"total_secs\": \
         {warm_total:.3}, \"probing_secs\": {warm_probing:.3}, \"speedup_vs_cold\": {:.2} }}\n  }},",
        cold_total / warm_total.max(1e-9)
    )
    .expect("string write");
    writeln!(json, "  \"fleet_cold\": [").expect("string write");
    let base_total = rows.first().map(|&(_, _, t, _)| t).unwrap_or(0.0);
    for (i, &(w, shards, total, probing)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{ \"workers\": {w}, \"shards\": {shards}, \"total_secs\": {total:.3}, \
             \"probing_secs\": {probing:.3}, \"speedup_vs_1_worker\": {:.2} }}{comma}",
            base_total / total.max(1e-9)
        )
        .expect("string write");
    }
    writeln!(json, "  ],").expect("string write");
    writeln!(json, "  \"identical_reports\": {identical},").expect("string write");
    let monotone = rows.windows(2).all(|w| w[1].2 < w[0].2);
    writeln!(json, "  \"monotonic_decreasing\": {monotone},").expect("string write");
    let note = if cores == 1 {
        "single-core host: workers time-slice one CPU and each duplicates world prep, \
         so the fleet curve measures overhead, not scaling"
    } else {
        "threads pinned per process so the curve isolates the worker dimension"
    };
    writeln!(json, "  \"note\": \"{note}\"").expect("string write");
    json.push_str("}\n");

    write_json_output(&json, args.json.as_deref(), "fleet-bench");
    if !identical {
        std::process::exit(1);
    }
}

/// `serve`: the resident sweep service (see `clientmap-serve`).
fn cmd_serve(args: &Args) {
    let prior = args.common.snapshot_in.as_deref().map(load_snapshot);
    let log_path = args
        .event_log
        .clone()
        .unwrap_or_else(|| PathBuf::from("clientmap-events.cmel"));
    let opts = ServeOptions {
        addr: args.listen.clone(),
        config: args.common.config(),
        sweeps: args.sweeps,
        prior,
        log_path: log_path.clone(),
        compact_every: args.compact_every,
        snapshot_out: args.common.snapshot_out.clone(),
        io_timeout: Duration::from_secs(args.io_timeout_secs),
        fail_sweep: args.fail_sweep,
        ready: None,
    };
    match serve(opts) {
        Ok(s) => println!(
            "serve: {} sweeps published (final epoch {}); event log {} holds {} records \
             in {} bytes; {} queries answered{}",
            s.sweeps,
            s.final_epoch,
            log_path.display(),
            s.log_records,
            s.log_len,
            s.queries_answered,
            if s.degraded {
                "; DEGRADED: the sweep chain died mid-run (see the failure record in the log)"
            } else {
                ""
            }
        ),
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `serve-bench`: an in-process service stormed with a seeded query
/// mix; writes the queries/sec curve as JSON.
fn cmd_serve_bench(args: &Args) {
    let log_path =
        std::env::temp_dir().join(format!("clientmap-serve-bench-{}.cmel", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        config: args.common.config(),
        sweeps: args.sweeps.max(1),
        prior: None,
        log_path: log_path.clone(),
        compact_every: args.compact_every,
        snapshot_out: None,
        io_timeout: Duration::from_secs(args.io_timeout_secs),
        fail_sweep: None,
        ready: Some(ready_tx),
    };
    let sweeps = opts.sweeps;
    let server = std::thread::spawn(move || serve(opts));
    let Ok(addr) = ready_rx.recv() else {
        eprintln!("serve-bench: service never bound");
        std::process::exit(1);
    };
    let addr = addr.to_string();

    // Storm only once every generation is published, so each curve
    // point queries the same (final) generation.
    let mut control = match QueryClient::connect(&addr, Duration::from_secs(args.io_timeout_secs)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve-bench: cannot connect: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = control.request(&Query::WaitGen(u64::from(sweeps))) {
        eprintln!("serve-bench: waiting for final generation failed: {e}");
        std::process::exit(1);
    }

    let storm = StormOptions {
        addr: addr.clone(),
        seed: args.common.seed,
        queries: args.storm_queries,
        connections: args.connections_list.clone(),
    };
    let t0 = Instant::now();
    let curve = match query_storm(&storm) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve-bench: query storm failed: {e}");
            std::process::exit(1);
        }
    };
    let storm_secs = t0.elapsed().as_secs_f64();
    let _ = control.request(&Query::Stop);
    let summary = match server.join().expect("serve thread") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-bench: service failed: {e}");
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_file(&log_path);

    use std::fmt::Write as _;
    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"scale\": \"{}\",", args.common.scale).expect("string write");
    writeln!(json, "  \"seed\": {},", args.common.seed).expect("string write");
    writeln!(json, "  \"sweeps\": {},", summary.sweeps).expect("string write");
    writeln!(json, "  \"final_epoch\": {},", summary.final_epoch).expect("string write");
    writeln!(json, "  \"event_log_bytes\": {},", summary.log_len).expect("string write");
    writeln!(json, "  \"event_log_records\": {},", summary.log_records).expect("string write");
    writeln!(
        json,
        "  \"storm_queries_per_point\": {},",
        args.storm_queries
    )
    .expect("string write");
    writeln!(json, "  \"storm_total_secs\": {storm_secs:.3},").expect("string write");
    writeln!(
        json,
        "  \"queries_answered\": {},",
        summary.queries_answered
    )
    .expect("string write");
    writeln!(json, "  \"qps_curve\": [").expect("string write");
    for (i, p) in curve.iter().enumerate() {
        let comma = if i + 1 < curve.len() { "," } else { "" };
        writeln!(
            json,
            "    {{ \"connections\": {}, \"queries\": {}, \"wall_secs\": {:.4}, \
             \"qps\": {:.1} }}{comma}",
            p.connections, p.queries, p.wall_secs, p.qps
        )
        .expect("string write");
    }
    writeln!(json, "  ],").expect("string write");
    writeln!(
        json,
        "  \"note\": \"seeded query mix over immutable generations; responses are \
         byte-deterministic, only the wall clock varies\""
    )
    .expect("string write");
    json.push_str("}\n");

    write_json_output(&json, args.json.as_deref(), "serve-bench");
}

/// Writes bench JSON to `path` (or stdout when `None`).
fn write_json_output(json: &str, path: Option<&std::path::Path>, what: &str) {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("{what}: wrote {}", path.display());
        }
        None => print!("{json}"),
    }
}

/// `query --connect`: the remote client against a running serve.
fn cmd_query_remote(args: &Args, addr: &str) {
    let trace = match &args.trace {
        Some(path) => match clientmap::serve::load_trace(path, &mut std::io::stdin().lock()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read trace {path}: {e}");
                std::process::exit(1);
            }
        },
        None if !args.positional.is_empty() => args.positional.join(" "),
        None => {
            eprintln!("query --connect needs a --trace FILE or an inline query, e.g. `top 5`");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = run_trace(
        addr,
        &trace,
        Duration::from_secs(args.io_timeout_secs),
        &mut stdout,
    ) {
        eprintln!("query failed: {e}");
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: clientmap <run|export|query|stats|worker|driver|fleet-bench|serve|serve-bench> \
         [--scale tiny|small|paper] [--seed N] \
         [--faults off|light|lossy|pop-churn] [--fault-seed N] [--out DIR] \
         [--snapshot-in FILE] [--snapshot-out FILE] [--expiry-budget F] \
         [--duration-hours F] [--metrics FILE] [--clustered-probing] \
         [--cluster-epsilon F] [--cluster-escalate-below F] [PREFIX]\n\
         \x20      clientmap worker [--listen ADDR] [--once] [--fail-after N] [--io-timeout S]\n\
         \x20      clientmap driver --workers host:port[,host:port...] [--shards N] \
         [--connect-timeout S] [--io-timeout S] [run flags]\n\
         \x20      clientmap fleet-bench [--threads-per-worker N] [--workers-list 1,2,4] \
         [--json FILE]\n\
         \x20      clientmap serve [--listen ADDR] [--sweeps N] [--event-log FILE] \
         [--compact-every N] [--fail-sweep N] [--io-timeout S] [run flags]\n\
         \x20      clientmap query --connect ADDR [--trace FILE | QUERY...] [--io-timeout S]\n\
         \x20      clientmap serve-bench [--sweeps N] [--storm-queries N] \
         [--connections-list 1,2,4] [--json FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let cmd = argv[0].clone();
    let args = match parse_args(&argv[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("clientmap {cmd}: {e}");
            usage();
        }
    };
    if let Err(e) = check_subcommand_constraints(&cmd, &args) {
        eprintln!("clientmap {cmd}: {e}");
        usage();
    }

    match cmd.as_str() {
        "run" => {
            let prior = args.common.snapshot_in.as_deref().map(load_snapshot);
            let warm = prior.is_some();
            let out = run_or_exit(args.common.config(), prior);
            print_run_report(&out, warm);
            write_run_outputs(&out, &args.common);
        }
        "worker" => {
            let opts = WorkerOptions {
                listen: args.listen.clone(),
                once: args.once,
                fail_after: args.fail_after,
                io_timeout: Duration::from_secs(args.io_timeout_secs),
            };
            if let Err(e) = run_worker(&opts) {
                eprintln!("worker failed: {e}");
                std::process::exit(1);
            }
        }
        "driver" => {
            clientmap::fleet::shutdown::install_sigint_handler();
            let prior = args.common.snapshot_in.as_deref().map(load_snapshot);
            let warm = prior.is_some();
            let opts = FleetOptions {
                workers: args.workers.clone(),
                num_shards: args.shards,
                connect_timeout: Duration::from_secs(args.connect_timeout_secs),
                io_timeout: Duration::from_secs(args.io_timeout_secs),
            };
            let mut fleet = FleetSweep::new(opts, args.common.scale.clone());
            let mut timings = Vec::new();
            let out = match Pipeline::run_warm_timed_with(
                args.common.config(),
                prior,
                &mut timings,
                &mut fleet,
            ) {
                Ok(out) => out,
                Err(PipelineError::Interrupted { completed, total }) => {
                    eprintln!(
                        "interrupted: {completed}/{total} shards complete; in-flight shards \
                         drained and workers released; no output written"
                    );
                    std::process::exit(130);
                }
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    std::process::exit(1);
                }
            };
            print_run_report(&out, warm);
            write_run_outputs(&out, &args.common);
        }
        "fleet-bench" => {
            fleet_bench(&args);
        }
        "serve" => {
            cmd_serve(&args);
        }
        "serve-bench" => {
            cmd_serve_bench(&args);
        }
        "export" => {
            let Some(dir) = args.out.clone() else {
                eprintln!("export requires --out DIR");
                std::process::exit(2);
            };
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
            let out = run_or_exit(args.common.config(), None);
            let rib = &out.sim.world().rib;
            let files = [
                (
                    "cache_probing.csv",
                    export::prefix_view_with_origins_csv(&out.bundle.cache_probing, rib),
                ),
                (
                    "dns_logs.csv",
                    export::prefix_view_csv(&out.bundle.dns_logs),
                ),
                ("apnic.csv", export::apnic_csv(&out.apnic)),
                (
                    "dns_logs_by_as.csv",
                    export::as_view_csv(&out.bundle.dns_logs_as),
                ),
            ];
            for (name, contents) in files {
                let path = dir.join(name);
                match std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(contents.as_bytes()))
                {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
            println!(
                "(the Microsoft-derived validation views are deliberately not exportable — \
                 see DESIGN.md)"
            );
        }
        "query" => {
            if let Some(addr) = args.connect.clone() {
                cmd_query_remote(&args, &addr);
                return;
            }
            let Some(prefix_s) = args.positional.first() else {
                eprintln!("query requires a PREFIX argument (or --connect ADDR), e.g. 1.2.3.0/24");
                std::process::exit(2);
            };
            let prefix: Prefix = match prefix_s.parse() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("bad prefix {prefix_s:?}: {e}");
                    std::process::exit(2);
                }
            };
            let out = run_or_exit(args.common.config(), None);
            let active = out.cache_probe.active_set();
            let dns_hit = out.bundle.dns_logs.set.intersects(prefix);
            let verdict = if active.contains_slash24(prefix) || active.intersects(prefix) {
                "ACTIVE: cache probing found client activity here"
            } else if dns_hit {
                "RESOLVER: a recursive resolver with Chromium clients lives here"
            } else {
                "no client signal from either public technique"
            };
            let asn = out
                .sim
                .world()
                .rib
                .origin_of_prefix(prefix)
                .map(|a| a.to_string())
                .unwrap_or_else(|| "unrouted".into());
            println!("{prefix} ({asn}): {verdict}");
        }
        "stats" => {
            let world = clientmap::world::World::generate(args.common.config().world);
            println!(
                "world: {} ASes, {} routed /24s, {:.1}M users, {} resolvers, {} blocks",
                world.ases.len(),
                world.routed_slash24s(),
                world.total_users() / 1e6,
                world.resolvers.len(),
                world.blocks.len(),
            );
            let mut by_cat: std::collections::BTreeMap<&str, usize> = Default::default();
            for a in &world.ases {
                *by_cat.entry(a.category.label()).or_insert(0) += 1;
            }
            for (cat, n) in by_cat {
                println!("  {cat:<14} {n}");
            }
            // Per-AS activity: one AND+popcount per AS between its
            // announced space and the technique's active /24 set.
            let out = run_or_exit(args.common.config(), None);
            let active = Slash24Bitset::from_prefixes(&out.cache_probe.active_set().prefixes());
            let mut per_as = AsBitsets::from_rib(&out.sim.world().rib).active_slash24s(&active);
            per_as.sort_by_key(|(asn, n)| (std::cmp::Reverse(*n), asn.0));
            println!(
                "client activity (cache probing): {} active /24s across {} ASes; top networks:",
                active.count(),
                per_as.len(),
            );
            for (asn, n) in per_as.iter().take(10) {
                println!("  {asn:<10} {n} active /24s");
            }
        }
        _ => usage(),
    }
}

/// The subcommand-level constraints that used to be scattered inline
/// `eprintln!`/`exit` pairs — one typed path, checked before any work.
fn check_subcommand_constraints(cmd: &str, args: &Args) -> Result<(), CliError> {
    match cmd {
        "driver" if args.workers.is_empty() => {
            return Err(CliError::Invalid(
                "driver requires --workers host:port[,host:port...]".into(),
            ));
        }
        "serve" | "serve-bench" if args.sweeps == 0 => {
            return Err(CliError::Invalid(format!("{cmd} needs --sweeps >= 1")));
        }
        _ => {}
    }
    Ok(())
}
