//! # clientmap
//!
//! A production-quality Rust reproduction of *Towards Identifying
//! Networks with Internet Clients Using Public Data* (Jiang, Luo,
//! Koch, Zhang, Katz-Bassett, Calder — ACM IMC 2021).
//!
//! This façade crate re-exports the whole workspace; see the README
//! for the architecture and DESIGN.md for the system inventory.
//!
//! ```no_run
//! use clientmap::core::{Pipeline, PipelineConfig};
//!
//! let out = Pipeline::run(PipelineConfig::tiny(42)).expect("healthy run");
//! println!("{}", out.report().headlines());
//! ```

pub use clientmap_analysis as analysis;
pub use clientmap_cacheprobe as cacheprobe;
pub use clientmap_chromium as chromium;
pub use clientmap_core as core;
pub use clientmap_datasets as datasets;
pub use clientmap_dns as dns;
pub use clientmap_faults as faults;
pub use clientmap_fleet as fleet;
pub use clientmap_geo as geo;
pub use clientmap_net as net;
pub use clientmap_par as par;
pub use clientmap_sim as sim;
pub use clientmap_store as store;
pub use clientmap_telemetry as telemetry;
pub use clientmap_world as world;
