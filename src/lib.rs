//! # clientmap
//!
//! A production-quality Rust reproduction of *Towards Identifying
//! Networks with Internet Clients Using Public Data* (Jiang, Luo,
//! Koch, Zhang, Katz-Bassett, Calder — ACM IMC 2021).
//!
//! This is the curated facade: everything a library consumer needs is
//! re-exported at the top level, and the `examples/` directory
//! compiles against *only* these items. See the README for the
//! architecture and DESIGN.md for the system inventory.
//!
//! ```no_run
//! use clientmap::{Pipeline, PipelineConfig};
//!
//! let out = Pipeline::run(PipelineConfig::tiny(42)).expect("healthy run");
//! println!("{}", out.report().headlines());
//! ```
//!
//! The workspace crates behind the facade remain reachable as modules
//! (`clientmap::cacheprobe`, `clientmap::store`, …) for the CLI, the
//! evaluation harness, and anyone who needs the deeper surface — but
//! the top level is the supported API.

// ---------------------------------------------------------------------
// The curated surface. Start here.
// ---------------------------------------------------------------------

/// The end-to-end measurement pipeline and its reports.
pub use clientmap_core::{Pipeline, PipelineConfig, PipelineError, PipelineOutput, Report};

/// The warm-start snapshot a sweep leaves behind (and consumes).
pub use clientmap_store::SweepSnapshot;

/// The synthetic Internet the simulation measures.
pub use clientmap_world::{World, WorldConfig};

/// The deterministic simulator and its clock.
pub use clientmap_sim::{Sim, SimTime};

/// Addressing vocabulary shared by every layer.
pub use clientmap_net::{splitmix64, Asn, Prefix, SeedMixer};

/// Two-letter country codes (ISO 3166-1 alpha-2 shaped).
pub use clientmap_geo::CountryCode;

/// The paper's primary technique, runnable standalone.
pub use clientmap_cacheprobe::{run_technique, ProbeConfig};

/// The Chromium-resolver side channel, runnable standalone.
pub use clientmap_chromium::{crawl, ChromiumClassifier};

/// Cross-dataset agreement and per-country coverage analysis.
pub use clientmap_analysis::country_coverage;

/// Identifiers for the shareable derived datasets.
pub use clientmap_datasets::DatasetId;

/// The resident sweep service and its query client.
pub use clientmap_serve::{QueryClient, ServeOptions, ServeSummary};

// ---------------------------------------------------------------------
// The full workspace, for the CLI and power users.
// ---------------------------------------------------------------------

pub use clientmap_analysis as analysis;
pub use clientmap_cacheprobe as cacheprobe;
pub use clientmap_chromium as chromium;
pub use clientmap_core as core;
pub use clientmap_datasets as datasets;
pub use clientmap_dns as dns;
pub use clientmap_faults as faults;
pub use clientmap_fleet as fleet;
pub use clientmap_geo as geo;
pub use clientmap_net as net;
pub use clientmap_par as par;
pub use clientmap_serve as serve;
pub use clientmap_sim as sim;
pub use clientmap_store as store;
pub use clientmap_telemetry as telemetry;
pub use clientmap_world as world;
