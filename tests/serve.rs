//! End-to-end serve tests over real processes: `clientmap serve` runs
//! as deployed, `clientmap query --connect` replays a trace against
//! it over loopback TCP, and determinism is checked at the byte level
//! — two identically-seeded service runs fed the same query trace
//! must produce byte-identical rendered responses, byte-identical
//! event logs, and byte-identical final snapshots. A second test
//! drives in-process clients *while* the service is still sweeping,
//! proving queries are answered concurrently with generation
//! publication, and a third checks log compaction leaves a replayable
//! base + tail on disk.

use std::io::{BufRead as _, Read as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use clientmap::serve::{Query, QueryClient, Reply};

mod common;
use common::{announced_addr, read_bytes, scratch, BIN};

/// Frame deadline generous enough for CI, far below a hung test.
const IO: Duration = Duration::from_secs(60);

struct Serve {
    child: Child,
    stdout: std::io::BufReader<ChildStdout>,
    addr: String,
}

impl Serve {
    /// Spawns `clientmap serve` in `cwd` and reads the bound address
    /// off its announcement line (`clientmap serve listening on
    /// {addr}`). Running from `cwd` lets tests use *relative* log
    /// paths, keeping the summary line (which names the log path)
    /// byte-comparable across runs in different directories.
    fn spawn(cwd: &Path, extra: &[&str]) -> Serve {
        let mut child = Command::new(BIN)
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--scale",
                "tiny",
                "--seed",
                "7",
            ])
            .args(extra)
            .current_dir(cwd)
            .env("CLIENTMAP_THREADS", "2")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve");
        let mut stdout = std::io::BufReader::new(child.stdout.take().expect("serve stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("serve announcement");
        let addr = announced_addr(&line);
        Serve {
            child,
            stdout,
            addr,
        }
    }

    /// Waits for the service to exit cleanly and returns the rest of
    /// its stdout (the summary line; the port announcement was already
    /// consumed, so this part is run-independent).
    fn wait_success(mut self) -> String {
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("serve stdout");
        let status = self.child.wait().expect("wait serve");
        assert!(status.success(), "serve exited with {status}");
        rest
    }
}

/// The query trace both determinism runs replay: waits for the final
/// generation so every answer is taken from the same immutable index,
/// exercises every query kind (including deterministic error replies
/// for unknown names), then stops the service.
const TRACE: &str = "\
# determinism trace — replayed against two identically-seeded serves
gen 3
info
top 5
ecdf 8
country ZZ
as 4242424242
prefix 10.0.0.0/8
stop
";

/// One full service lifetime: serve, replay [`TRACE`], shut down.
/// Returns (query stdout, serve summary, event log bytes, snapshot
/// bytes).
fn serve_and_trace(dir: &Path, tag: &str) -> (String, String, Vec<u8>, Vec<u8>) {
    // Each run gets its own directory but identical *relative* file
    // names, so every byte the service emits is run-independent.
    let run_dir = dir.join(tag);
    std::fs::create_dir_all(&run_dir).expect("create run dir");
    let log = run_dir.join("run.cmel");
    let snap = run_dir.join("run.snap");
    let trace = run_dir.join("run.trace");
    std::fs::write(&trace, TRACE).expect("write trace");
    let serve = Serve::spawn(
        &run_dir,
        &[
            "--sweeps",
            "3",
            "--event-log",
            "run.cmel",
            "--snapshot-out",
            "run.snap",
        ],
    );
    let out = Command::new(BIN)
        .args([
            "query",
            "--connect",
            &serve.addr,
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run query client");
    assert!(
        out.status.success(),
        "query client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = serve.wait_success();
    (
        String::from_utf8(out.stdout).expect("utf8 replies"),
        summary,
        read_bytes(&log),
        read_bytes(&snap),
    )
}

/// The tentpole acceptance check: same seed + same query trace ⇒
/// byte-identical responses, byte-identical event log, byte-identical
/// final generation snapshot — across two fully separate service
/// lifetimes.
#[test]
fn identically_seeded_serve_runs_are_byte_identical() {
    let dir = scratch("determinism");
    let (replies_a, summary_a, log_a, snap_a) = serve_and_trace(&dir, "a");
    let (replies_b, summary_b, log_b, snap_b) = serve_and_trace(&dir, "b");

    assert!(
        replies_a.contains("info gen=3"),
        "trace waited for generation 3 but got:\n{replies_a}"
    );
    assert!(
        replies_a.ends_with("bye\n"),
        "trace should end in bye:\n{replies_a}"
    );
    assert_eq!(replies_a, replies_b, "rendered responses diverged");
    assert_eq!(summary_a, summary_b, "serve summaries diverged");
    assert_eq!(log_a, log_b, "event logs diverged");
    assert_eq!(snap_a, snap_b, "final snapshots diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Queries are answered *while* sweeps run: clients connect before
/// generation 2 exists, block on it, and read consistent per-
/// generation answers as the sweep thread publishes behind them.
#[test]
fn queries_are_answered_concurrently_with_sweeps() {
    let dir = scratch("concurrent");
    let log = dir.join("live.cmel");
    let serve = Serve::spawn(
        &dir,
        &["--sweeps", "3", "--event-log", log.to_str().unwrap()],
    );

    // Two clients race the sweep thread from different generations.
    let addr = serve.addr.clone();
    let early = std::thread::spawn(move || {
        let mut c = QueryClient::connect(&addr, IO).expect("connect early");
        // Block until the first generation exists, then query it.
        let Reply::Info(gen1) = c.request(&Query::WaitGen(1)).expect("wait gen 1") else {
            panic!("WaitGen must answer with that generation's info");
        };
        assert_eq!(gen1.generation, 1);
        assert!(matches!(c.request(&Query::TopK(3)), Ok(Reply::TopK(_))));
        gen1.log_offset
    });
    let mut c = QueryClient::connect(&serve.addr, IO).expect("connect");
    let Reply::Info(last) = c.request(&Query::WaitGen(3)).expect("wait gen 3") else {
        panic!("WaitGen must answer with that generation's info");
    };
    assert_eq!(last.generation, 3);
    let offset_gen1 = early.join().expect("early client");
    // Each sweep appended: the log had grown strictly between the
    // generation-1 and generation-3 publishes.
    assert!(
        last.log_offset > offset_gen1,
        "event log did not grow across generations ({} -> {})",
        offset_gen1,
        last.log_offset
    );
    // A generation that can never exist is a typed error, not a hang.
    match c.request(&Query::WaitGen(99)).expect("wait gen 99") {
        Reply::Err(e) => assert!(e.contains("never be published"), "unexpected error: {e}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    assert!(matches!(c.request(&Query::Stop), Ok(Reply::Bye)));
    serve.wait_success();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--compact-every` folds the event log into a `<log>.base` snapshot
/// and rewinds the tail; the base plus remaining records must still
/// replay to the final table (checked here via the base file existing
/// and the tail staying short).
#[test]
fn compaction_leaves_a_base_and_a_short_tail() {
    let dir = scratch("compact");
    let log = dir.join("compacted.cmel");
    let serve = Serve::spawn(
        &dir,
        &[
            "--sweeps",
            "4",
            "--event-log",
            log.to_str().unwrap(),
            "--compact-every",
            "2",
        ],
    );
    let mut c = QueryClient::connect(&serve.addr, IO).expect("connect");
    assert!(matches!(c.request(&Query::WaitGen(4)), Ok(Reply::Info(_))));
    assert!(matches!(c.request(&Query::Stop), Ok(Reply::Bye)));
    serve.wait_success();

    let mut base = log.clone().into_os_string();
    base.push(".base");
    let base = PathBuf::from(base);
    assert!(base.exists(), "compaction never wrote {}", base.display());
    assert!(!read_bytes(&base).is_empty(), "base snapshot is empty");
    // Sweep 4's delta landed after the last compaction (at sweep 4),
    // so the tail holds at most the header — far smaller than a full
    // 4-sweep log would be.
    let full = serve_uncompacted_len(&dir);
    let tail = read_bytes(&log).len();
    assert!(
        tail < full,
        "compacted tail ({tail} bytes) is not shorter than an uncompacted log ({full} bytes)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Helper for the compaction test: the same 4-sweep run with
/// compaction off, measured for comparison.
fn serve_uncompacted_len(dir: &Path) -> usize {
    let log = dir.join("uncompacted.cmel");
    let serve = Serve::spawn(
        dir,
        &["--sweeps", "4", "--event-log", log.to_str().unwrap()],
    );
    let mut c = QueryClient::connect(&serve.addr, IO).expect("connect");
    assert!(matches!(c.request(&Query::WaitGen(4)), Ok(Reply::Info(_))));
    assert!(matches!(c.request(&Query::Stop), Ok(Reply::Bye)));
    serve.wait_success();
    read_bytes(&log).len()
}

/// The degraded-mode acceptance check: a sweep failure injected
/// mid-service (`--fail-sweep 2` of 3) must leave the query API alive
/// and answering from generation 1 — with every `info` reply flagged
/// degraded — and the service must still shut down cleanly (exit 0).
#[test]
fn injected_sweep_failure_leaves_queries_answering_degraded() {
    let dir = scratch("degraded");
    let log = dir.join("degraded.cmel");
    let serve = Serve::spawn(
        &dir,
        &[
            "--sweeps",
            "3",
            "--fail-sweep",
            "2",
            "--event-log",
            log.to_str().unwrap(),
        ],
    );

    let mut c = QueryClient::connect(&serve.addr, IO).expect("connect");
    // Generation 1 publishes, then sweep 2 dies; waiting on the final
    // generation must resolve to a typed error, not a hang.
    assert!(matches!(c.request(&Query::WaitGen(1)), Ok(Reply::Info(_))));
    match c.request(&Query::WaitGen(3)).expect("wait gen 3") {
        Reply::Err(e) => assert!(e.contains("never be published"), "unexpected error: {e}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    // The chain is dead, the API is not: answers still come from the
    // last published generation, flagged degraded.
    let Reply::Info(info) = c.request(&Query::Info).expect("info") else {
        panic!("info must answer");
    };
    assert_eq!(info.generation, 1, "answers must come from generation 1");
    assert!(
        info.degraded,
        "info after the sweep death must be flagged degraded"
    );
    assert!(matches!(c.request(&Query::TopK(3)), Ok(Reply::TopK(_))));

    // The deployed client renders the flag too.
    let out = Command::new(BIN)
        .args(["query", "--connect", &serve.addr, "info"])
        .output()
        .expect("run query client");
    assert!(out.status.success());
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(
        rendered.contains("degraded=1"),
        "rendered info must carry degraded=1: {rendered}"
    );

    assert!(matches!(c.request(&Query::Stop), Ok(Reply::Bye)));
    let summary = serve.wait_success();
    assert!(
        summary.contains("DEGRADED"),
        "summary must report the degraded run: {summary}"
    );
    assert!(
        summary.contains("serve: 1 sweeps published"),
        "summary must count published generations, not requested sweeps: {summary}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `query --connect` against a dead address: a typed single-line error
/// on stderr, a non-zero exit, and nothing rendered on stdout.
#[test]
fn query_client_fails_fast_against_a_dead_server() {
    // Bind-then-drop reserves an address nothing listens on.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let out = Command::new(BIN)
        .args(["query", "--connect", &dead, "--io-timeout", "2", "info"])
        .output()
        .expect("run query client");
    assert!(!out.status.success(), "a dead server must be an error exit");
    assert!(out.stdout.is_empty(), "no partial render on failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim().lines().count(),
        1,
        "one typed line, got: {stderr}"
    );
    assert!(
        stderr.starts_with("query failed:"),
        "untyped error: {stderr}"
    );
}

/// `query --connect` against a server that drops the connection
/// mid-handshake (accepts, then closes without replying): same
/// contract — typed single-line error, non-zero exit, empty stdout.
#[test]
fn query_client_reports_a_mid_handshake_drop() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        // Accept, read a few bytes of the query frame, hang up.
        let (mut s, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 8];
        let _ = std::io::Read::read(&mut s, &mut buf);
    });
    let out = Command::new(BIN)
        .args(["query", "--connect", &addr, "--io-timeout", "5", "info"])
        .output()
        .expect("run query client");
    server.join().expect("drop server");
    assert!(
        !out.status.success(),
        "a dropped handshake must be an error exit"
    );
    assert!(out.stdout.is_empty(), "no partial render on failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim().lines().count(),
        1,
        "one typed line, got: {stderr}"
    );
    assert!(
        stderr.starts_with("query failed:"),
        "untyped error: {stderr}"
    );
}
