//! End-to-end integration: one pipeline run, checked against the
//! paper's *qualitative* evaluation structure (who covers whom, by
//! roughly what ordering — DESIGN.md's "shape" criterion).

use clientmap::analysis::overlap::{as_matrix, prefix_matrix, volume_matrix};
use clientmap::analysis::{
    dns_http_proxy, groundtruth_recall, scope_precision, scope_stability_table,
};
use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::datasets::DatasetId;

fn output() -> &'static PipelineOutput {
    static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(PipelineConfig::tiny(2021)).expect("tiny run is healthy"))
}

const AS_IDS: [DatasetId; 6] = [
    DatasetId::CacheProbing,
    DatasetId::DnsLogs,
    DatasetId::Union,
    DatasetId::Apnic,
    DatasetId::MicrosoftClients,
    DatasetId::MicrosoftResolvers,
];

#[test]
fn table3_shape_cdn_broadest_apnic_narrowest() {
    let m = as_matrix(&output().bundle, &AS_IDS);
    let ms = m.size(DatasetId::MicrosoftClients).unwrap();
    let apnic = m.size(DatasetId::Apnic).unwrap();
    let cache = m.size(DatasetId::CacheProbing).unwrap();
    let dns = m.size(DatasetId::DnsLogs).unwrap();
    let union = m.size(DatasetId::Union).unwrap();
    // Paper: MS 64.8K > union 51.9K > DNS 39.7K ≈ cache 37.0K > APNIC 23.3K.
    assert!(
        ms >= union,
        "CDN ({ms}) must be the broadest (union {union})"
    );
    assert!(
        union >= cache && union >= dns,
        "union covers both techniques"
    );
    assert!(
        apnic < ms,
        "APNIC ({apnic}) must miss a large share of CDN ASes ({ms})"
    );
    assert!(
        apnic < union,
        "the techniques combined ({union}) must beat APNIC ({apnic})"
    );
}

#[test]
fn table3_shape_apnic_misses_large_fraction_of_cdn() {
    let m = as_matrix(&output().bundle, &AS_IDS);
    let (_, apnic_in_ms_pct) = m
        .cell(DatasetId::MicrosoftClients, DatasetId::Apnic)
        .unwrap();
    // Paper: APNIC misses 64% of MS-client ASes. Shape: a substantial
    // miss (>25%), not near-complete coverage.
    assert!(
        apnic_in_ms_pct < 75.0,
        "APNIC covers {apnic_in_ms_pct:.1}% of CDN ASes — too complete"
    );
    // And the union does better than APNIC does.
    let (_, union_in_ms) = m
        .cell(DatasetId::MicrosoftClients, DatasetId::Union)
        .unwrap();
    assert!(union_in_ms > apnic_in_ms_pct);
}

#[test]
fn table1_shape_dns_logs_high_precision() {
    let m = prefix_matrix(
        &output().bundle,
        &[
            DatasetId::CacheProbing,
            DatasetId::DnsLogs,
            DatasetId::Union,
            DatasetId::MicrosoftClients,
        ],
    );
    // Paper: 95.5% of DNS-logs prefixes are in Microsoft clients.
    let (_, dns_in_ms) = m
        .cell(DatasetId::DnsLogs, DatasetId::MicrosoftClients)
        .unwrap();
    assert!(
        dns_in_ms > 60.0,
        "DNS-logs prefix precision {dns_in_ms:.1}% too low"
    );
}

#[test]
fn table4_shape_union_beats_apnic_on_volume() {
    let m = volume_matrix(&output().bundle, &[DatasetId::MicrosoftClients], &AS_IDS);
    let union = m
        .cell(DatasetId::MicrosoftClients, DatasetId::Union)
        .unwrap();
    let apnic = m
        .cell(DatasetId::MicrosoftClients, DatasetId::Apnic)
        .unwrap();
    // Paper: 98.8% vs 92%. Shape: union ≥ APNIC and both high.
    assert!(union >= apnic, "union {union:.1}% < APNIC {apnic:.1}%");
    assert!(union > 80.0, "union volume coverage {union:.1}%");
    // The ASes each misses are small: missing-AS volume ≤ 25%.
    assert!(apnic > 75.0, "APNIC volume coverage {apnic:.1}%");
}

#[test]
fn table2_shape_scopes_mostly_stable() {
    let rows = scope_stability_table(&output().cache_probe);
    let overall = rows.last().expect("overall row");
    assert!(overall.total > 0);
    let (exact, within2, within4) = overall.pcts();
    // Paper: 90% / 97% / 99%.
    assert!(exact > 75.0, "exact {exact:.1}%");
    assert!(within2 > exact && within2 > 88.0, "within2 {within2:.1}%");
    assert!(
        within4 >= within2 && within4 > 93.0,
        "within4 {within4:.1}%"
    );
}

#[test]
fn headline_shapes() {
    let o = output();
    let proxy = dns_http_proxy(&o.bundle);
    // Paper: 97.2% and 92%.
    assert!(
        proxy.dns_volume_in_http_prefixes_pct > 80.0,
        "DNS-in-HTTP {:.1}%",
        proxy.dns_volume_in_http_prefixes_pct
    );
    assert!(
        proxy.http_volume_in_ecs_prefixes_pct > 60.0,
        "HTTP-in-ECS {:.1}%",
        proxy.http_volume_in_ecs_prefixes_pct
    );
    // Paper: 91% ground-truth recall.
    let recall = groundtruth_recall(&o.cache_probe, &o.bundle.cloud_ecs);
    assert!(recall > 0.5, "ground-truth ECS recall {recall:.2}");
    // Paper: 99.1% of hit scopes contain a CDN-client /24.
    let precision = scope_precision(&o.cache_probe, &o.bundle.ms_clients);
    assert!(precision > 0.9, "scope precision {precision:.3}");
}

#[test]
fn ms_clients_volume_in_probed_prefixes_high() {
    // Paper: 95.2% of Microsoft clients volume in probed-active prefixes.
    let o = output();
    let covered = o.bundle.ms_clients.volume_in(&o.bundle.cache_probing);
    let frac = covered / o.bundle.ms_clients.total_volume();
    assert!(frac > 0.7, "CDN volume coverage {frac:.3}");
}

#[test]
fn probing_is_non_recursive_and_clean() {
    let o = output();
    // Probes must never have triggered recursive resolution.
    assert_eq!(
        o.sim.gpdns_stats().recursive,
        0,
        "a probe polluted the cache path"
    );
    // TCP probing at paper rates suffers no drops.
    assert_eq!(o.cache_probe.drops, 0, "TCP probes were rate-limited");
}

#[test]
fn headline_matches_golden_output() {
    // The exact text `repro --scale tiny --seed 2021 headline` prints,
    // pinned under tests/golden/. Compared modulo whitespace so
    // reflowing or re-aligning the report is not a behaviour change —
    // but any number moving is.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/headline_tiny_2021.txt"
    ))
    .expect("golden file present");
    let rendered = output().report().headlines();
    let norm = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
    assert_eq!(
        norm(&rendered),
        norm(&golden),
        "headline output drifted from tests/golden/headline_tiny_2021.txt;\n\
         regenerate with: cargo run --release -p clientmap-bench --bin repro -- \
         --scale tiny --seed 2021 headline > tests/golden/headline_tiny_2021.txt"
    );
}

#[test]
fn telemetry_invariants_reconcile() {
    let o = output();
    let snap = o.metrics_snapshot();
    // The pipeline already asserts these internally; re-check here so a
    // future removal of that assertion still fails a test, and pin the
    // counters to the independently-tracked result values.
    let violations = clientmap::core::invariants::check(&snap, o.config.probe.redundancy);
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(
        snap.counter("cacheprobe.probes_sent"),
        o.cache_probe.probes_sent
    );
    // `hits` aggregates by (domain, scope); the counter sees every event.
    let hit_events: u64 = o.cache_probe.hits.values().map(|h| h.hits).sum();
    assert_eq!(snap.counter("cacheprobe.outcome.hit"), hit_events);
    assert_eq!(
        snap.counter("dnslogs.records_examined"),
        o.dns_logs.records_examined as u64
    );
    assert_eq!(
        snap.counter("dnslogs.rejected_noise"),
        o.dns_logs.rejected_noise_records as u64
    );
    assert_eq!(
        snap.counter("world.slash24s.routed"),
        o.sim.world().routed_slash24s()
    );
    assert_eq!(snap.counter("pipeline.runs"), 1);
    // Probing ran clean (TCP at paper rates): no drops anywhere.
    assert_eq!(snap.counter("cacheprobe.outcome.dropped"), 0);
    // Stage spans recorded in sim time.
    for stage in ["cache_probe", "dns_logs", "cdn_logs"] {
        let h = snap
            .histogram(&format!("pipeline.stage_ms.{stage}"))
            .unwrap_or_else(|| panic!("missing span for {stage}"));
        assert_eq!(h.count, 1);
        assert!(h.sum > 0);
    }
}

#[test]
fn metrics_snapshot_deterministic_across_runs() {
    let a = Pipeline::run(PipelineConfig::tiny(78)).expect("run a");
    let b = Pipeline::run(PipelineConfig::tiny(78)).expect("run b");
    assert_eq!(
        a.metrics_snapshot().to_json(),
        b.metrics_snapshot().to_json()
    );
}

#[test]
fn deterministic_end_to_end() {
    let a = Pipeline::run(PipelineConfig::tiny(77)).expect("run a");
    let b = Pipeline::run(PipelineConfig::tiny(77)).expect("run b");
    assert_eq!(a.cache_probe.probes_sent, b.cache_probe.probes_sent);
    assert_eq!(
        a.cache_probe.active_set().num_slash24s(),
        b.cache_probe.active_set().num_slash24s()
    );
    assert_eq!(a.dns_logs.resolvers.len(), b.dns_logs.resolvers.len());
    assert_eq!(a.cdn_logs.total_requests(), b.cdn_logs.total_requests());
    assert_eq!(a.apnic.len(), b.apnic.len());
}

#[test]
fn identical_output_across_thread_counts() {
    // The executor's ordered reduction promises the whole pipeline is
    // reproducible at any worker count: same headline report, same
    // result numbers, and a byte-identical telemetry snapshot.
    let base = clientmap::par::with_threads(1, || Pipeline::run(PipelineConfig::tiny(2021)))
        .expect("1-thread run");
    let base_headlines = base.report().headlines();
    let base_snapshot = base.metrics_snapshot().to_json();
    for threads in [2usize, 8] {
        let run =
            clientmap::par::with_threads(threads, || Pipeline::run(PipelineConfig::tiny(2021)))
                .unwrap_or_else(|e| panic!("{threads}-thread run failed: {e}"));
        assert_eq!(
            run.cache_probe.probes_sent, base.cache_probe.probes_sent,
            "probe volume drift at {threads} threads"
        );
        assert_eq!(
            run.cache_probe.active_set().num_slash24s(),
            base.cache_probe.active_set().num_slash24s(),
            "active set drift at {threads} threads"
        );
        assert_eq!(
            run.report().headlines(),
            base_headlines,
            "headline drift at {threads} threads"
        );
        assert_eq!(
            run.metrics_snapshot().to_json(),
            base_snapshot,
            "telemetry snapshot drift at {threads} threads"
        );
    }
}

#[test]
fn fig4_bounds_invariant_lower_leq_upper_leq_announced() {
    let o = output();
    let bounds = o.cache_probe.as_bounds(&o.sim.world().rib);
    assert!(!bounds.is_empty());
    for (asn, b) in &bounds {
        assert!(
            b.lower_active_24s <= b.upper_active_24s,
            "{asn}: lower {} > upper {}",
            b.lower_active_24s,
            b.upper_active_24s
        );
        assert!(
            b.upper_active_24s <= b.announced_24s.max(1),
            "{asn}: upper {} > announced {}",
            b.upper_active_24s,
            b.announced_24s
        );
    }
}

#[test]
fn active_set_stays_inside_allocated_space() {
    let o = output();
    let world = o.sim.world();
    for scope in o.cache_probe.hit_prefixes() {
        let inside = world
            .blocks
            .iter()
            .any(|b| b.prefix.contains(scope) || scope.contains(b.prefix));
        assert!(inside, "hit scope {scope} outside every allocation");
    }
}

#[test]
fn cache_probing_misses_exist_and_are_mostly_google_free_or_small() {
    // The paper's central coverage gap: the CDN sees ASes the probing
    // cannot (no Google DNS users, or too little activity).
    let o = output();
    let world = o.sim.world();
    let probed = &o.bundle.cache_probing_as;
    let mut missed = 0usize;
    let mut explained = 0usize;
    for asn in o.bundle.ms_clients_as.set() {
        if probed.contains(asn) {
            continue;
        }
        missed += 1;
        if let Some(id) = world.as_id(asn) {
            let info = &world.ases[id];
            // Explained misses: tiny population, Google-free mix, or all
            // the AS's Google traffic landing on cloud-unreachable PoPs.
            let google_rate: f64 = world
                .slash24s
                .iter()
                .filter(|s| s.as_id == id)
                .map(|s| s.clients() * s.resolver_mix.google)
                .sum();
            let pops = clientmap::sim::pop_catalog();
            let all_unreachable = world
                .slash24s
                .iter()
                .enumerate()
                .filter(|(_, s)| s.as_id == id && s.is_active())
                .all(|(i, _)| {
                    pops[o.sim.catchments().of_slash24(i)].status
                        != clientmap::sim::PopStatus::ProbedVerified
                });
            if info.users + info.machines < 200.0 || google_rate < 30.0 || all_unreachable {
                explained += 1;
            }
        }
    }
    assert!(missed > 0, "cache probing implausibly saw every CDN AS");
    // The remainder are temporal misses (activity never inside a TTL
    // window a probe sampled) — real but not cheaply attributable;
    // require a majority of misses to be structurally explained.
    assert!(
        explained * 10 >= missed * 6,
        "only {explained}/{missed} misses explained by the known mechanisms"
    );
}

#[test]
fn dns_logs_and_cache_probing_have_imperfect_overlap() {
    // Paper: "the overlap between them is fairly low … combining our
    // datasets yields more overlap with others".
    let o = output();
    let cache = o.bundle.cache_probing_as.set();
    let dns = o.bundle.dns_logs_as.set();
    let only_dns = dns.difference(&cache).count();
    let only_cache = cache.difference(&dns).count();
    assert!(
        only_dns > 0,
        "DNS logs must add ASes cache probing misses (resolver-only ASes)"
    );
    assert!(
        only_cache > 0,
        "cache probing must add ASes DNS logs misses"
    );
}
