//! The cluster-equivalence differential suite: clustered predictive
//! probing versus exhaustive probing, end to end.
//!
//! The clustered planner probes one representative per cluster and
//! copies its verdict to the members, so a clustered sweep is allowed
//! to be *wrong* — these tests pin how wrong. The scenario every test
//! shares: a cold exhaustive sweep builds a prior, then a full-expiry
//! warm re-sweep (every slot re-planned) runs twice from that same
//! prior — once exhaustively, once clustered — and the two /24 verdict
//! tables are compared as precision/recall on `Hit`. The floor is
//! pinned at 0.97 across seeds (CI gates on the same floor via `repro
//! bench`); the planner's live-probe ratio must stay under 1/3 of the
//! exhaustive universe at the default epsilon.
//!
//! Determinism is pinned at the byte level: same snapshot at 1 and 4
//! probing threads, epsilon 0 byte-identical to the exhaustive warm
//! sweep, and the real driver/worker fleet at (1w×1t) and (2w×2t)
//! byte-identical to the single-process clustered run — cold and warm.

mod common;
use common::{assert_fleet_matches, reference_run, scratch, Worker};

use clientmap::analysis::verdict_precision_recall;
use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::store::Verdict;

/// The warm-differential floors: clustered `Hit` verdicts against the
/// exhaustive reference, across seeds.
const PRECISION_FLOOR: f64 = 0.97;
const RECALL_FLOOR: f64 = 0.97;

/// A full-expiry warm config: every slot re-planned, so the clustered
/// planner sees the whole universe.
fn warm_config(seed: u64, clustered: bool, epsilon: Option<f64>) -> PipelineConfig {
    let mut config = PipelineConfig::tiny(seed);
    config.probe.expiry_budget = 1.0;
    config.probe.clustered_probing = clustered;
    if let Some(eps) = epsilon {
        config.probe.cluster_epsilon = eps;
    }
    config
}

fn cold_run(seed: u64) -> PipelineOutput {
    Pipeline::run(PipelineConfig::tiny(seed)).expect("cold exhaustive run")
}

fn warm_run(seed: u64, prior: &PipelineOutput, clustered: bool, eps: Option<f64>) -> PipelineOutput {
    Pipeline::run_warm(warm_config(seed, clustered, eps), Some(prior.sweep.clone()))
        .expect("warm run")
}

fn cluster_counter(out: &PipelineOutput, name: &str) -> u64 {
    out.metrics_snapshot()
        .counter(&format!("cacheprobe.cluster.{name}"))
}

/// The headline differential: across seeds, a clustered full-expiry
/// re-sweep reproduces the exhaustive re-sweep's `Hit` /24 table above
/// the pinned precision/recall floor while probing at most a third of
/// the universe live.
#[test]
fn clustered_resweep_beats_the_precision_recall_floor_across_seeds() {
    for seed in [7u64, 2021, 99] {
        let cold = cold_run(seed);
        let exhaustive = warm_run(seed, &cold, false, None);
        let clustered = warm_run(seed, &cold, true, None);

        let pr = verdict_precision_recall(
            &clustered.cache_probe.verdict_table(),
            &exhaustive.cache_probe.verdict_table(),
            Verdict::Hit,
        );
        assert!(
            pr.precision() >= PRECISION_FLOOR,
            "seed {seed}: Hit precision {:.4} under the {PRECISION_FLOOR} floor ({pr:?})",
            pr.precision()
        );
        assert!(
            pr.recall() >= RECALL_FLOOR,
            "seed {seed}: Hit recall {:.4} under the {RECALL_FLOOR} floor ({pr:?})",
            pr.recall()
        );

        let universe = cluster_counter(&clustered, "planned_universe");
        let live =
            cluster_counter(&clustered, "representatives") + cluster_counter(&clustered, "escalated");
        assert!(universe > 0, "seed {seed}: empty clustered universe");
        assert!(
            (live as f64) <= universe as f64 / 3.0,
            "seed {seed}: {live} live probes of {universe} planned exceeds the 1/3 budget"
        );
    }
}

/// The conservation law holds on the real pipeline at every epsilon,
/// and a rebuilt sweep is byte-deterministic.
#[test]
fn epsilon_sweep_conserves_the_planned_universe() {
    let seed = 2021;
    let cold = cold_run(seed);
    for eps in [0.1, 0.25, 0.6] {
        let a = warm_run(seed, &cold, true, Some(eps));
        let universe = cluster_counter(&a, "planned_universe");
        let parts = cluster_counter(&a, "representatives")
            + cluster_counter(&a, "extrapolated")
            + cluster_counter(&a, "escalated");
        assert_eq!(
            parts, universe,
            "epsilon {eps}: representatives + extrapolated + escalated != planned universe"
        );
        assert!(
            cluster_counter(&a, "extrapolated") > 0,
            "epsilon {eps}: nothing extrapolated at tiny scale"
        );
        let b = warm_run(seed, &cold, true, Some(eps));
        assert_eq!(
            a.sweep.encode(),
            b.sweep.encode(),
            "epsilon {eps}: rebuilt clustered sweep is not byte-identical"
        );
    }
}

/// Epsilon 0 degenerates to exhaustive probing *exactly*: the clustered
/// sweep's snapshot is byte-identical to the exhaustive warm sweep's.
#[test]
fn epsilon_zero_is_byte_identical_to_the_exhaustive_resweep() {
    let seed = 7;
    let cold = cold_run(seed);
    let exhaustive = warm_run(seed, &cold, false, None);
    let degenerate = warm_run(seed, &cold, true, Some(0.0));
    assert_eq!(cluster_counter(&degenerate, "extrapolated"), 0);
    assert_eq!(cluster_counter(&degenerate, "escalated"), 0);
    assert_eq!(
        degenerate.sweep.encode(),
        exhaustive.sweep.encode(),
        "epsilon 0 sweep diverged from the exhaustive re-sweep"
    );
}

/// Thread-count independence: the clustered warm sweep's snapshot and
/// metrics dump are byte-identical at 1 and 4 probing threads.
#[test]
fn clustered_sweeps_are_byte_identical_across_thread_counts() {
    let seed = 2021;
    let cold = clientmap::par::with_threads(1, || cold_run(seed));
    let one = clientmap::par::with_threads(1, || warm_run(seed, &cold, true, None));
    let four = clientmap::par::with_threads(4, || warm_run(seed, &cold, true, None));
    assert_eq!(
        one.sweep.encode(),
        four.sweep.encode(),
        "clustered snapshot differs across thread counts"
    );
    assert_eq!(
        one.metrics_snapshot().to_json(),
        four.metrics_snapshot().to_json(),
        "clustered metrics differ across thread counts"
    );
}

/// The real fleet, clustered: driver/worker processes over loopback
/// TCP at (1 worker × 1 thread) and (2 workers × 2 threads) must be
/// byte-identical to the single-process clustered run — stdout
/// (including the cluster-ablation section), metrics dump, and
/// snapshot — both cold and on a full-expiry warm re-sweep from the
/// cold snapshot (the driver-side extrapolation-merge path).
#[test]
fn clustered_fleet_shapes_match_the_single_process_run() {
    let dir = scratch("cluster-fleet");
    let cold_flags = ["--clustered-probing"];
    let cold = reference_run(&dir, &cold_flags);
    assert!(
        cold.0.contains("Cluster ablation"),
        "clustered reference run printed no ablation section:\n{}",
        cold.0
    );
    let cold_snap = dir.join("cold.snap");
    std::fs::write(&cold_snap, &cold.2).expect("stash cold snapshot");

    let warm_flags = [
        "--clustered-probing",
        "--snapshot-in",
        cold_snap.to_str().unwrap(),
        "--expiry-budget",
        "1.0",
    ];
    let warm = reference_run(&dir, &warm_flags);

    for (num_workers, threads) in [(1usize, 1usize), (2, 2)] {
        let workers: Vec<Worker> = (0..num_workers)
            .map(|_| Worker::spawn(threads, &[]))
            .collect();
        let refs: Vec<&Worker> = workers.iter().collect();
        assert_fleet_matches(
            &dir,
            &format!("cold-w{num_workers}t{threads}"),
            &refs,
            &cold_flags,
            &cold,
        );
        for w in workers {
            w.wait_success();
        }

        let workers: Vec<Worker> = (0..num_workers)
            .map(|_| Worker::spawn(threads, &[]))
            .collect();
        let refs: Vec<&Worker> = workers.iter().collect();
        assert_fleet_matches(
            &dir,
            &format!("warm-w{num_workers}t{threads}"),
            &refs,
            &warm_flags,
            &warm,
        );
        for w in workers {
            w.wait_success();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
