//! Chaos end-to-end: the full pipeline under deterministic fault
//! injection. The fault plan is derived from `(world_seed, fault_seed)`
//! and consulted at fixed logical points, so a faulted run is exactly
//! as reproducible as a fault-free one — including across thread
//! counts — while the resilient prober keeps the campaign alive and
//! accounts for what it could not measure.

use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::faults::{FaultConfig, FaultProfile};
use clientmap::store::SweepSnapshot;

fn config(profile: FaultProfile, fault_seed: u64) -> PipelineConfig {
    let mut c = PipelineConfig::tiny(2021);
    c.faults = FaultConfig::profile(profile, fault_seed);
    c
}

/// One shared lossy run for the assertions below.
fn lossy() -> &'static PipelineOutput {
    static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(config(FaultProfile::Lossy, 5)).expect("lossy run completes"))
}

#[test]
fn lossy_run_completes_with_partial_result_accounting() {
    let o = lossy();
    // The run finished and still produced an activity map.
    assert!(o.cache_probe.probes_sent > 0);
    assert!(o.cache_probe.active_set().num_slash24s() > 0);
    // Faults were genuinely injected and absorbed.
    let f = o.cache_probe.fault.as_ref().expect("fault summary");
    assert_eq!(f.profile, "lossy");
    assert!(f.observed > 0, "lossy run saw no failures");
    assert!(f.retries > 0, "no retries under ~11% failure rate");
    assert!(f.recovered > 0, "retries never succeeded");
    // Every observed failure settled into exactly one terminal bucket.
    assert_eq!(f.observed, f.recovered + f.degraded + f.lost);
}

#[test]
fn lossy_report_states_what_was_not_measured() {
    let o = lossy();
    let section = o.report().robustness().expect("robustness section");
    for needle in ["lossy", "unmeasured", "retried"] {
        assert!(section.contains(needle), "robustness missing {needle:?}");
    }
    let all = o.report().render_all();
    assert!(all.contains("Robustness"), "render_all omits the section");
}

#[test]
fn fault_free_runs_carry_no_fault_surface() {
    let o = Pipeline::run(config(FaultProfile::Off, 5)).expect("fault-free run");
    assert!(o.cache_probe.fault.is_none());
    assert!(!o.report().render_all().contains("Robustness"));
    let snap = o.metrics_snapshot();
    assert!(!snap
        .counters
        .keys()
        .any(|k| k.starts_with("faults.") || k.starts_with("cacheprobe.fault.")));
}

#[test]
fn faulted_pipeline_is_byte_identical_across_thread_counts() {
    let base = clientmap::par::with_threads(1, || Pipeline::run(config(FaultProfile::Lossy, 9)))
        .expect("1-thread lossy run");
    let base_report = base.report().render_all();
    let base_snapshot = base.metrics_snapshot().to_json();
    for threads in [4usize, 8] {
        let run =
            clientmap::par::with_threads(threads, || Pipeline::run(config(FaultProfile::Lossy, 9)))
                .unwrap_or_else(|e| panic!("{threads}-thread lossy run failed: {e}"));
        assert_eq!(
            run.cache_probe.probes_sent, base.cache_probe.probes_sent,
            "probe volume drift at {threads} threads"
        );
        assert_eq!(
            run.cache_probe.fault, base.cache_probe.fault,
            "fault accounting drift at {threads} threads"
        );
        assert_eq!(
            run.report().render_all(),
            base_report,
            "report drift at {threads} threads"
        );
        assert_eq!(
            run.metrics_snapshot().to_json(),
            base_snapshot,
            "telemetry snapshot drift at {threads} threads"
        );
    }
}

#[test]
fn fault_seed_changes_the_weather_but_not_the_climate() {
    let a = lossy();
    let b = Pipeline::run(config(FaultProfile::Lossy, 6)).expect("other fault seed");
    // Different fault seeds see different faults…
    let fa = a.cache_probe.fault.as_ref().unwrap();
    let fb = b.cache_probe.fault.as_ref().unwrap();
    assert_ne!(
        (fa.observed, fa.retries),
        (fb.observed, fb.retries),
        "fault seed had no effect"
    );
    // …but the same world underneath: headline coverage stays close.
    let clean = Pipeline::run(config(FaultProfile::Off, 0)).expect("clean run");
    let clean_active = clean.cache_probe.active_set().num_slash24s() as f64;
    for faulted in [a.cache_probe.active_set(), b.cache_probe.active_set()] {
        let ratio = faulted.num_slash24s() as f64 / clean_active.max(1.0);
        assert!(
            (0.6..=1.4).contains(&ratio),
            "lossy active set diverged from fault-free: ratio {ratio:.2}"
        );
    }
}

#[test]
fn pop_churn_run_quarantines_and_reconciles_coverage() {
    let mut c = PipelineConfig::tiny(7);
    c.faults = FaultConfig::profile(FaultProfile::PopChurn, 3);
    let o = Pipeline::run(c).expect("pop-churn run completes");
    let f = o.cache_probe.fault.as_ref().expect("fault summary");
    assert_eq!(f.profile, "pop-churn");
    // Outage windows make whole vantages go dark; the breaker must
    // notice and the unmeasured accounting must close the books:
    // probed + unmeasured == assigned.
    assert_eq!(
        o.cache_probe.probe_counts.len() as u64 + f.unmeasured_scopes,
        f.assigned_scopes,
        "coverage accounting does not reconcile"
    );
    let snap = o.metrics_snapshot();
    assert_eq!(
        snap.counter("cacheprobe.quarantine.pops"),
        f.quarantined_pops.len() as u64
    );
    assert_eq!(
        snap.counter("cacheprobe.quarantine.rescued"),
        f.rescued_scopes
    );
}

/// Planner counters exist only on warm runs; cold/warm comparisons
/// set them aside.
fn without_planner_lines(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("cacheprobe.planner."))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn warm_restart_is_byte_identical_at_any_thread_count() {
    let cold = clientmap::par::with_threads(1, || Pipeline::run(config(FaultProfile::Off, 0)))
        .expect("cold run");
    let cold_report = cold.report().render_all();
    let cold_metrics = without_planner_lines(&cold.metrics_snapshot().to_json());
    let snapshot_bytes = cold.sweep.encode();

    let mut warm_snapshots: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 4, 8] {
        let prior = SweepSnapshot::decode(&snapshot_bytes).expect("snapshot round-trips");
        let warm = clientmap::par::with_threads(threads, || {
            Pipeline::run_warm(config(FaultProfile::Off, 0), Some(prior))
        })
        .unwrap_or_else(|e| panic!("{threads}-thread warm run failed: {e}"));
        // Nothing expired ⇒ the planner replays everything…
        let snap = warm.metrics_snapshot();
        assert_eq!(snap.counter("cacheprobe.planner.planned"), 0);
        assert_eq!(snap.counter("cacheprobe.planner.units"), 0);
        // …and the output is the cold run's, byte for byte.
        assert_eq!(
            warm.report().render_all(),
            cold_report,
            "warm report drift at {threads} threads"
        );
        assert_eq!(
            without_planner_lines(&snap.to_json()),
            cold_metrics,
            "warm telemetry drift at {threads} threads"
        );
        assert_eq!(warm.sweep.records, cold.sweep.records);
        assert_eq!(warm.sweep.epoch, cold.sweep.epoch + 1);
        warm_snapshots.push(warm.sweep.encode());
    }
    // The re-emitted snapshot itself is thread-count independent.
    assert!(
        warm_snapshots.windows(2).all(|w| w[0] == w[1]),
        "warm snapshot bytes drift across thread counts"
    );
}

#[test]
fn pop_churn_quarantine_dirties_the_next_warm_sweep() {
    let mut c = PipelineConfig::tiny(7);
    c.faults = FaultConfig::profile(FaultProfile::PopChurn, 3);
    let cold = Pipeline::run(c.clone()).expect("pop-churn cold run");
    let f = cold.cache_probe.fault.as_ref().expect("fault summary");
    assert!(
        !f.quarantined_pops.is_empty(),
        "this profile/seed is expected to trip the breaker"
    );
    let quarantined = f.quarantined_pops.len() as u64;
    assert_eq!(
        cold.sweep
            .fault
            .as_ref()
            .map(|fr| fr.quarantined_pops.len() as u64),
        Some(quarantined),
        "snapshot must carry the quarantine list"
    );

    // Warm restart under the same weather: everything a quarantined
    // vantage measured is dirty and gets re-probed live; reaching Ok
    // means the planner conservation laws reconciled too.
    let warm = Pipeline::run_warm(c, Some(cold.sweep.clone())).expect("warm run completes");
    let snap = warm.metrics_snapshot();
    assert!(
        snap.counter("cacheprobe.planner.dirty") > 0,
        "quarantined-PoP slots must be replanned"
    );
    assert!(snap.counter("cacheprobe.planner.planned") > 0);
    assert_eq!(
        snap.counter("cacheprobe.planner.planned")
            + snap.counter("cacheprobe.planner.skipped_warm"),
        snap.counter("cacheprobe.planner.universe"),
    );
    assert!(warm.cache_probe.active_set().num_slash24s() > 0);
}

#[test]
fn lossy_warm_restart_replans_only_the_stale_slice() {
    let cold = lossy();
    // Same config, nothing expired: only rescue/dirty signals replan,
    // and the run still passes every invariant (checked inside run).
    let warm = Pipeline::run_warm(config(FaultProfile::Lossy, 5), Some(cold.sweep.clone()))
        .expect("lossy warm run completes");
    let snap = warm.metrics_snapshot();
    let universe = snap.counter("cacheprobe.planner.universe");
    let planned = snap.counter("cacheprobe.planner.planned");
    assert!(universe > 0);
    assert!(
        planned * 5 <= universe,
        "warm lossy restart replanned {planned} of {universe} slots"
    );
    assert_eq!(
        planned + snap.counter("cacheprobe.planner.skipped_warm"),
        universe
    );
    // The warm run keeps a usable activity map and its own closed
    // fault books.
    assert!(warm.cache_probe.active_set().num_slash24s() > 0);
    if let Some(f) = warm.cache_probe.fault.as_ref() {
        assert_eq!(f.observed, f.recovered + f.degraded + f.lost);
    }
}

#[test]
fn batching_never_touches_the_fault_books() {
    // The batch kernel refuses faulted cores, so a faulted run with
    // batching enabled rides the scalar resilient lane end to end:
    // identical fault conservation, identical bytes. Pop-churn is the
    // nastiest profile — outages, flaps, breaker trips, rescues.
    for (profile, fault_seed, world_seed) in [
        (FaultProfile::Lossy, 5, 2021),
        (FaultProfile::PopChurn, 3, 7),
    ] {
        let mut batched = PipelineConfig::tiny(world_seed);
        batched.faults = FaultConfig::profile(profile, fault_seed);
        batched.probe.batched_probing = true;
        let mut scalar = batched.clone();
        scalar.probe.batched_probing = false;
        let a = Pipeline::run(batched).expect("faulted batched run completes");
        let b = Pipeline::run(scalar).expect("faulted scalar run completes");
        let fa = a.cache_probe.fault.as_ref().expect("fault summary");
        let fb = b.cache_probe.fault.as_ref().expect("fault summary");
        assert_eq!(
            fa, fb,
            "{profile:?}: fault accounting diverged under batching"
        );
        // The conservation laws hold on the batched-config run…
        assert!(fa.observed > 0, "{profile:?} injected nothing");
        assert_eq!(fa.observed, fa.recovered + fa.degraded + fa.lost);
        assert_eq!(
            a.cache_probe.probe_counts.len() as u64 + fa.unmeasured_scopes,
            fa.assigned_scopes,
            "{profile:?}: coverage books do not reconcile under batching"
        );
        // …and everything else is byte-identical to the scalar run.
        assert_eq!(a.report().render_all(), b.report().render_all());
        assert_eq!(
            a.metrics_snapshot().to_json(),
            b.metrics_snapshot().to_json()
        );
        assert_eq!(a.sweep.encode(), b.sweep.encode());
    }
}

#[test]
fn light_profile_is_a_gentle_breeze() {
    let o = Pipeline::run(config(FaultProfile::Light, 1)).expect("light run completes");
    let f = o.cache_probe.fault.as_ref().expect("fault summary");
    assert_eq!(f.profile, "light");
    // Sub-percent fault rates: almost everything recovers, and the
    // active set is essentially unaffected.
    assert!(f.observed > 0, "light still injects something");
    assert_eq!(f.observed, f.recovered + f.degraded + f.lost);
    let clean = Pipeline::run(config(FaultProfile::Off, 0)).expect("clean run");
    let ratio = o.cache_probe.active_set().num_slash24s() as f64
        / clean.cache_probe.active_set().num_slash24s().max(1) as f64;
    assert!(
        ratio > 0.9,
        "light profile dented coverage: ratio {ratio:.2}"
    );
}
