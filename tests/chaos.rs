//! Chaos end-to-end: the full pipeline under deterministic fault
//! injection. The fault plan is derived from `(world_seed, fault_seed)`
//! and consulted at fixed logical points, so a faulted run is exactly
//! as reproducible as a fault-free one — including across thread
//! counts — while the resilient prober keeps the campaign alive and
//! accounts for what it could not measure.

use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::faults::{FaultConfig, FaultProfile};

fn config(profile: FaultProfile, fault_seed: u64) -> PipelineConfig {
    let mut c = PipelineConfig::tiny(2021);
    c.faults = FaultConfig::profile(profile, fault_seed);
    c
}

/// One shared lossy run for the assertions below.
fn lossy() -> &'static PipelineOutput {
    static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(config(FaultProfile::Lossy, 5)).expect("lossy run completes"))
}

#[test]
fn lossy_run_completes_with_partial_result_accounting() {
    let o = lossy();
    // The run finished and still produced an activity map.
    assert!(o.cache_probe.probes_sent > 0);
    assert!(o.cache_probe.active_set().num_slash24s() > 0);
    // Faults were genuinely injected and absorbed.
    let f = o.cache_probe.fault.as_ref().expect("fault summary");
    assert_eq!(f.profile, "lossy");
    assert!(f.observed > 0, "lossy run saw no failures");
    assert!(f.retries > 0, "no retries under ~11% failure rate");
    assert!(f.recovered > 0, "retries never succeeded");
    // Every observed failure settled into exactly one terminal bucket.
    assert_eq!(f.observed, f.recovered + f.degraded + f.lost);
}

#[test]
fn lossy_report_states_what_was_not_measured() {
    let o = lossy();
    let section = o.report().robustness().expect("robustness section");
    for needle in ["lossy", "unmeasured", "retried"] {
        assert!(section.contains(needle), "robustness missing {needle:?}");
    }
    let all = o.report().render_all();
    assert!(all.contains("Robustness"), "render_all omits the section");
}

#[test]
fn fault_free_runs_carry_no_fault_surface() {
    let o = Pipeline::run(config(FaultProfile::Off, 5)).expect("fault-free run");
    assert!(o.cache_probe.fault.is_none());
    assert!(!o.report().render_all().contains("Robustness"));
    let snap = o.metrics_snapshot();
    assert!(!snap
        .counters
        .keys()
        .any(|k| k.starts_with("faults.") || k.starts_with("cacheprobe.fault.")));
}

#[test]
fn faulted_pipeline_is_byte_identical_across_thread_counts() {
    let base = clientmap::par::with_threads(1, || Pipeline::run(config(FaultProfile::Lossy, 9)))
        .expect("1-thread lossy run");
    let base_report = base.report().render_all();
    let base_snapshot = base.metrics_snapshot().to_json();
    for threads in [4usize, 8] {
        let run =
            clientmap::par::with_threads(threads, || Pipeline::run(config(FaultProfile::Lossy, 9)))
                .unwrap_or_else(|e| panic!("{threads}-thread lossy run failed: {e}"));
        assert_eq!(
            run.cache_probe.probes_sent, base.cache_probe.probes_sent,
            "probe volume drift at {threads} threads"
        );
        assert_eq!(
            run.cache_probe.fault, base.cache_probe.fault,
            "fault accounting drift at {threads} threads"
        );
        assert_eq!(
            run.report().render_all(),
            base_report,
            "report drift at {threads} threads"
        );
        assert_eq!(
            run.metrics_snapshot().to_json(),
            base_snapshot,
            "telemetry snapshot drift at {threads} threads"
        );
    }
}

#[test]
fn fault_seed_changes_the_weather_but_not_the_climate() {
    let a = lossy();
    let b = Pipeline::run(config(FaultProfile::Lossy, 6)).expect("other fault seed");
    // Different fault seeds see different faults…
    let fa = a.cache_probe.fault.as_ref().unwrap();
    let fb = b.cache_probe.fault.as_ref().unwrap();
    assert_ne!(
        (fa.observed, fa.retries),
        (fb.observed, fb.retries),
        "fault seed had no effect"
    );
    // …but the same world underneath: headline coverage stays close.
    let clean = Pipeline::run(config(FaultProfile::Off, 0)).expect("clean run");
    let clean_active = clean.cache_probe.active_set().num_slash24s() as f64;
    for faulted in [a.cache_probe.active_set(), b.cache_probe.active_set()] {
        let ratio = faulted.num_slash24s() as f64 / clean_active.max(1.0);
        assert!(
            (0.6..=1.4).contains(&ratio),
            "lossy active set diverged from fault-free: ratio {ratio:.2}"
        );
    }
}

#[test]
fn pop_churn_run_quarantines_and_reconciles_coverage() {
    let mut c = PipelineConfig::tiny(7);
    c.faults = FaultConfig::profile(FaultProfile::PopChurn, 3);
    let o = Pipeline::run(c).expect("pop-churn run completes");
    let f = o.cache_probe.fault.as_ref().expect("fault summary");
    assert_eq!(f.profile, "pop-churn");
    // Outage windows make whole vantages go dark; the breaker must
    // notice and the unmeasured accounting must close the books:
    // probed + unmeasured == assigned.
    assert_eq!(
        o.cache_probe.probe_counts.len() as u64 + f.unmeasured_scopes,
        f.assigned_scopes,
        "coverage accounting does not reconcile"
    );
    let snap = o.metrics_snapshot();
    assert_eq!(
        snap.counter("cacheprobe.quarantine.pops"),
        f.quarantined_pops.len() as u64
    );
    assert_eq!(
        snap.counter("cacheprobe.quarantine.rescued"),
        f.rescued_scopes
    );
}

#[test]
fn light_profile_is_a_gentle_breeze() {
    let o = Pipeline::run(config(FaultProfile::Light, 1)).expect("light run completes");
    let f = o.cache_probe.fault.as_ref().expect("fault summary");
    assert_eq!(f.profile, "light");
    // Sub-percent fault rates: almost everything recovers, and the
    // active set is essentially unaffected.
    assert!(f.observed > 0, "light still injects something");
    assert_eq!(f.observed, f.recovered + f.degraded + f.lost);
    let clean = Pipeline::run(config(FaultProfile::Off, 0)).expect("clean run");
    let ratio = o.cache_probe.active_set().num_slash24s() as f64
        / clean.cache_probe.active_set().num_slash24s().max(1) as f64;
    assert!(
        ratio > 0.9,
        "light profile dented coverage: ratio {ratio:.2}"
    );
}
