//! End-to-end fleet tests over real processes: the driver/worker
//! binaries talk over loopback TCP exactly as deployed, and every
//! fleet run's stdout, metrics dump, and snapshot file must be
//! byte-identical to the single-process `clientmap run` — at any
//! ⟨worker, thread⟩ combination, across a warm start, and through a
//! worker crash mid-sweep. Failure paths (no workers reachable,
//! SIGINT) must exit with their documented codes and leave no output.

use std::process::{Command, Stdio};
use std::time::Duration;

mod common;
use common::{
    assert_fleet_matches, read_bytes, reference_run, run_cli, scratch, without_snapshot_line, Worker,
    BIN,
};

#[test]
fn fleet_reports_are_byte_identical_across_worker_thread_combos() {
    let dir = scratch("combos");
    let reference = reference_run(&dir, &[]);

    for (num_workers, threads) in [(1usize, 4usize), (2, 2), (3, 1)] {
        let workers: Vec<Worker> = (0..num_workers)
            .map(|_| Worker::spawn(threads, &[]))
            .collect();
        let refs: Vec<&Worker> = workers.iter().collect();
        let tag = format!("w{num_workers}t{threads}");
        assert_fleet_matches(&dir, &tag, &refs, &[], &reference);
        for w in workers {
            w.wait_success();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_start_fleet_matches_single_process_warm_run() {
    let dir = scratch("warm");
    let cold = reference_run(&dir, &[]);
    let cold_snap = dir.join("cold.snap");
    std::fs::write(&cold_snap, &cold.2).expect("stash cold snapshot");

    let warm_flags = [
        "--snapshot-in",
        cold_snap.to_str().unwrap(),
        "--expiry-budget",
        "0.25",
    ];
    let reference = reference_run(&dir, &warm_flags);
    assert!(
        reference.0.contains("warm start:"),
        "reference warm run did not report a warm start"
    );

    let workers: Vec<Worker> = (0..2).map(|_| Worker::spawn(2, &[])).collect();
    let refs: Vec<&Worker> = workers.iter().collect();
    assert_fleet_matches(&dir, "warm2", &refs, &warm_flags, &reference);
    for w in workers {
        w.wait_success();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn driver_requeues_shards_from_a_crashed_worker() {
    let dir = scratch("chaos");
    let reference = reference_run(&dir, &[]);

    // One healthy worker plus one that serves a single shard and then
    // dies mid-protocol; with four shards the driver must re-queue the
    // crashed worker's in-flight shard onto the survivor.
    let good = Worker::spawn(2, &[]);
    let mut bad = Worker::spawn(2, &["--fail-after", "1"]);
    let addrs = format!("{},{}", good.addr, bad.addr);
    let snap = dir.join("chaos.snap");
    let metrics = dir.join("chaos.metrics");
    let out = run_cli(
        &[
            "driver",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--workers",
            &addrs,
            "--shards",
            "4",
            "--snapshot-out",
            snap.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ],
        &[],
    );
    assert!(
        out.status.success(),
        "driver failed despite a surviving worker: {}",
        out.stderr
    );
    assert!(
        out.stderr.contains("re-queued shard"),
        "driver never re-queued the crashed worker's shard:\n{}",
        out.stderr
    );
    assert_eq!(
        without_snapshot_line(&out.stdout),
        without_snapshot_line(&reference.0),
        "stdout diverged after worker crash"
    );
    assert_eq!(read_bytes(&metrics), reference.1, "metrics diverged");
    assert_eq!(read_bytes(&snap), reference.2, "snapshot diverged");

    good.wait_success();
    let crash = bad.child.wait().expect("reap crashed worker");
    assert_eq!(crash.code(), Some(17), "crash exit code is deterministic");
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole acceptance check: a *faulted* sweep distributed over
/// a fleet is byte-identical to the same faulted sweep in one process
/// — per-PoP fault books merge in shard order, the driver computes
/// the same quarantine set, and the rescue phase replays identically.
#[test]
fn lossy_fleet_matches_single_process_lossy_run() {
    let dir = scratch("lossy");
    let fault_flags = ["--faults", "lossy", "--fault-seed", "7"];
    let reference = reference_run(&dir, &fault_flags);
    assert!(
        reference.0.contains("Robustness"),
        "lossy reference run reported no fault accounting:\n{}",
        reference.0
    );

    for (num_workers, threads) in [(2usize, 2usize), (3, 1)] {
        let workers: Vec<Worker> = (0..num_workers)
            .map(|_| Worker::spawn(threads, &[]))
            .collect();
        let refs: Vec<&Worker> = workers.iter().collect();
        let tag = format!("lossy-w{num_workers}t{threads}");
        assert_fleet_matches(&dir, &tag, &refs, &fault_flags, &reference);
        for w in workers {
            w.wait_success();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The chaos-fleet combo: deterministic fault injection in the
/// technique *and* a worker crashing mid-protocol in the same run.
/// The surviving worker absorbs the re-queued shard and the output is
/// still byte-identical to the single-process lossy reference.
#[test]
fn lossy_fleet_survives_a_worker_crash_mid_sweep() {
    let dir = scratch("lossy-chaos");
    let fault_flags = ["--faults", "lossy", "--fault-seed", "7"];
    let reference = reference_run(&dir, &fault_flags);

    let good = Worker::spawn(2, &[]);
    let mut bad = Worker::spawn(2, &["--fail-after", "1"]);
    let addrs = format!("{},{}", good.addr, bad.addr);
    let snap = dir.join("lossy-chaos.snap");
    let metrics = dir.join("lossy-chaos.metrics");
    let out = run_cli(
        &[
            "driver",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--faults",
            "lossy",
            "--fault-seed",
            "7",
            "--workers",
            &addrs,
            "--shards",
            "4",
            "--snapshot-out",
            snap.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ],
        &[],
    );
    assert!(
        out.status.success(),
        "lossy driver failed despite a surviving worker: {}",
        out.stderr
    );
    assert!(
        out.stderr.contains("re-queued shard"),
        "driver never re-queued the crashed worker's shard:\n{}",
        out.stderr
    );
    assert_eq!(
        without_snapshot_line(&out.stdout),
        without_snapshot_line(&reference.0),
        "stdout diverged in the lossy crash run"
    );
    assert_eq!(read_bytes(&metrics), reference.1, "metrics diverged");
    assert_eq!(read_bytes(&snap), reference.2, "snapshot diverged");

    good.wait_success();
    let crash = bad.child.wait().expect("reap crashed worker");
    assert_eq!(crash.code(), Some(17), "crash exit code is deterministic");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn driver_fails_cleanly_when_no_worker_is_reachable() {
    let out = run_cli(
        &[
            "driver",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--workers",
            "127.0.0.1:1",
            "--connect-timeout",
            "1",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", out.stderr);
    assert!(out.stdout.is_empty(), "failed driver must write no report");
    assert!(
        out.stderr.contains("cannot connect") || out.stderr.contains("fleet"),
        "unhelpful failure message:\n{}",
        out.stderr
    );
}

#[cfg(unix)]
#[test]
fn sigint_drains_in_flight_shards_and_exits_130() {
    let dir = scratch("sigint");
    let worker = Worker::spawn(1, &[]);
    let snap = dir.join("sigint.snap");
    // Small scale keeps the sweep comfortably longer than the signal
    // delay on any machine; many shards keep each one short, so the
    // drain itself stays quick.
    let driver = Command::new(BIN)
        .args([
            "driver",
            "--scale",
            "small",
            "--seed",
            "2021",
            "--workers",
            &worker.addr,
            "--shards",
            "32",
            "--snapshot-out",
            snap.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn driver");
    std::thread::sleep(Duration::from_millis(250));
    let interrupted = Command::new("kill")
        .args(["-INT", &driver.id().to_string()])
        .status()
        .expect("send SIGINT")
        .success();
    assert!(interrupted, "kill -INT failed");

    let out = driver.wait_with_output().expect("wait driver");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(130), "stderr: {stderr}");
    assert!(
        stderr.contains("interrupted:"),
        "driver did not report the drain:\n{stderr}"
    );
    assert!(
        !snap.exists(),
        "interrupted driver must not write a snapshot"
    );
    // The drain must release the worker: `--once` exits cleanly after
    // its connection closes instead of wedging on a half-read frame.
    worker.wait_success();
    std::fs::remove_dir_all(&dir).ok();
}
