//! Scalar-vs-batch differential suite: the batched probe kernels
//! (`ProbeBatch` arenas + `serve_batch` + bulk outcome folding) are a
//! pure execution strategy. Every observable — reports, probe counts,
//! telemetry snapshots, sweep records, fault books — must land byte-
//! identical to the scalar oracle (`batched_probing = false`), across
//! seeds, batch sizes, thread counts, and fault profiles. This suite is
//! what lets the batch knobs stay out of the sweep config digest.

use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::faults::{FaultConfig, FaultProfile};
use proptest::prelude::*;

/// A tiny pipeline config with the batch knobs dialed explicitly.
fn config(seed: u64, batched: bool, batch_size: usize) -> PipelineConfig {
    let mut c = PipelineConfig::tiny(seed);
    c.probe.batched_probing = batched;
    c.probe.batch_size = batch_size;
    c
}

fn run(c: PipelineConfig) -> PipelineOutput {
    Pipeline::run(c).expect("pipeline run completes")
}

/// Everything the two lanes must agree on, byte for byte. The one
/// *intended* divergence — `sweep.calibration`, which only the batched
/// lane captures — is asserted separately where it matters.
fn assert_outputs_match(a: &PipelineOutput, b: &PipelineOutput, ctx: &str) {
    assert_eq!(
        a.cache_probe.probes_sent, b.cache_probe.probes_sent,
        "{ctx}: probe volume diverged"
    );
    assert_eq!(
        a.cache_probe.scope0_hits, b.cache_probe.scope0_hits,
        "{ctx}: scope-0 hits diverged"
    );
    assert_eq!(
        a.cache_probe.drops, b.cache_probe.drops,
        "{ctx}: drop counts diverged"
    );
    assert_eq!(
        a.cache_probe.probe_counts, b.cache_probe.probe_counts,
        "{ctx}: per-scope probe counts diverged"
    );
    assert_eq!(
        a.cache_probe.fault, b.cache_probe.fault,
        "{ctx}: fault accounting diverged"
    );
    assert_eq!(
        a.cache_probe.active_set().num_slash24s(),
        b.cache_probe.active_set().num_slash24s(),
        "{ctx}: active-set size diverged"
    );
    assert_eq!(
        a.sweep.records, b.sweep.records,
        "{ctx}: sweep records diverged"
    );
    assert_eq!(
        a.sweep.gpdns, b.sweep.gpdns,
        "{ctx}: resolver deltas diverged"
    );
    assert_eq!(
        a.sweep.metrics, b.sweep.metrics,
        "{ctx}: metric deltas diverged"
    );
    assert_eq!(
        a.sweep.fault, b.sweep.fault,
        "{ctx}: stored fault record diverged"
    );
    assert_eq!(
        a.report().render_all(),
        b.report().render_all(),
        "{ctx}: report diverged"
    );
    assert_eq!(
        a.metrics_snapshot().to_json(),
        b.metrics_snapshot().to_json(),
        "{ctx}: telemetry snapshot diverged"
    );
}

/// One shared batched run and its scalar oracle (seed 2021), reused by
/// every read-only comparison below.
fn shared() -> &'static (PipelineOutput, PipelineOutput) {
    static RUNS: std::sync::OnceLock<(PipelineOutput, PipelineOutput)> = std::sync::OnceLock::new();
    RUNS.get_or_init(|| (run(config(2021, true, 0)), run(config(2021, false, 0))))
}

#[test]
fn batched_lane_matches_the_scalar_oracle_end_to_end() {
    let (batched, scalar) = shared();
    assert_outputs_match(batched, scalar, "seed 2021");
    // The one intended divergence: only the batched lane captures
    // per-PoP calibration records for the next warm sweep.
    assert!(
        !batched.sweep.calibration.is_empty(),
        "batched sweep must persist calibration records"
    );
    assert!(batched.sweep.calibration_sample > 0);
    assert!(
        scalar.sweep.calibration.is_empty(),
        "scalar sweeps do not capture calibration"
    );

    // A second world, so agreement is not a fixed-point accident.
    let batched2 = run(config(3, true, 0));
    let scalar2 = run(config(3, false, 0));
    assert_outputs_match(&batched2, &scalar2, "seed 3");
    assert_ne!(
        batched.cache_probe.probes_sent, batched2.cache_probe.probes_sent,
        "seeds 2021 and 3 unexpectedly probed identically"
    );
}

#[test]
fn every_batch_size_lands_the_same_bytes() {
    let (full, _) = shared();
    for size in [1usize, 7, 64] {
        let chunked = run(config(2021, true, size));
        assert_outputs_match(&chunked, full, &format!("batch_size {size}"));
        // All-batched runs agree on the calibration records too.
        assert_eq!(
            chunked.sweep.calibration, full.sweep.calibration,
            "batch_size {size}: calibration records diverged"
        );
        assert_eq!(
            chunked.sweep.calibration_sample,
            full.sweep.calibration_sample
        );
    }
}

#[test]
fn equivalence_holds_at_one_and_four_threads() {
    for threads in [1usize, 4] {
        let batched = clientmap::par::with_threads(threads, || run(config(2021, true, 0)));
        let scalar = clientmap::par::with_threads(threads, || run(config(2021, false, 0)));
        assert_outputs_match(&batched, &scalar, &format!("{threads} threads"));
        // And the batched lane itself is thread-count independent,
        // snapshot bytes included.
        let (reference, _) = shared();
        assert_outputs_match(&batched, reference, &format!("{threads} vs shared threads"));
        assert_eq!(
            batched.sweep.encode(),
            reference.sweep.encode(),
            "{threads}-thread batched snapshot bytes drifted"
        );
    }
}

#[test]
fn faulted_runs_take_the_scalar_lane_with_identical_accounting() {
    for profile in [FaultProfile::Light, FaultProfile::Lossy] {
        let mut on = config(2021, true, 0);
        on.faults = FaultConfig::profile(profile, 5);
        let mut off = config(2021, false, 0);
        off.faults = FaultConfig::profile(profile, 5);
        let a = run(on);
        let b = run(off);
        let ctx = format!("{profile:?} faults");
        assert_outputs_match(&a, &b, &ctx);
        // Both rode the resilient scalar lane: same fault books, and
        // neither captured calibration (a faulted pass must not seed
        // the next warm sweep's radii).
        let fa = a.cache_probe.fault.as_ref().expect("fault summary");
        assert!(fa.observed > 0, "{ctx}: no faults observed");
        assert!(
            a.sweep.calibration.is_empty(),
            "{ctx}: faulted run captured calibration"
        );
        assert!(b.sweep.calibration.is_empty());
    }
}

#[test]
fn warm_restart_from_a_scalar_snapshot_matches_the_scalar_warm_run() {
    // A scalar cold sweep leaves no calibration records; a batched warm
    // restart over it must live-calibrate and still land on the scalar
    // warm run's bytes.
    let (_, scalar_cold) = shared();
    let warm_batched = Pipeline::run_warm(config(2021, true, 0), Some(scalar_cold.sweep.clone()))
        .expect("batched warm run completes");
    let warm_scalar = Pipeline::run_warm(config(2021, false, 0), Some(scalar_cold.sweep.clone()))
        .expect("scalar warm run completes");
    assert_outputs_match(&warm_batched, &warm_scalar, "warm over scalar snapshot");
    // The batched warm run starts the calibration-record chain.
    assert!(!warm_batched.sweep.calibration.is_empty());
}

#[test]
fn warm_restart_replays_the_stored_calibration() {
    let (batched_cold, _) = shared();
    let warm = Pipeline::run_warm(config(2021, true, 0), Some(batched_cold.sweep.clone()))
        .expect("warm run completes");
    // No quarantine, so every PoP replays: the records ride forward
    // unchanged and the replayed pass reproduces the cold bytes.
    assert_eq!(warm.sweep.calibration, batched_cold.sweep.calibration);
    assert_eq!(
        warm.sweep.calibration_sample,
        batched_cold.sweep.calibration_sample
    );
    assert_eq!(
        warm.cache_probe.service_radii.radius_km, batched_cold.cache_probe.service_radii.radius_km,
        "replayed radii diverged from the calibrated ones"
    );
    assert_eq!(
        warm.cache_probe.service_radii.sample_size,
        batched_cold.cache_probe.service_radii.sample_size
    );
    assert_eq!(
        warm.report().render_all(),
        batched_cold.report().render_all()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any chunking of the probe stream — including sizes that leave
    /// ragged final batches — reproduces the full-unit arena's bytes.
    #[test]
    fn random_batch_sizes_are_equivalent(size in 1usize..=128) {
        let chunked = run(config(2021, true, size));
        let (full, _) = shared();
        prop_assert_eq!(chunked.cache_probe.probes_sent, full.cache_probe.probes_sent);
        prop_assert_eq!(&chunked.cache_probe.probe_counts, &full.cache_probe.probe_counts);
        prop_assert_eq!(chunked.report().render_all(), full.report().render_all());
        prop_assert_eq!(chunked.metrics_snapshot().to_json(), full.metrics_snapshot().to_json());
        prop_assert_eq!(chunked.sweep.encode(), full.sweep.encode());
    }
}
