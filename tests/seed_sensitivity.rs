//! Cross-seed robustness: the paper-shape conclusions must not be an
//! artifact of one lucky seed. Three independent tiny worlds are run
//! end to end and every headline *ordering* is asserted on each.
//!
//! (Magnitude bands are looser than in `end_to_end.rs` because tiny
//! worlds are noisy; what must never flip is who covers whom.)

use clientmap::analysis::overlap::{as_matrix, volume_matrix};
use clientmap::analysis::{dns_http_proxy, scope_precision, scope_stability_table};
use clientmap::core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap::datasets::DatasetId;

const AS_IDS: [DatasetId; 6] = [
    DatasetId::CacheProbing,
    DatasetId::DnsLogs,
    DatasetId::Union,
    DatasetId::Apnic,
    DatasetId::MicrosoftClients,
    DatasetId::MicrosoftResolvers,
];

fn outputs() -> &'static [PipelineOutput] {
    static OUT: std::sync::OnceLock<Vec<PipelineOutput>> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        [404u64, 1337, 271828]
            .into_iter()
            .map(|seed| Pipeline::run(PipelineConfig::tiny(seed)).expect("healthy run"))
            .collect()
    })
}

#[test]
fn coverage_ordering_holds_across_seeds() {
    for (i, o) in outputs().iter().enumerate() {
        let m = as_matrix(&o.bundle, &AS_IDS);
        let ms = m.size(DatasetId::MicrosoftClients).unwrap();
        let union = m.size(DatasetId::Union).unwrap();
        let apnic = m.size(DatasetId::Apnic).unwrap();
        let cache = m.size(DatasetId::CacheProbing).unwrap();
        let dns = m.size(DatasetId::DnsLogs).unwrap();
        assert!(ms >= union, "seed {i}: MS {ms} < union {union}");
        assert!(
            union >= cache && union >= dns,
            "seed {i}: union {union} below a component ({cache}/{dns})"
        );
        assert!(
            apnic < ms,
            "seed {i}: APNIC {apnic} not the narrowest vs MS {ms}"
        );
        assert!(
            apnic < union,
            "seed {i}: union {union} fails to beat APNIC {apnic}"
        );
    }
}

#[test]
fn volume_coverage_exceeds_as_coverage_across_seeds() {
    // The missed ASes are small — in every world.
    for (i, o) in outputs().iter().enumerate() {
        let m = as_matrix(&o.bundle, &AS_IDS);
        let v = volume_matrix(&o.bundle, &[DatasetId::MicrosoftClients], &AS_IDS);
        for col in [DatasetId::Union, DatasetId::Apnic, DatasetId::CacheProbing] {
            let (_, as_pct) = m.cell(DatasetId::MicrosoftClients, col).unwrap();
            let vol_pct = v.cell(DatasetId::MicrosoftClients, col).unwrap();
            assert!(
                vol_pct + 1e-9 >= as_pct,
                "seed {i}, {col:?}: volume {vol_pct:.1}% < AS-count {as_pct:.1}%"
            );
        }
    }
}

#[test]
fn scope_stability_and_precision_hold_across_seeds() {
    for (i, o) in outputs().iter().enumerate() {
        let rows = scope_stability_table(&o.cache_probe);
        let overall = rows.last().unwrap();
        let (exact, within2, within4) = overall.pcts();
        assert!(exact > 75.0, "seed {i}: exact {exact:.1}%");
        assert!(
            within2 >= exact && within4 >= within2,
            "seed {i}: buckets not nested"
        );
        let precision = scope_precision(&o.cache_probe, &o.bundle.ms_clients);
        assert!(precision > 0.9, "seed {i}: precision {precision:.3}");
    }
}

#[test]
fn dns_http_proxy_claim_holds_across_seeds() {
    for (i, o) in outputs().iter().enumerate() {
        let proxy = dns_http_proxy(&o.bundle);
        assert!(
            proxy.dns_volume_in_http_prefixes_pct > 75.0,
            "seed {i}: DNS-in-HTTP {:.1}%",
            proxy.dns_volume_in_http_prefixes_pct
        );
        assert!(
            proxy.http_volume_in_ecs_prefixes_pct > 50.0,
            "seed {i}: HTTP-in-ECS {:.1}%",
            proxy.http_volume_in_ecs_prefixes_pct
        );
    }
}

#[test]
fn worlds_actually_differ_across_seeds() {
    // Guard against the three runs accidentally sharing a world.
    let o = outputs();
    let counts: Vec<u64> = o
        .iter()
        .map(|x| x.cache_probe.active_set().num_slash24s())
        .collect();
    assert!(
        counts[0] != counts[1] || counts[1] != counts[2],
        "suspiciously identical active sets: {counts:?}"
    );
}
