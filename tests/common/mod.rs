//! The shared subprocess harness for the end-to-end suites.
//!
//! Every integration test that drives the real `clientmap` binary —
//! the fleet suite, the serve suite, the CLI smoke tests, and the
//! cluster-equivalence suite — needs the same few moves: a scratch
//! directory keyed to the test process, spawning workers and reading
//! their announcement lines, running the CLI and capturing its output,
//! and diffing a run's ⟨stdout, metrics, snapshot⟩ triple against a
//! single-process reference byte for byte. Those helpers live here
//! once; each suite declares `mod common;` and takes what it needs.
//!
//! Not every suite uses every helper, so the module is `dead_code`-
//! tolerant — the cost of one shared harness over four private copies.

#![allow(dead_code)]

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// The binary under test, built by cargo for this package.
pub const BIN: &str = env!("CARGO_BIN_EXE_clientmap");

/// A scratch directory unique to this test process and tag.
pub fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clientmap-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

pub fn read_bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The trailing token of an announcement line (`clientmap worker
/// listening on {addr}`), checked to look like an address.
pub fn announced_addr(line: &str) -> String {
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on announcement line")
        .to_string();
    assert!(addr.contains(':'), "bad announcement: {line:?}");
    addr
}

/// One spawned `clientmap worker --once` process and its bound address.
pub struct Worker {
    pub child: Child,
    pub addr: String,
}

impl Worker {
    /// Spawns `clientmap worker --once` pinned to `threads`, reading
    /// the bound address off its announcement line.
    pub fn spawn(threads: usize, extra: &[&str]) -> Worker {
        let mut child = Command::new(BIN)
            .args(["worker", "--listen", "127.0.0.1:0", "--once"])
            .args(extra)
            .env("CLIENTMAP_THREADS", threads.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn worker");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announcement");
        let addr = announced_addr(&line);
        Worker { child, addr }
    }

    pub fn wait_success(mut self) {
        let status = self.child.wait().expect("wait worker");
        assert!(status.success(), "worker exited with {status}");
    }
}

/// A finished CLI invocation's captured streams and exit status.
pub struct RunOutput {
    pub stdout: String,
    pub stderr: String,
    pub status: std::process::ExitStatus,
}

pub fn run_cli(args: &[&str], envs: &[(&str, &str)]) -> RunOutput {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("run clientmap");
    RunOutput {
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        status: out.status,
    }
}

/// Drops the `wrote snapshot <path>` line (paths differ per run by
/// design); everything else must match byte-for-byte.
pub fn without_snapshot_line(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| !l.starts_with("wrote snapshot "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A single-process run's comparable triple: stdout, metrics-dump
/// bytes, snapshot bytes.
pub type ReferenceTriple = (String, Vec<u8>, Vec<u8>);

/// Runs the single-process reference (`tiny`, seed 7, 4 threads —
/// `extra` flags appended last, so they may override any of those) and
/// returns its ⟨stdout, metrics bytes, snapshot bytes⟩.
pub fn reference_run(dir: &Path, extra: &[&str]) -> ReferenceTriple {
    let snap = dir.join("ref.snap");
    let metrics = dir.join("ref.metrics");
    let mut args = vec![
        "run",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--snapshot-out",
        snap.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = run_cli(&args, &[("CLIENTMAP_THREADS", "4")]);
    assert!(out.status.success(), "reference run failed: {}", out.stderr);
    (out.stdout, read_bytes(&metrics), read_bytes(&snap))
}

/// Runs a driver over `workers` (same base flags as [`reference_run`])
/// and asserts stdout/metrics/snapshot are byte-identical to the
/// reference triple. Returns driver stderr.
pub fn assert_fleet_matches(
    dir: &Path,
    tag: &str,
    workers: &[&Worker],
    extra: &[&str],
    reference: &ReferenceTriple,
) -> String {
    let snap = dir.join(format!("{tag}.snap"));
    let metrics = dir.join(format!("{tag}.metrics"));
    let addrs = workers
        .iter()
        .map(|w| w.addr.as_str())
        .collect::<Vec<_>>()
        .join(",");
    let mut args = vec![
        "driver",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--workers",
        &addrs,
        "--snapshot-out",
        snap.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = run_cli(&args, &[]);
    assert!(
        out.status.success(),
        "driver ({tag}) failed: {}",
        out.stderr
    );
    assert_eq!(
        without_snapshot_line(&out.stdout),
        without_snapshot_line(&reference.0),
        "stdout diverged ({tag})"
    );
    assert_eq!(
        read_bytes(&metrics),
        reference.1,
        "metrics snapshot diverged ({tag})"
    );
    assert_eq!(
        read_bytes(&snap),
        reference.2,
        "sweep snapshot diverged ({tag})"
    );
    out.stderr
}
