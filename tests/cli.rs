//! Integration tests for the `clientmap` CLI binary.
//!
//! These run the real binary (built by cargo for this package) end to
//! end: world stats, a prefix query against the activity map, and a
//! CSV export — the flows a downstream user actually touches.

use std::process::Command;

mod common;

fn clientmap() -> Command {
    Command::new(common::BIN)
}

#[test]
fn stats_prints_world_summary() {
    let out = clientmap()
        .args(["stats", "--scale", "tiny", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("world:"), "{stdout}");
    assert!(stdout.contains("ASes"), "{stdout}");
    assert!(stdout.contains("ISP"), "{stdout}");
    // Deterministic: same seed, same summary.
    let again = clientmap()
        .args(["stats", "--scale", "tiny", "--seed", "5"])
        .output()
        .unwrap();
    assert_eq!(out.stdout, again.stdout);
}

#[test]
fn query_answers_for_routed_and_unrouted_prefixes() {
    // 1.0.0.0/16 is the first allocation (Google's block) — always routed.
    let out = clientmap()
        .args(["query", "1.0.64.0/24", "--scale", "tiny", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1.0.64.0/24"), "{stdout}");
    assert!(
        stdout.contains("AS"),
        "routed prefix must resolve an origin: {stdout}"
    );

    // 223.255.255.0/24 sits at the top of public space — unallocated at
    // tiny scale.
    let out = clientmap()
        .args([
            "query",
            "223.255.255.0/24",
            "--scale",
            "tiny",
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unrouted"), "{stdout}");
}

#[test]
fn query_rejects_garbage_prefix() {
    let out = clientmap()
        .args(["query", "not-a-prefix", "--scale", "tiny"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "garbage prefix must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad prefix"), "{stderr}");
}

#[test]
fn export_writes_shareable_csvs() {
    let dir = common::scratch("cli-export");
    let _ = std::fs::remove_dir_all(&dir);
    let out = clientmap()
        .args([
            "export",
            "--scale",
            "tiny",
            "--seed",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for name in [
        "cache_probing.csv",
        "dns_logs.csv",
        "apnic.csv",
        "dns_logs_by_as.csv",
    ] {
        let path = dir.join(name);
        let contents = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let mut lines = contents.lines();
        let header = lines.next().expect("non-empty CSV");
        assert!(header.contains(','), "{name} header: {header}");
        assert!(lines.next().is_some(), "{name} has no data rows");
    }
    // The deliberately-unshareable Microsoft views must not be written.
    assert!(!dir.join("ms_clients.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_args_prints_usage() {
    let out = clientmap().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}
