//! Country coverage report (the paper's Figure 3 as a usable tool):
//! for each country, how much of its (APNIC-estimated) Internet
//! population lives in networks where the public techniques found
//! client activity — and which ASes are the blind spots.
//!
//! ```sh
//! cargo run --release --example country_report [seed]
//! ```

use clientmap::country_coverage;
use clientmap::{Pipeline, PipelineConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(31u64);

    eprintln!("running the full pipeline (seed {seed})…");
    let out = Pipeline::run(PipelineConfig::tiny(seed)).expect("pipeline run is healthy");
    let world = out.sim.world();

    let union = out.bundle.as_view(clientmap::DatasetId::Union);
    let coverage = country_coverage(world, &out.bundle.apnic, &union);

    println!(
        "{:<8} {:>14} {:>10}  blind spots (largest unseen ASes)",
        "country", "APNIC users", "coverage"
    );
    for c in coverage.iter().take(20) {
        // Largest APNIC-listed ASes in this country missed by the union.
        let mut blind: Vec<(clientmap::Asn, f64)> = out
            .bundle
            .apnic
            .volume
            .iter()
            .filter(|(asn, _)| {
                world
                    .as_id(**asn)
                    .map(|id| world.ases[id].country == c.country)
                    .unwrap_or(false)
                    && !union.contains(**asn)
            })
            .map(|(a, v)| (*a, *v))
            .collect();
        blind.sort_by(|a, b| b.1.total_cmp(&a.1));
        let blind_str = blind
            .iter()
            .take(3)
            .map(|(a, v)| format!("{a} ({v:.0} users)"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:<8} {:>14.0} {:>9.0}%  {}",
            c.country.as_str(),
            c.apnic_users,
            100.0 * c.fraction_seen,
            if blind_str.is_empty() {
                "-".into()
            } else {
                blind_str
            }
        );
    }
    println!(
        "\n(coverage = fraction of APNIC-estimated users in ASes where either \
         technique found activity)"
    );
}
