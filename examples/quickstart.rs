//! Quickstart: run the whole pipeline at test scale and print the
//! headline validations plus the AS-level overlap table.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```

use clientmap::{Pipeline, PipelineConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    eprintln!("generating world + running both techniques (seed {seed})…");
    let out = Pipeline::run(PipelineConfig::tiny(seed)).expect("pipeline run is healthy");

    let report = out.report();
    println!("{}", report.headlines());
    println!("{}", report.table3());

    println!(
        "cache probing: {} probes, {} active /24s across {} hit scopes \
         ({} scope-0 hits discarded, {} drops)",
        out.cache_probe.probes_sent,
        out.cache_probe.active_set().num_slash24s(),
        out.cache_probe.hit_prefixes().len(),
        out.cache_probe.scope0_hits,
        out.cache_probe.drops,
    );
    println!(
        "DNS logs: {} resolvers with Chromium activity ({} noise records rejected)",
        out.dns_logs.resolvers.len(),
        out.dns_logs.rejected_noise_records,
    );
}
