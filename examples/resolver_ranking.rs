//! Resolver ranking: run the DNS-logs technique alone (it needs only a
//! root-trace crawl), rank recursive resolvers by Chromium activity,
//! and compare the ranking to Microsoft's resolver observations —
//! Appendix B.3's claim that the two "rely on the same intermediate
//! signal" and agree.
//!
//! ```sh
//! cargo run --release --example resolver_ranking [seed]
//! ```

use clientmap::{crawl, ChromiumClassifier};
use clientmap::{Sim, SimTime};
use clientmap::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(23u64);

    eprintln!("capturing 2 days of root traces (seed {seed})…");
    let sim = Sim::new(World::generate(WorldConfig::tiny(seed)));
    let traces = sim.capture_root_traces(SimTime::ZERO, 2, 0.01);
    let result = crawl(&traces, &ChromiumClassifier::default());

    // Microsoft's view for comparison.
    let cdn = sim.collect_cdn_logs(SimTime::ZERO, SimTime::from_hours(24));

    println!(
        "DNS-logs technique: {} resolvers, {} records examined, {} noise names rejected\n",
        result.resolvers.len(),
        result.records_examined,
        result.rejected_noise_records
    );
    println!(
        "{:<18} {:>14} {:>16} {:<10}",
        "resolver", "chromium est.", "MS client IPs", "kind"
    );
    for r in result.resolvers.iter().take(15) {
        let addr = r.resolver_addr;
        let ms = cdn.resolvers.get(&addr).copied().unwrap_or(0);
        let kind = if sim.gpdns().pop_of_egress(addr).is_some() {
            "google-pop".to_string()
        } else {
            sim.world()
                .resolvers
                .iter()
                .find(|x| x.addr == addr)
                .map(|x| format!("{:?}", x.kind).to_lowercase())
                .unwrap_or_else(|| "?".into())
        };
        let dotted = format!(
            "{}.{}.{}.{}",
            addr >> 24,
            (addr >> 16) & 255,
            (addr >> 8) & 255,
            addr & 255
        );
        println!("{dotted:<18} {:>14.0} {ms:>16} {kind:<10}", r.probes);
    }

    // Rank agreement: Spearman-ish check on the shared resolvers.
    let mut pairs: Vec<(f64, f64)> = result
        .resolvers
        .iter()
        .filter_map(|r| {
            cdn.resolvers
                .get(&r.resolver_addr)
                .map(|ms| (r.probes, *ms as f64))
        })
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let top_half_ms: f64 = pairs.iter().take(pairs.len() / 2).map(|p| p.1).sum();
    let total_ms: f64 = pairs.iter().map(|p| p.1).sum();
    println!(
        "\nthe Chromium-ranked top half of shared resolvers carries {:.0}% of \
         Microsoft-observed client IPs ({} shared resolvers)",
        100.0 * top_half_ms / total_ms.max(1.0),
        pairs.len()
    );
}
