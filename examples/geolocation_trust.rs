//! Geolocation trust: "can a geolocation database known to be good at
//! locating users and bad at infrastructure be trusted for a
//! particular prefix?" (paper §1).
//!
//! Geolocation databases are accurate for eyeball space and poor for
//! infrastructure. Knowing *which prefixes have clients* therefore
//! tells you which database entries to trust. This example scores the
//! database's true placement error (vs simulation ground truth) for
//! prefixes the cache-probing map marks active vs the rest.
//!
//! ```sh
//! cargo run --release --example geolocation_trust [seed]
//! ```

use clientmap::Prefix;
use clientmap::Sim;
use clientmap::{run_technique, ProbeConfig};
use clientmap::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11u64);

    eprintln!("building world and running cache probing (seed {seed})…");
    let world = World::generate(WorldConfig::tiny(seed));
    let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
    let mut sim = Sim::new(world);
    let mut cfg = ProbeConfig::test_scale();
    cfg.duration_hours = 2.0;
    cfg.calibration_sample = 300;
    let result = run_technique(&mut sim, &cfg, &universe);
    let active = result.active_set();

    // Score geo-DB placement error against ground truth, split by the
    // *public* activity verdict.
    let world = sim.world();
    let mut err_active: Vec<f64> = Vec::new();
    let mut err_rest: Vec<f64> = Vec::new();
    for s in &world.slash24s {
        let Some(entry) = world.geodb.lookup(s.prefix) else {
            continue;
        };
        let err = s.coord.distance_km(&entry.coord);
        if active.contains_slash24(s.prefix) {
            err_active.push(err);
        } else {
            err_rest.push(err);
        }
    }
    let stats = |v: &mut Vec<f64>| -> (usize, f64, f64) {
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n == 0 {
            return (0, 0.0, 0.0);
        }
        (n, v[n / 2], v[(n as f64 * 0.95) as usize % n])
    };
    let (na, med_a, p95_a) = stats(&mut err_active);
    let (nr, med_r, p95_r) = stats(&mut err_rest);

    println!("geolocation placement error vs ground truth, split by activity map:");
    println!(
        "{:<28} {:>8} {:>12} {:>12}",
        "prefix class", "/24s", "median km", "p95 km"
    );
    println!(
        "{:<28} {:>8} {:>12.1} {:>12.1}",
        "marked ACTIVE (trust geo)", na, med_a, p95_a
    );
    println!(
        "{:<28} {:>8} {:>12.1} {:>12.1}",
        "not marked (geo suspect)", nr, med_r, p95_r
    );
    println!(
        "\nverdict: prefixes the public activity map marks active are geolocated \
         {:.1}x more tightly at the median.",
        if med_a > 0.0 {
            med_r / med_a
        } else {
            f64::INFINITY
        }
    );
}
