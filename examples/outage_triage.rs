//! Outage triage: "does an outage impact any users?" — the paper's
//! opening motivation (§1).
//!
//! A simulated outage takes down a handful of announced blocks. An
//! operator holding only the *public* activity map (the cache-probing
//! active set) triages which outage-affected prefixes actually host
//! clients — and we score that triage against ground truth.
//!
//! ```sh
//! cargo run --release --example outage_triage [seed]
//! ```

use clientmap::Sim;
use clientmap::{run_technique, ProbeConfig};
use clientmap::{Prefix, SeedMixer};
use clientmap::{World, WorldConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);

    eprintln!("building world and running cache probing (seed {seed})…");
    let world = World::generate(WorldConfig::tiny(seed));
    let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
    let mut sim = Sim::new(world);
    let mut cfg = ProbeConfig::test_scale();
    cfg.duration_hours = 2.0;
    cfg.calibration_sample = 300;
    let result = run_technique(&mut sim, &cfg, &universe);
    let active = result.active_set();

    // A deterministic "outage": 12 random routed blocks go dark.
    let world = sim.world();
    let mut rng = SeedMixer::new(seed).mix_str("outage").finish();
    let routed: Vec<Prefix> = world
        .blocks
        .iter()
        .filter(|b| b.routed)
        .map(|b| b.prefix)
        .collect();
    let mut outage: Vec<Prefix> = Vec::new();
    while outage.len() < 12 && outage.len() < routed.len() {
        rng = clientmap::splitmix64(rng);
        let p = routed[(rng as usize) % routed.len()];
        if !outage.contains(&p) {
            outage.push(p);
        }
    }

    println!("outage-affected blocks and triage verdicts:");
    println!(
        "{:<20} {:>9} {:>12} {:>14}",
        "block", "/24s", "map verdict", "truth (users)"
    );
    let mut correct = 0usize;
    for block in &outage {
        let detected = active.intersects(*block);
        let true_users: f64 = block
            .slash24s()
            .filter_map(|p| world.slash24(p))
            .map(|s| s.users + s.machines)
            .sum();
        let truth = true_users > 0.0;
        if detected == truth {
            correct += 1;
        }
        println!(
            "{:<20} {:>9} {:>12} {:>14.0}",
            block.to_string(),
            block.num_slash24s(),
            if detected {
                "USERS LIKELY"
            } else {
                "likely dark"
            },
            true_users,
        );
    }
    println!(
        "\ntriage agreement with ground truth: {}/{} blocks",
        correct,
        outage.len()
    );
    println!(
        "(activity map: {} active /24s over {} routed)",
        active.num_slash24s(),
        world.routed_slash24s()
    );
}
