//! Offline stand-in for the `criterion` crate (API subset).
//!
//! Implements just enough of the criterion surface for the workspace's
//! benches to compile and produce useful numbers offline: per-benchmark
//! mean wall-clock time over `sample_size` iterations, printed to
//! stdout. No statistical analysis, HTML reports, or regression
//! detection — the benches exist to profile hot paths, and a mean is
//! enough to compare two commits side by side.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]; only affects how
/// many setup outputs are pre-built per timing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.parent.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over up to `sample_size` iterations, stopping
    /// early once the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("bench {id:<40} (no iterations)");
            return;
        }
        let per_iter = self.total.as_nanos() / u128::from(self.iters);
        println!(
            "bench {id:<40} {per_iter:>12} ns/iter ({} iters)",
            self.iters
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
