//! EDNS0 (RFC 6891) and the EDNS Client Subnet option (RFC 7871).
//!
//! ECS is the mechanism the cache-probing technique rides on: Google
//! Public DNS accepts a client-supplied ECS prefix and keeps separate
//! cache entries per scope, so a *non-recursive* query with a crafted
//! ECS prefix reveals whether anyone in that prefix resolved the domain
//! recently (paper §3.1).

use clientmap_net::Prefix;

use crate::DnsError;

/// The ECS option code (RFC 7871).
pub const OPTION_CODE_ECS: u16 = 8;
/// Address family 1 = IPv4 (RFC 7871 uses the address-family registry).
pub const ECS_FAMILY_IPV4: u16 = 1;

/// An EDNS Client Subnet option for IPv4.
///
/// `source` is the prefix the querier asserts the client is in;
/// `scope_len` is meaningful in responses: the authoritative's statement
/// of how wide the answer applies (0 = whole Internet).
///
/// ```
/// use clientmap_dns::EcsOption;
/// let ecs = EcsOption::query("203.0.113.0/24".parse().unwrap());
/// assert_eq!(ecs.source.len(), 24);
/// assert_eq!(ecs.scope_len, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcsOption {
    /// The client subnet (always IPv4 here), canonical.
    pub source: Prefix,
    /// Scope prefix length (response side); 0 in queries.
    pub scope_len: u8,
}

impl EcsOption {
    /// ECS option as sent in a query: scope 0.
    pub fn query(source: Prefix) -> Self {
        EcsOption {
            source,
            scope_len: 0,
        }
    }

    /// ECS option as returned in a response with the given scope.
    pub fn response(source: Prefix, scope_len: u8) -> Result<Self, DnsError> {
        if scope_len > 32 {
            return Err(DnsError::InvalidEcsPrefix(scope_len));
        }
        Ok(EcsOption { source, scope_len })
    }

    /// The *scope prefix* of a response: the source address truncated to
    /// the scope length. This is the prefix a cache entry is valid for.
    pub fn scope_prefix(&self) -> Prefix {
        Prefix::new(self.source.addr(), self.scope_len).expect("scope_len validated <= 32")
    }
}

/// Any EDNS option: ECS is modelled, others are carried opaquely.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EdnsOption {
    /// RFC 7871 client subnet.
    Ecs(EcsOption),
    /// Unknown option, preserved for lossless round trips.
    Other {
        /// Option code.
        code: u16,
        /// Raw option payload.
        data: Vec<u8>,
    },
}

/// The EDNS0 pseudo-header carried in an OPT record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edns {
    /// Requestor's maximum UDP payload size.
    pub udp_payload_size: u16,
    /// Extended RCODE high bits (we keep 0 throughout).
    pub ext_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DO bit and flags word.
    pub flags: u16,
    /// Options, in order.
    pub options: Vec<EdnsOption>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: 4096,
            ext_rcode: 0,
            version: 0,
            flags: 0,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// An EDNS block carrying a single ECS query option.
    pub fn with_ecs(source: Prefix) -> Self {
        Edns {
            options: vec![EdnsOption::Ecs(EcsOption::query(source))],
            ..Edns::default()
        }
    }

    /// The first ECS option, if present.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.options.iter().find_map(|o| match o {
            EdnsOption::Ecs(e) => Some(e),
            EdnsOption::Other { .. } => None,
        })
    }

    /// Replaces (or inserts) the ECS option.
    pub fn set_ecs(&mut self, ecs: EcsOption) {
        for o in &mut self.options {
            if let EdnsOption::Ecs(e) = o {
                *e = ecs;
                return;
            }
        }
        self.options.push(EdnsOption::Ecs(ecs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn query_option_has_zero_scope() {
        let e = EcsOption::query(p("203.0.113.0/24"));
        assert_eq!(e.scope_len, 0);
        assert_eq!(e.scope_prefix(), Prefix::DEFAULT);
    }

    #[test]
    fn response_scope_prefix_truncates() {
        let e = EcsOption::response(p("203.0.113.0/24"), 16).unwrap();
        assert_eq!(e.scope_prefix(), p("203.0.0.0/16"));
        assert!(EcsOption::response(p("203.0.113.0/24"), 33).is_err());
    }

    #[test]
    fn edns_ecs_accessors() {
        let mut e = Edns::with_ecs(p("10.0.0.0/24"));
        assert_eq!(e.ecs().unwrap().source, p("10.0.0.0/24"));
        e.set_ecs(EcsOption::response(p("10.0.0.0/24"), 20).unwrap());
        assert_eq!(e.ecs().unwrap().scope_len, 20);
        assert_eq!(e.options.len(), 1, "set_ecs must replace, not append");
    }

    #[test]
    fn edns_without_ecs() {
        let e = Edns::default();
        assert!(e.ecs().is_none());
    }
}
