//! An ECS-scoped DNS cache with TTL expiry and bounded capacity.
//!
//! Models how an ECS-aware recursive resolver (Google Public DNS) keeps
//! **separate cache entries per client-subnet scope** for each
//! `⟨name, type⟩` (RFC 7871 §7.3.1). This is the observable state the
//! paper's cache-probing technique snoops: a non-recursive query with a
//! crafted ECS prefix gets an answer iff some entry's scope contains
//! that prefix and has not expired.
//!
//! Time is caller-supplied simulated milliseconds; the cache performs
//! lazy expiry on lookup plus earliest-expiry eviction when the capacity
//! bound is hit.

use std::collections::{BinaryHeap, HashMap};

use clientmap_net::{Prefix, PrefixTrie};

use crate::{DomainName, Record, RrType};

/// Cache index: one scoped entry family per name and type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owner name.
    pub name: DomainName,
    /// Record type.
    pub rtype: RrType,
}

impl CacheKey {
    /// Convenience constructor.
    pub fn new(name: DomainName, rtype: RrType) -> Self {
        CacheKey { name, rtype }
    }
}

/// One cached, scoped answer.
#[derive(Debug, Clone)]
pub struct EcsCacheEntry {
    /// The answer records, with their original TTLs.
    pub records: Vec<Record>,
    /// The ECS scope the entry is valid for (`/0` = whole Internet).
    pub scope: Prefix,
    /// Absolute expiry, ms.
    pub expires_ms: u64,
    /// Insertion time, ms (lets callers compute entry age).
    pub inserted_ms: u64,
}

impl EcsCacheEntry {
    /// Remaining TTL in whole seconds at `now_ms` (0 if expired).
    pub fn remaining_ttl_secs(&self, now_ms: u64) -> u32 {
        (self.expires_ms.saturating_sub(now_ms) / 1000) as u32
    }
}

/// The result of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// A live entry whose scope contains the queried prefix.
    Hit(EcsCacheEntry),
    /// No live entry covers the queried prefix.
    Miss,
}

impl CacheLookup {
    /// Whether this is a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheLookup::Hit(_))
    }
}

/// Running counters, exposed for tests and the simulator's metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live covering entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries removed by the capacity bound.
    pub evictions: u64,
    /// Entries removed because they had expired.
    pub expirations: u64,
}

/// Scoped entries for one `⟨name, type⟩`.
#[derive(Debug, Default)]
struct ScopedEntries {
    /// Entries keyed by scope prefix. Scope `/0` lives here too (the
    /// trie supports the default route).
    by_scope: PrefixTrie<EcsCacheEntry>,
}

/// Heap item for earliest-expiry eviction (lazy deletion).
#[derive(Debug, PartialEq, Eq)]
struct ExpirySlot {
    expires_ms: u64,
    key: CacheKey,
    scope: Prefix,
}

impl Ord for ExpirySlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest expiry first.
        other
            .expires_ms
            .cmp(&self.expires_ms)
            .then_with(|| other.scope.cmp(&self.scope))
    }
}

impl PartialOrd for ExpirySlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An ECS-scoped DNS cache.
///
/// ```
/// use clientmap_dns::{CacheKey, EcsCache, Record, RrType};
/// use clientmap_net::Prefix;
///
/// let mut cache = EcsCache::new(1024);
/// let key = CacheKey::new("www.google.com".parse().unwrap(), RrType::A);
/// let scope: Prefix = "203.0.113.0/24".parse().unwrap();
/// let rec = Record::a("www.google.com".parse().unwrap(), 300, 0x01020304);
/// cache.insert(key.clone(), scope, vec![rec], 300, 0);
///
/// // A /24 query inside the scope hits…
/// assert!(cache.lookup(&key, scope, 10_000).is_hit());
/// // …a different /24 misses…
/// assert!(!cache.lookup(&key, "203.0.114.0/24".parse().unwrap(), 10_000).is_hit());
/// // …and after the TTL everything is gone.
/// assert!(!cache.lookup(&key, scope, 301_000).is_hit());
/// ```
#[derive(Debug)]
pub struct EcsCache {
    map: HashMap<CacheKey, ScopedEntries>,
    expiry: BinaryHeap<ExpirySlot>,
    /// Live entry count (≤ capacity after every insert).
    len: usize,
    capacity: usize,
    stats: CacheStats,
}

impl EcsCache {
    /// Creates a cache bounded to `capacity` scoped entries.
    pub fn new(capacity: usize) -> Self {
        EcsCache {
            map: HashMap::new(),
            expiry: BinaryHeap::new(),
            len: 0,
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Live entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Exports the running counters plus current occupancy under
    /// `{prefix}.` in `m`. Counters accumulate across exports, so
    /// export each cache at most once per registry (or use per-cache
    /// prefixes, as the micro-simulation does per pool).
    pub fn export_metrics(&self, m: &clientmap_telemetry::MetricsRegistry, prefix: &str) {
        m.counter(&format!("{prefix}.hits")).add(self.stats.hits);
        m.counter(&format!("{prefix}.misses"))
            .add(self.stats.misses);
        m.counter(&format!("{prefix}.inserts"))
            .add(self.stats.inserts);
        m.counter(&format!("{prefix}.evictions"))
            .add(self.stats.evictions);
        m.counter(&format!("{prefix}.expirations"))
            .add(self.stats.expirations);
        m.counter(&format!("{prefix}.entries")).add(self.len as u64);
    }

    /// Inserts an answer valid for `scope`, expiring `ttl_secs` from
    /// `now_ms`. Replacing an existing `⟨key, scope⟩` entry refreshes it.
    pub fn insert(
        &mut self,
        key: CacheKey,
        scope: Prefix,
        records: Vec<Record>,
        ttl_secs: u32,
        now_ms: u64,
    ) {
        let expires_ms = now_ms + u64::from(ttl_secs) * 1000;
        let entry = EcsCacheEntry {
            records,
            scope,
            expires_ms,
            inserted_ms: now_ms,
        };
        let scoped = self.map.entry(key.clone()).or_default();
        if scoped.by_scope.insert(scope, entry).is_none() {
            self.len += 1;
        }
        self.expiry.push(ExpirySlot {
            expires_ms,
            key,
            scope,
        });
        self.stats.inserts += 1;
        self.enforce_capacity(now_ms);
    }

    /// Looks up an answer for `client` (the ECS source prefix of the
    /// query): returns the most specific live entry whose scope contains
    /// `client`. Expired covering entries are removed on the way.
    pub fn lookup(&mut self, key: &CacheKey, client: Prefix, now_ms: u64) -> CacheLookup {
        let Some(scoped) = self.map.get_mut(key) else {
            self.stats.misses += 1;
            return CacheLookup::Miss;
        };
        // Collect covering scopes (most specific last), then walk from the
        // most specific, discarding expired ones.
        let covering: Vec<Prefix> = scoped
            .by_scope
            .covering(client)
            .iter()
            .map(|(p, _)| *p)
            .collect();
        for scope in covering.iter().rev() {
            let live = scoped
                .by_scope
                .get(*scope)
                .map(|e| e.expires_ms > now_ms)
                .unwrap_or(false);
            if live {
                let entry = scoped.by_scope.get(*scope).expect("checked").clone();
                self.stats.hits += 1;
                return CacheLookup::Hit(entry);
            }
            scoped.by_scope.remove(*scope);
            self.len -= 1;
            self.stats.expirations += 1;
        }
        if scoped.by_scope.is_empty() {
            self.map.remove(key);
        }
        self.stats.misses += 1;
        CacheLookup::Miss
    }

    /// Removes every expired entry (eager sweep; lookups also expire
    /// lazily). Returns how many were removed.
    pub fn purge_expired(&mut self, now_ms: u64) -> usize {
        let mut removed = 0;
        let keys: Vec<CacheKey> = self.map.keys().cloned().collect();
        for key in keys {
            let scoped = self.map.get_mut(&key).expect("key just listed");
            let dead: Vec<Prefix> = scoped
                .by_scope
                .iter()
                .into_iter()
                .filter(|(_, e)| e.expires_ms <= now_ms)
                .map(|(p, _)| p)
                .collect();
            for p in dead {
                scoped.by_scope.remove(p);
                removed += 1;
            }
            if scoped.by_scope.is_empty() {
                self.map.remove(&key);
            }
        }
        self.len -= removed;
        self.stats.expirations += removed as u64;
        removed
    }

    /// Evicts earliest-expiring entries until within capacity.
    fn enforce_capacity(&mut self, now_ms: u64) {
        while self.len > self.capacity {
            let Some(slot) = self.expiry.pop() else {
                // Heap exhausted by stale slots: rebuild from live entries.
                self.rebuild_expiry_heap();
                continue;
            };
            let Some(scoped) = self.map.get_mut(&slot.key) else {
                continue; // stale slot
            };
            // Only evict if the slot still describes the live entry
            // (same expiry — otherwise the entry was refreshed).
            let matches = scoped
                .by_scope
                .get(slot.scope)
                .map(|e| e.expires_ms == slot.expires_ms)
                .unwrap_or(false);
            if !matches {
                continue; // stale slot
            }
            scoped.by_scope.remove(slot.scope);
            if scoped.by_scope.is_empty() {
                self.map.remove(&slot.key);
            }
            self.len -= 1;
            if slot.expires_ms <= now_ms {
                self.stats.expirations += 1;
            } else {
                self.stats.evictions += 1;
            }
        }
    }

    fn rebuild_expiry_heap(&mut self) {
        self.expiry = self
            .map
            .iter()
            .flat_map(|(key, scoped)| {
                scoped
                    .by_scope
                    .iter()
                    .into_iter()
                    .map(|(scope, e)| ExpirySlot {
                        expires_ms: e.expires_ms,
                        key: key.clone(),
                        scope,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str) -> CacheKey {
        CacheKey::new(name.parse().unwrap(), RrType::A)
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rec(name: &str, ttl: u32) -> Record {
        Record::a(name.parse().unwrap(), ttl, 0x7F000001)
    }

    #[test]
    fn hit_within_scope_and_ttl() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.1.0.0/16"),
            vec![rec("a.example", 60)],
            60,
            0,
        );
        // Any /24 inside the /16 scope hits.
        assert!(c
            .lookup(&key("a.example"), p("10.1.7.0/24"), 59_999)
            .is_hit());
        // Outside the scope: miss.
        assert!(!c.lookup(&key("a.example"), p("10.2.0.0/24"), 1).is_hit());
        // Different name: miss.
        assert!(!c.lookup(&key("b.example"), p("10.1.7.0/24"), 1).is_hit());
        // Different type: miss.
        let kt = CacheKey::new("a.example".parse().unwrap(), RrType::Txt);
        assert!(!c.lookup(&kt, p("10.1.7.0/24"), 1).is_hit());
    }

    #[test]
    fn expires_exactly_at_ttl() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.1.0.0/16"),
            vec![rec("a.example", 60)],
            60,
            1_000,
        );
        assert!(c
            .lookup(&key("a.example"), p("10.1.0.0/24"), 60_999)
            .is_hit());
        assert!(!c
            .lookup(&key("a.example"), p("10.1.0.0/24"), 61_000)
            .is_hit());
        assert_eq!(c.len(), 0, "expired entry must be removed");
    }

    #[test]
    fn most_specific_scope_wins() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.0.0.0/8"),
            vec![rec("a.example", 60)],
            60,
            0,
        );
        c.insert(
            key("a.example"),
            p("10.1.0.0/16"),
            vec![rec("a.example", 120)],
            120,
            0,
        );
        match c.lookup(&key("a.example"), p("10.1.2.0/24"), 10) {
            CacheLookup::Hit(e) => assert_eq!(e.scope, p("10.1.0.0/16")),
            CacheLookup::Miss => panic!("expected hit"),
        }
        // Prefix outside the /16 but inside the /8 gets the /8 entry.
        match c.lookup(&key("a.example"), p("10.9.0.0/24"), 10) {
            CacheLookup::Hit(e) => assert_eq!(e.scope, p("10.0.0.0/8")),
            CacheLookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn expired_specific_falls_back_to_live_coarse() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.0.0.0/8"),
            vec![rec("a.example", 600)],
            600,
            0,
        );
        c.insert(
            key("a.example"),
            p("10.1.0.0/16"),
            vec![rec("a.example", 10)],
            10,
            0,
        );
        // After the /16 expires, the /8 still answers.
        match c.lookup(&key("a.example"), p("10.1.2.0/24"), 20_000) {
            CacheLookup::Hit(e) => assert_eq!(e.scope, p("10.0.0.0/8")),
            CacheLookup::Miss => panic!("expected fallback hit"),
        }
    }

    #[test]
    fn scope_zero_answers_everyone() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            Prefix::DEFAULT,
            vec![rec("a.example", 60)],
            60,
            0,
        );
        match c.lookup(&key("a.example"), p("192.0.2.0/24"), 1) {
            CacheLookup::Hit(e) => assert!(e.scope.is_default()),
            CacheLookup::Miss => panic!("scope-0 entry must answer any prefix"),
        }
    }

    #[test]
    fn refresh_extends_ttl() {
        let mut c = EcsCache::new(16);
        let k = key("a.example");
        c.insert(
            k.clone(),
            p("10.1.0.0/16"),
            vec![rec("a.example", 60)],
            60,
            0,
        );
        c.insert(
            k.clone(),
            p("10.1.0.0/16"),
            vec![rec("a.example", 60)],
            60,
            50_000,
        );
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&k, p("10.1.0.0/24"), 100_000).is_hit());
    }

    #[test]
    fn capacity_evicts_earliest_expiry() {
        let mut c = EcsCache::new(2);
        c.insert(
            key("a.example"),
            p("10.1.0.0/24"),
            vec![rec("a.example", 10)],
            10,
            0,
        );
        c.insert(
            key("b.example"),
            p("10.2.0.0/24"),
            vec![rec("b.example", 100)],
            100,
            0,
        );
        c.insert(
            key("c.example"),
            p("10.3.0.0/24"),
            vec![rec("c.example", 50)],
            50,
            0,
        );
        assert_eq!(c.len(), 2);
        // The 10s entry (earliest expiry) must be the one evicted.
        assert!(!c.lookup(&key("a.example"), p("10.1.0.0/24"), 1).is_hit());
        assert!(c.lookup(&key("b.example"), p("10.2.0.0/24"), 1).is_hit());
        assert!(c.lookup(&key("c.example"), p("10.3.0.0/24"), 1).is_hit());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refresh_does_not_leave_entry_vulnerable_to_stale_slot() {
        let mut c = EcsCache::new(2);
        let k = key("a.example");
        c.insert(
            k.clone(),
            p("10.1.0.0/24"),
            vec![rec("a.example", 10)],
            10,
            0,
        );
        // Refresh with a later expiry: the old heap slot is now stale.
        c.insert(
            k.clone(),
            p("10.1.0.0/24"),
            vec![rec("a.example", 1000)],
            1000,
            0,
        );
        // Fill to capacity + 1 to force eviction; the refreshed entry's
        // stale slot must be skipped, evicting by true expiry order.
        c.insert(
            key("b.example"),
            p("10.2.0.0/24"),
            vec![rec("b.example", 20)],
            20,
            0,
        );
        c.insert(
            key("c.example"),
            p("10.3.0.0/24"),
            vec![rec("c.example", 30)],
            30,
            0,
        );
        assert_eq!(c.len(), 2);
        assert!(
            c.lookup(&k, p("10.1.0.0/24"), 1).is_hit(),
            "refreshed entry survived"
        );
        assert!(!c.lookup(&key("b.example"), p("10.2.0.0/24"), 1).is_hit());
    }

    #[test]
    fn purge_expired_sweeps() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.1.0.0/24"),
            vec![rec("a.example", 10)],
            10,
            0,
        );
        c.insert(
            key("b.example"),
            p("10.2.0.0/24"),
            vec![rec("b.example", 100)],
            100,
            0,
        );
        assert_eq!(c.purge_expired(50_000), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.purge_expired(50_000), 0);
    }

    #[test]
    fn remaining_ttl_reported() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.1.0.0/24"),
            vec![rec("a.example", 60)],
            60,
            0,
        );
        match c.lookup(&key("a.example"), p("10.1.0.0/24"), 45_000) {
            CacheLookup::Hit(e) => {
                assert_eq!(e.remaining_ttl_secs(45_000), 15);
                assert_eq!(e.inserted_ms, 0);
            }
            CacheLookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn stats_track_operations() {
        let mut c = EcsCache::new(16);
        c.insert(
            key("a.example"),
            p("10.1.0.0/24"),
            vec![rec("a.example", 60)],
            60,
            0,
        );
        let _ = c.lookup(&key("a.example"), p("10.1.0.0/24"), 1);
        let _ = c.lookup(&key("a.example"), p("10.9.0.0/24"), 1);
        let s = c.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn export_metrics_mirrors_stats() {
        let mut c = EcsCache::new(4);
        let key = CacheKey::new("www.google.com".parse().unwrap(), RrType::A);
        let scope: Prefix = "10.0.0.0/24".parse().unwrap();
        c.insert(key.clone(), scope, vec![], 60, 0);
        assert!(c.lookup(&key, scope, 1_000).is_hit());
        assert!(!c
            .lookup(&key, "10.0.1.0/24".parse().unwrap(), 1_000)
            .is_hit());
        let m = clientmap_telemetry::MetricsRegistry::new();
        c.export_metrics(&m, "cache");
        let snap = m.snapshot();
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.misses"), 1);
        assert_eq!(snap.counter("cache.inserts"), 1);
        assert_eq!(snap.counter("cache.entries"), 1);
    }
}
