//! Error types for `clientmap-dns`.

use std::fmt;

/// Errors constructing DNS values (names, records, options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// A domain-name label was empty, too long, or contained a
    /// non-ASCII / disallowed byte.
    InvalidLabel(String),
    /// The full name exceeded 255 octets in wire form.
    NameTooLong(String),
    /// An ECS prefix length did not match the address family.
    InvalidEcsPrefix(u8),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::InvalidLabel(l) => write!(f, "invalid DNS label: {l:?}"),
            DnsError::NameTooLong(n) => write!(f, "domain name too long: {n:?}"),
            DnsError::InvalidEcsPrefix(l) => write!(f, "invalid ECS prefix length: {l}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Errors produced by the wire codec.
///
/// Decoding is fully bounds-checked: any of these is returned instead of
/// panicking on malformed or truncated packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The packet ended before a complete field could be read.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer(u16),
    /// A label length byte used the reserved `0x40`/`0x80` forms.
    BadLabelType(u8),
    /// A decoded name violated length limits.
    NameTooLong,
    /// A label contained invalid bytes.
    InvalidLabel,
    /// An unknown or unsupported RR type appeared where a concrete
    /// rdata model was required.
    UnsupportedType(u16),
    /// An OPT pseudo-record was malformed.
    BadOpt(&'static str),
    /// An ECS option was malformed (family, prefix length, padding).
    BadEcs(&'static str),
    /// rdata length did not match the parsed rdata.
    RdataLengthMismatch {
        /// Length declared in the RDLENGTH field.
        declared: u16,
        /// Bytes actually consumed parsing the rdata.
        consumed: u16,
    },
    /// A name or message being *encoded* violated a protocol limit.
    EncodeTooLong,
    /// A structurally valid packet used a feature this model does not
    /// support (e.g. multiple questions).
    Unsupported(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadPointer(off) => write!(f, "bad compression pointer to offset {off}"),
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#04x}"),
            WireError::NameTooLong => write!(f, "decoded name exceeds 255 octets"),
            WireError::InvalidLabel => write!(f, "label contains invalid bytes"),
            WireError::UnsupportedType(t) => write!(f, "unsupported RR type {t}"),
            WireError::BadOpt(why) => write!(f, "malformed OPT record: {why}"),
            WireError::BadEcs(why) => write!(f, "malformed ECS option: {why}"),
            WireError::RdataLengthMismatch { declared, consumed } => {
                write!(
                    f,
                    "rdata length mismatch: declared {declared}, consumed {consumed}"
                )
            }
            WireError::EncodeTooLong => write!(f, "value too long to encode"),
            WireError::Unsupported(what) => write!(f, "unsupported message feature: {what}"),
        }
    }
}

impl std::error::Error for WireError {}
