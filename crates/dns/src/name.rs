//! Domain names: validated labels, case-insensitive comparison.
//!
//! Names are stored lowercased (DNS comparison is case-insensitive,
//! RFC 1035 §2.3.3) as a sequence of [`Label`]s, root-last, without the
//! trailing empty root label. The Chromium interception-probe
//! classifier (paper §3.2) relies on [`DomainName::is_single_label`] and
//! per-label shape inspection, so labels expose their raw bytes.

use std::fmt;
use std::str::FromStr;

use crate::DnsError;

/// Maximum length of one label in octets (RFC 1035).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name in wire form, including length bytes and the
/// root terminator (RFC 1035).
pub const MAX_NAME_LEN: usize = 255;

/// One DNS label, stored lowercase.
///
/// Accepts LDH (letters, digits, hyphen) plus underscore, which appears
/// in real query streams (e.g. `_dmarc`); everything else is rejected.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(String);

impl Label {
    /// Validates and lowercases a label.
    pub fn new(s: &str) -> Result<Self, DnsError> {
        if s.is_empty() || s.len() > MAX_LABEL_LEN {
            return Err(DnsError::InvalidLabel(s.to_string()));
        }
        let ok = s
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
        if !ok {
            return Err(DnsError::InvalidLabel(s.to_string()));
        }
        Ok(Label(s.to_ascii_lowercase()))
    }

    /// The label text (lowercase).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Labels are never empty, but the method mirrors `len`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether every byte is a lowercase ASCII letter — the shape of a
    /// Chromium DNS-interception probe label.
    pub fn is_all_lowercase_alpha(&self) -> bool {
        !self.0.is_empty() && self.0.bytes().all(|b| b.is_ascii_lowercase())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A validated domain name (sequence of labels, most-specific first).
///
/// ```
/// use clientmap_dns::DomainName;
/// let n: DomainName = "WWW.Example.COM".parse().unwrap();
/// assert_eq!(n.to_string(), "www.example.com");
/// assert_eq!(n.num_labels(), 3);
/// let parent: DomainName = "example.com".parse().unwrap();
/// assert!(n.is_subdomain_of(&parent));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    labels: Vec<Label>,
}

impl DomainName {
    /// The DNS root (empty name).
    pub fn root() -> Self {
        DomainName { labels: Vec::new() }
    }

    /// Builds a name from pre-validated labels, checking the total
    /// wire-form length.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, DnsError> {
        let name = DomainName { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(name.to_string()));
        }
        Ok(name)
    }

    /// Parses a dotted name. A single trailing dot (FQDN form) is
    /// accepted; `.` alone or the empty string is the root.
    pub fn parse(s: &str) -> Result<Self, DnsError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Self::root());
        }
        let labels = s.split('.').map(Label::new).collect::<Result<_, _>>()?;
        Self::from_labels(labels)
    }

    /// The labels, most-specific (leftmost) first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels; the root has zero.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Whether the name has exactly one label (no dots) — the form of a
    /// Chromium interception probe, which has "no valid TLD appended".
    pub fn is_single_label(&self) -> bool {
        self.labels.len() == 1
    }

    /// The leftmost label, if any.
    pub fn first_label(&self) -> Option<&Label> {
        self.labels.first()
    }

    /// Length in wire form (length bytes + label bytes + root byte).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Whether `self` is a (strict or equal) subdomain of `other`:
    /// `www.example.com` is a subdomain of `example.com` and of itself.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - other.labels.len();
        self.labels[skip..] == other.labels[..]
    }

    /// The parent name (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<DomainName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DomainName {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepends a label: `DomainName::parse("example.com")?.prepend("www")`
    /// is `www.example.com`.
    pub fn prepend(&self, label: &str) -> Result<DomainName, DnsError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(Label::new(label)?);
        labels.extend(self.labels.iter().cloned());
        Self::from_labels(labels)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl FromStr for DomainName {
    type Err = DnsError;

    fn from_str(s: &str) -> Result<Self, DnsError> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n: DomainName = "www.Example.COM".parse().unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.num_labels(), 3);
        assert_eq!(n.first_label().unwrap().as_str(), "www");
    }

    #[test]
    fn fqdn_trailing_dot() {
        let a: DomainName = "example.com.".parse().unwrap();
        let b: DomainName = "example.com".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_forms() {
        assert!(DomainName::parse("").unwrap().is_root());
        assert!(DomainName::parse(".").unwrap().is_root());
        assert_eq!(DomainName::root().to_string(), ".");
        assert_eq!(DomainName::root().wire_len(), 1);
    }

    #[test]
    fn rejects_bad_labels() {
        for s in ["a..b", "-", "a b.com", "ex\u{e9}.com", "a.", ".."] {
            // "a." is valid FQDN; exclude it from this loop's expectation.
            if s == "a." {
                continue;
            }
            if s == "-" {
                // '-' alone is actually LDH-valid by charset; we allow it.
                assert!(DomainName::parse(s).is_ok());
                continue;
            }
            assert!(DomainName::parse(s).is_err(), "accepted {s:?}");
        }
        let long = "a".repeat(64);
        assert!(Label::new(&long).is_err());
        assert!(Label::new(&"a".repeat(63)).is_ok());
        assert!(Label::new("").is_err());
    }

    #[test]
    fn rejects_too_long_names() {
        // Four 63-byte labels = 4*64+1 = 257 > 255 in wire form.
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert!(DomainName::parse(&s).is_err());
        // Three fit (3*64 + 1 = 193).
        let s3 = format!("{l}.{l}.{l}");
        assert!(DomainName::parse(&s3).is_ok());
    }

    #[test]
    fn subdomain_relation() {
        let www: DomainName = "www.example.com".parse().unwrap();
        let ex: DomainName = "example.com".parse().unwrap();
        let com: DomainName = "com".parse().unwrap();
        let other: DomainName = "example.org".parse().unwrap();
        assert!(www.is_subdomain_of(&ex));
        assert!(www.is_subdomain_of(&com));
        assert!(www.is_subdomain_of(&www));
        assert!(www.is_subdomain_of(&DomainName::root()));
        assert!(!ex.is_subdomain_of(&www));
        assert!(!www.is_subdomain_of(&other));
    }

    #[test]
    fn parent_and_prepend() {
        let n: DomainName = "www.example.com".parse().unwrap();
        assert_eq!(n.parent().unwrap().to_string(), "example.com");
        let again = n.parent().unwrap().prepend("www").unwrap();
        assert_eq!(again, n);
        assert!(DomainName::root().parent().is_none());
    }

    #[test]
    fn single_label_and_shape() {
        let probe: DomainName = "sdhfjssf".parse().unwrap();
        assert!(probe.is_single_label());
        assert!(probe.first_label().unwrap().is_all_lowercase_alpha());
        let mixed: DomainName = "ab3cd".parse().unwrap();
        assert!(!mixed.first_label().unwrap().is_all_lowercase_alpha());
        let fqdn: DomainName = "a.b".parse().unwrap();
        assert!(!fqdn.is_single_label());
    }

    #[test]
    fn underscore_labels_allowed() {
        assert!(DomainName::parse("_dmarc.example.com").is_ok());
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        let a: DomainName = "A.B.C".parse().unwrap();
        let b: DomainName = "a.b.c".parse().unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
