//! DNS messages (header + sections) with a builder-style API.

use clientmap_net::Prefix;

use crate::{DnsError, DomainName, EcsOption, Edns, Rcode, Record, RrClass, RrType};

/// DNS opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Anything else, by number.
    Other(u8),
}

impl Opcode {
    /// The 4-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// From the wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// The question section (we model the ubiquitous single-question case).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub rtype: RrType,
    /// Queried class.
    pub class: RrClass,
}

impl Question {
    /// An `A`-record question for `name`.
    pub fn a(name: &str) -> Result<Self, DnsError> {
        Ok(Question {
            name: name.parse()?,
            rtype: RrType::A,
            class: RrClass::In,
        })
    }

    /// A `TXT` question (used for `o-o.myaddr.l.google.com` PoP checks).
    pub fn txt(name: &str) -> Result<Self, DnsError> {
        Ok(Question {
            name: name.parse()?,
            rtype: RrType::Txt,
            class: RrClass::In,
        })
    }
}

/// A DNS message.
///
/// The flag bits relevant to cache snooping are modelled explicitly:
/// `recursion_desired` *must be false* for the paper's non-recursive
/// probes, and `authoritative`/`recursion_available` distinguish server
/// roles in the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// True for responses (QR bit).
    pub is_response: bool,
    /// Opcode.
    pub opcode: Opcode,
    /// AA bit.
    pub authoritative: bool,
    /// TC bit (answer truncated; retry over TCP).
    pub truncated: bool,
    /// RD bit. **The probe path sets this to `false`** so a cache miss
    /// is never resolved upstream (and never pollutes the cache).
    pub recursion_desired: bool,
    /// RA bit.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// The single question, if any.
    pub question: Option<Question>,
    /// Answer records.
    pub answers: Vec<Record>,
    /// Authority records.
    pub authority: Vec<Record>,
    /// Additional records, excluding OPT (handled by `edns`).
    pub additional: Vec<Record>,
    /// EDNS0 pseudo-header, if present.
    pub edns: Option<Edns>,
}

impl Message {
    /// A recursive query for `question` (RD set).
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            id,
            is_response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
            question: Some(question),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
            edns: None,
        }
    }

    /// Sets/clears the RD bit (builder style).
    pub fn with_recursion_desired(mut self, rd: bool) -> Message {
        self.recursion_desired = rd;
        self
    }

    /// Attaches an EDNS block with an ECS query option for `source`.
    pub fn with_ecs(mut self, source: Prefix) -> Message {
        match &mut self.edns {
            Some(e) => e.set_ecs(EcsOption::query(source)),
            None => self.edns = Some(Edns::with_ecs(source)),
        }
        self
    }

    /// The ECS option, if any.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.edns.as_ref().and_then(|e| e.ecs())
    }

    /// Builds the response skeleton for this query: copies ID, question
    /// and RD, sets QR and RA.
    pub fn response_for(query: &Message) -> Message {
        Message {
            id: query.id,
            is_response: true,
            opcode: query.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: true,
            rcode: Rcode::NoError,
            question: query.question.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
            edns: None,
        }
    }

    /// Marks the response with an rcode (builder style).
    pub fn with_rcode(mut self, rcode: Rcode) -> Message {
        self.rcode = rcode;
        self
    }

    /// Adds answers (builder style).
    pub fn with_answers(mut self, answers: Vec<Record>) -> Message {
        self.answers = answers;
        self
    }

    /// Attaches a response ECS option echoing `source` with `scope_len`.
    pub fn with_response_ecs(mut self, source: Prefix, scope_len: u8) -> Message {
        let ecs = EcsOption {
            source,
            scope_len: scope_len.min(32),
        };
        match &mut self.edns {
            Some(e) => e.set_ecs(ecs),
            None => {
                let mut edns = Edns::default();
                edns.set_ecs(ecs);
                self.edns = Some(edns);
            }
        }
        self
    }

    /// Whether this response carries at least one answer record.
    pub fn has_answers(&self) -> bool {
        !self.answers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Question {
        Question::a("www.example.com").unwrap()
    }

    #[test]
    fn query_defaults() {
        let m = Message::query(7, q());
        assert!(!m.is_response);
        assert!(m.recursion_desired);
        assert_eq!(m.rcode, Rcode::NoError);
        assert!(m.edns.is_none());
    }

    #[test]
    fn non_recursive_builder() {
        let m = Message::query(7, q()).with_recursion_desired(false);
        assert!(!m.recursion_desired);
    }

    #[test]
    fn ecs_attach_and_read() {
        let p: Prefix = "198.51.100.0/24".parse().unwrap();
        let m = Message::query(7, q()).with_ecs(p);
        assert_eq!(m.ecs().unwrap().source, p);
        assert_eq!(m.ecs().unwrap().scope_len, 0);
        // Attaching again replaces.
        let p2: Prefix = "203.0.113.0/24".parse().unwrap();
        let m = m.with_ecs(p2);
        assert_eq!(m.ecs().unwrap().source, p2);
        assert_eq!(m.edns.as_ref().unwrap().options.len(), 1);
    }

    #[test]
    fn response_skeleton() {
        let query = Message::query(9, q()).with_recursion_desired(false);
        let resp = Message::response_for(&query)
            .with_rcode(Rcode::NxDomain)
            .with_response_ecs("198.51.100.0/24".parse().unwrap(), 20);
        assert!(resp.is_response);
        assert_eq!(resp.id, 9);
        assert!(!resp.recursion_desired);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(resp.ecs().unwrap().scope_len, 20);
        assert_eq!(resp.question, query.question);
    }

    #[test]
    fn opcode_roundtrip() {
        assert_eq!(Opcode::from_u8(0), Opcode::Query);
        assert_eq!(Opcode::from_u8(4).to_u8(), 4);
        assert_eq!(Opcode::from_u8(0xF4), Opcode::Other(4));
    }
}
