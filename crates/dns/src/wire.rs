//! RFC 1035 wire-format codec with name compression, plus a
//! zero-allocation fast lane for the probe hot path.
//!
//! [`encode`] produces a compact packet (names compressed against every
//! previously written name suffix). [`decode`] is fully bounds-checked:
//! arbitrary bytes can be fed in and the worst outcome is a
//! [`WireError`]. Compression pointers must point strictly backwards,
//! which both matches real resolver behaviour and makes pointer loops
//! impossible.
//!
//! The codec exists so the simulated query path exercises exactly what a
//! real prober would put on the wire — including the EDNS0 OPT record
//! and the RFC 7871 ECS option the whole cache-probing technique relies
//! on — and so the test suite can fuzz the parser with garbage.
//!
//! ## The fast lane
//!
//! The cache-probing sweep encodes and decodes millions of nearly
//! identical packets. Three primitives let that path run without
//! touching the allocator after warm-up, while staying byte-compatible
//! with the [`Message`] codec (asserted in tests):
//!
//! - [`encode_into`] — [`encode`] writing into a caller-reused buffer;
//!   the compression table is a thread-local `Vec<u16>` of buffer
//!   offsets compared against the output bytes, so no per-suffix
//!   `String` keys are built.
//! - [`ProbeQueryTemplate`] / [`ProbeQueryTemplate::render`] — a
//!   pre-rendered non-recursive `A` query per probe domain; per probe
//!   only the transaction ID and the ECS option are patched in.
//! - [`query_view`] / [`response_view`] / [`write_probe_response`] —
//!   borrowing parsers for the probe-shaped packets and a direct
//!   response writer, so the serve path neither builds a [`Message`]
//!   nor clones a [`DomainName`].

use std::cell::RefCell;

use clientmap_net::Prefix;

use crate::edns::{ECS_FAMILY_IPV4, OPTION_CODE_ECS};
use crate::name::{Label, MAX_NAME_LEN};
use crate::{
    DomainName, EcsOption, Edns, EdnsOption, Message, Opcode, Question, RData, Rcode, Record,
    RrClass, RrType, WireError,
};

/// Maximum offset expressible by a 14-bit compression pointer.
const MAX_POINTER: usize = 0x3FFF;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

#[inline]
fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

#[inline]
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

#[inline]
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

thread_local! {
    /// Reused name-compression table: offsets in the output buffer where
    /// a name suffix starts. Cleared per encode; grows once, then stays.
    static NAME_TABLE: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
}

/// Encodes a message to wire format.
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut buf = Vec::with_capacity(512);
    encode_into(msg, &mut buf)?;
    Ok(buf)
}

/// [`encode`] into a caller-owned buffer (cleared first). Reusing the
/// buffer across calls keeps the steady-state encode allocation-free.
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    NAME_TABLE.with(|t| {
        let mut table = t.borrow_mut();
        table.clear();
        encode_message(msg, out, &mut table)
    })
}

fn encode_message(msg: &Message, buf: &mut Vec<u8>, names: &mut Vec<u16>) -> Result<(), WireError> {
    put_u16(buf, msg.id);
    let mut flags: u16 = 0;
    if msg.is_response {
        flags |= 0x8000;
    }
    flags |= (msg.opcode.to_u8() as u16) << 11;
    if msg.authoritative {
        flags |= 0x0400;
    }
    if msg.truncated {
        flags |= 0x0200;
    }
    if msg.recursion_desired {
        flags |= 0x0100;
    }
    if msg.recursion_available {
        flags |= 0x0080;
    }
    flags |= msg.rcode.to_u8() as u16;
    put_u16(buf, flags);

    let qdcount = msg.question.iter().count() as u16;
    let arcount = msg.additional.len() as u16 + msg.edns.iter().count() as u16;
    put_u16(buf, qdcount);
    put_u16(buf, msg.answers.len() as u16);
    put_u16(buf, msg.authority.len() as u16);
    put_u16(buf, arcount);

    if let Some(q) = &msg.question {
        encode_name(buf, &q.name, names)?;
        put_u16(buf, q.rtype.to_u16());
        put_u16(buf, q.class.to_u16());
    }
    for r in &msg.answers {
        encode_record(buf, r, names)?;
    }
    for r in &msg.authority {
        encode_record(buf, r, names)?;
    }
    for r in &msg.additional {
        encode_record(buf, r, names)?;
    }
    if let Some(edns) = &msg.edns {
        encode_opt(buf, edns)?;
    }
    Ok(())
}

/// Whether the name encoded in `buf` starting at `pos` (following
/// already-written, hence backward, compression pointers) spells exactly
/// `labels`. Used for compression lookups against the output buffer, so
/// no suffix strings need to be materialised.
fn name_matches_at(buf: &[u8], mut pos: usize, labels: &[Label]) -> bool {
    let mut li = 0usize;
    loop {
        let Some(&len) = buf.get(pos) else {
            return false;
        };
        match len & 0xC0 {
            0x00 => {
                if len == 0 {
                    return li == labels.len();
                }
                let n = len as usize;
                let Some(label) = labels.get(li) else {
                    return false;
                };
                let text = label.as_str().as_bytes();
                if text.len() != n || buf.get(pos + 1..pos + 1 + n) != Some(text) {
                    return false;
                }
                li += 1;
                pos += 1 + n;
            }
            0xC0 => {
                let Some(&second) = buf.get(pos + 1) else {
                    return false;
                };
                let target = (((len & 0x3F) as usize) << 8) | second as usize;
                if target >= pos {
                    return false; // we never write forward pointers
                }
                pos = target;
            }
            _ => return false,
        }
    }
}

/// Writes a (possibly compressed) name at the current offset. The first
/// recorded occurrence of an equal suffix wins, matching the map-based
/// encoder this replaced byte for byte.
fn encode_name(
    buf: &mut Vec<u8>,
    name: &DomainName,
    names: &mut Vec<u16>,
) -> Result<(), WireError> {
    let labels = name.labels();
    for i in 0..labels.len() {
        let suffix = &labels[i..];
        if let Some(&off) = names
            .iter()
            .find(|&&off| name_matches_at(buf, off as usize, suffix))
        {
            put_u16(buf, 0xC000 | off);
            return Ok(());
        }
        let here = buf.len();
        if here <= MAX_POINTER {
            names.push(here as u16);
        }
        let label = labels[i].as_str();
        debug_assert!(label.len() <= 63);
        put_u8(buf, label.len() as u8);
        buf.extend_from_slice(label.as_bytes());
    }
    put_u8(buf, 0); // root
    Ok(())
}

fn encode_record(buf: &mut Vec<u8>, r: &Record, names: &mut Vec<u16>) -> Result<(), WireError> {
    encode_name(buf, &r.name, names)?;
    put_u16(buf, r.rtype.to_u16());
    put_u16(buf, r.class.to_u16());
    put_u32(buf, r.ttl);
    // Reserve the RDLENGTH slot, then backfill.
    let len_pos = buf.len();
    put_u16(buf, 0);
    let start = buf.len();
    match &r.rdata {
        RData::A(addr) => put_u32(buf, *addr),
        RData::Cname(n) | RData::Ns(n) => encode_name(buf, n, names)?,
        RData::Txt(text) => {
            let bytes = text.as_bytes();
            if bytes.is_empty() {
                put_u8(buf, 0);
            } else {
                for chunk in bytes.chunks(255) {
                    put_u8(buf, chunk.len() as u8);
                    buf.extend_from_slice(chunk);
                }
            }
        }
        RData::Opaque(data) => buf.extend_from_slice(data),
    }
    let rdlen = buf.len() - start;
    if rdlen > u16::MAX as usize {
        return Err(WireError::EncodeTooLong);
    }
    buf[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
    Ok(())
}

fn encode_opt(buf: &mut Vec<u8>, edns: &Edns) -> Result<(), WireError> {
    put_u8(buf, 0); // root name
    put_u16(buf, RrType::Opt.to_u16());
    put_u16(buf, edns.udp_payload_size);
    let ttl: u32 =
        ((edns.ext_rcode as u32) << 24) | ((edns.version as u32) << 16) | edns.flags as u32;
    put_u32(buf, ttl);
    let len_pos = buf.len();
    put_u16(buf, 0);
    let start = buf.len();
    for opt in &edns.options {
        match opt {
            EdnsOption::Ecs(ecs) => write_ecs_option(buf, ecs.source, ecs.scope_len),
            EdnsOption::Other { code, data } => {
                if data.len() > u16::MAX as usize {
                    return Err(WireError::EncodeTooLong);
                }
                put_u16(buf, *code);
                put_u16(buf, data.len() as u16);
                buf.extend_from_slice(data);
            }
        }
    }
    let rdlen = buf.len() - start;
    if rdlen > u16::MAX as usize {
        return Err(WireError::EncodeTooLong);
    }
    buf[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
    Ok(())
}

/// RFC 7871: family, source prefix len, scope prefix len, then
/// ceil(source_len/8) address bytes.
fn write_ecs_option(buf: &mut Vec<u8>, source: Prefix, scope_len: u8) {
    let src_len = source.len();
    let addr_bytes = src_len.div_ceil(8) as usize;
    put_u16(buf, OPTION_CODE_ECS);
    put_u16(buf, 4 + addr_bytes as u16);
    put_u16(buf, ECS_FAMILY_IPV4);
    put_u8(buf, src_len);
    put_u8(buf, scope_len);
    let addr = source.addr().to_be_bytes();
    buf.extend_from_slice(&addr[..addr_bytes]);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over the packet.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(((self.u8()? as u16) << 8) | self.u8()? as u16)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(((self.u16()? as u32) << 16) | self.u16()? as u32)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Decodes a name starting at the cursor, following backward-only
/// compression pointers.
fn decode_name(cur: &mut Cursor<'_>) -> Result<DomainName, WireError> {
    let mut labels: Vec<Label> = Vec::new();
    let mut wire_len = 1usize; // root byte
                               // After the first pointer jump we stop advancing the real cursor.
    let mut jumped = false;
    let mut pos = cur.pos;

    loop {
        let len_byte = *cur.data.get(pos).ok_or(WireError::Truncated)?;
        match len_byte & 0xC0 {
            0x00 => {
                if len_byte == 0 {
                    pos += 1;
                    if !jumped {
                        cur.pos = pos;
                    }
                    return DomainName::from_labels(labels).map_err(|_| WireError::NameTooLong);
                }
                let n = len_byte as usize;
                let start = pos + 1;
                let end = start + n;
                if end > cur.data.len() {
                    return Err(WireError::Truncated);
                }
                wire_len += 1 + n;
                if wire_len > MAX_NAME_LEN {
                    return Err(WireError::NameTooLong);
                }
                let text = std::str::from_utf8(&cur.data[start..end])
                    .map_err(|_| WireError::InvalidLabel)?;
                labels.push(Label::new(text).map_err(|_| WireError::InvalidLabel)?);
                pos = end;
                if !jumped {
                    cur.pos = pos;
                }
            }
            0xC0 => {
                let second = *cur.data.get(pos + 1).ok_or(WireError::Truncated)?;
                let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                // Backward-only: prevents loops and forward references.
                if target >= pos {
                    return Err(WireError::BadPointer(target as u16));
                }
                if !jumped {
                    cur.pos = pos + 2;
                }
                jumped = true;
                pos = target;
            }
            other => return Err(WireError::BadLabelType(other)),
        }
    }
}

fn decode_question(cur: &mut Cursor<'_>) -> Result<Question, WireError> {
    let name = decode_name(cur)?;
    let rtype = RrType::from_u16(cur.u16()?);
    let class = RrClass::from_u16(cur.u16()?);
    Ok(Question { name, rtype, class })
}

/// Outcome of decoding one record slot: a regular record or the OPT
/// pseudo-record (extracted into [`Edns`]).
enum Slot {
    Record(Record),
    Opt(Edns),
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<Slot, WireError> {
    let name = decode_name(cur)?;
    let rtype = RrType::from_u16(cur.u16()?);
    let class_raw = cur.u16()?;
    let ttl = cur.u32()?;
    let rdlen = cur.u16()? as usize;
    if cur.remaining() < rdlen {
        return Err(WireError::Truncated);
    }
    if rtype == RrType::Opt {
        if !name.is_root() {
            return Err(WireError::BadOpt("OPT owner name must be root"));
        }
        let rdata = cur.bytes(rdlen)?;
        let edns = decode_opt(class_raw, ttl, rdata)?;
        return Ok(Slot::Opt(edns));
    }

    let rdata_end = cur.pos + rdlen;
    let rdata = match rtype {
        RrType::A => {
            if rdlen != 4 {
                return Err(WireError::RdataLengthMismatch {
                    declared: rdlen as u16,
                    consumed: 4,
                });
            }
            RData::A(cur.u32()?)
        }
        RrType::Cname | RrType::Ns => {
            let n = decode_name(cur)?;
            if cur.pos != rdata_end {
                return Err(WireError::RdataLengthMismatch {
                    declared: rdlen as u16,
                    consumed: (cur.pos + rdlen - rdata_end) as u16,
                });
            }
            if rtype == RrType::Cname {
                RData::Cname(n)
            } else {
                RData::Ns(n)
            }
        }
        RrType::Txt => {
            let mut text = Vec::new();
            while cur.pos < rdata_end {
                let n = cur.u8()? as usize;
                if cur.pos + n > rdata_end {
                    return Err(WireError::Truncated);
                }
                text.extend_from_slice(cur.bytes(n)?);
            }
            RData::Txt(String::from_utf8(text).map_err(|_| WireError::InvalidLabel)?)
        }
        _ => RData::Opaque(cur.bytes(rdlen)?.to_vec()),
    };
    Ok(Slot::Record(Record {
        name,
        rtype,
        class: RrClass::from_u16(class_raw),
        ttl,
        rdata,
    }))
}

fn decode_opt(class_raw: u16, ttl: u32, rdata: &[u8]) -> Result<Edns, WireError> {
    let mut edns = Edns {
        udp_payload_size: class_raw,
        ext_rcode: (ttl >> 24) as u8,
        version: (ttl >> 16) as u8,
        flags: (ttl & 0xFFFF) as u16,
        options: Vec::new(),
    };
    let mut cur = Cursor::new(rdata);
    while cur.remaining() > 0 {
        let code = cur.u16()?;
        let len = cur.u16()? as usize;
        let body = cur.bytes(len)?;
        if code == OPTION_CODE_ECS {
            edns.options.push(EdnsOption::Ecs(decode_ecs(body)?));
        } else {
            edns.options.push(EdnsOption::Other {
                code,
                data: body.to_vec(),
            });
        }
    }
    Ok(edns)
}

fn decode_ecs(body: &[u8]) -> Result<EcsOption, WireError> {
    if body.len() < 4 {
        return Err(WireError::BadEcs("option shorter than fixed header"));
    }
    let family = ((body[0] as u16) << 8) | body[1] as u16;
    if family != ECS_FAMILY_IPV4 {
        return Err(WireError::BadEcs("non-IPv4 family"));
    }
    let source_len = body[2];
    let scope_len = body[3];
    if source_len > 32 || scope_len > 32 {
        return Err(WireError::BadEcs("prefix length > 32"));
    }
    let addr_bytes = source_len.div_ceil(8) as usize;
    if body.len() != 4 + addr_bytes {
        return Err(WireError::BadEcs("address length mismatch"));
    }
    let mut octets = [0u8; 4];
    octets[..addr_bytes].copy_from_slice(&body[4..4 + addr_bytes]);
    let addr = u32::from_be_bytes(octets);
    // RFC 7871 §6: trailing bits beyond source_len MUST be zero.
    let source =
        Prefix::new(addr, source_len).map_err(|_| WireError::BadEcs("bad source prefix"))?;
    if source.addr() != addr {
        return Err(WireError::BadEcs("nonzero padding bits"));
    }
    Ok(EcsOption { source, scope_len })
}

/// Decodes a packet into a [`Message`].
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    let mut cur = Cursor::new(data);
    let id = cur.u16()?;
    let flags = cur.u16()?;
    let qdcount = cur.u16()?;
    let ancount = cur.u16()?;
    let nscount = cur.u16()?;
    let arcount = cur.u16()?;

    if qdcount > 1 {
        return Err(WireError::Unsupported("multiple questions"));
    }

    let question = if qdcount == 1 {
        Some(decode_question(&mut cur)?)
    } else {
        None
    };

    let mut answers = Vec::with_capacity(ancount.min(64) as usize);
    for _ in 0..ancount {
        match decode_record(&mut cur)? {
            Slot::Record(r) => answers.push(r),
            Slot::Opt(_) => return Err(WireError::BadOpt("OPT in answer section")),
        }
    }
    let mut authority = Vec::with_capacity(nscount.min(64) as usize);
    for _ in 0..nscount {
        match decode_record(&mut cur)? {
            Slot::Record(r) => authority.push(r),
            Slot::Opt(_) => return Err(WireError::BadOpt("OPT in authority section")),
        }
    }
    let mut additional = Vec::new();
    let mut edns = None;
    for _ in 0..arcount {
        match decode_record(&mut cur)? {
            Slot::Record(r) => additional.push(r),
            Slot::Opt(e) => {
                if edns.replace(e).is_some() {
                    return Err(WireError::BadOpt("duplicate OPT"));
                }
            }
        }
    }

    Ok(Message {
        id,
        is_response: flags & 0x8000 != 0,
        opcode: Opcode::from_u8((flags >> 11) as u8),
        authoritative: flags & 0x0400 != 0,
        truncated: flags & 0x0200 != 0,
        recursion_desired: flags & 0x0100 != 0,
        recursion_available: flags & 0x0080 != 0,
        rcode: Rcode::from_u8(flags as u8),
        question,
        answers,
        authority,
        additional,
        edns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Question;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn roundtrip(msg: &Message) -> Message {
        let bytes = encode(msg).unwrap();
        decode(&bytes).unwrap()
    }

    #[test]
    fn simple_query_roundtrip() {
        let m = Message::query(0xBEEF, Question::a("www.example.com").unwrap());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn non_recursive_ecs_query_roundtrip() {
        let m = Message::query(1, Question::a("facebook.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs(p("203.0.113.0/24"));
        let back = roundtrip(&m);
        assert_eq!(back, m);
        assert!(!back.recursion_desired);
        assert_eq!(back.ecs().unwrap().source, p("203.0.113.0/24"));
    }

    #[test]
    fn response_with_answers_and_scope() {
        let q = Message::query(2, Question::a("www.google.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs(p("198.51.100.0/24"));
        let resp = Message::response_for(&q)
            .with_answers(vec![Record::a(
                "www.google.com".parse().unwrap(),
                300,
                0x8efa436e,
            )])
            .with_response_ecs(p("198.51.100.0/24"), 20);
        let back = roundtrip(&resp);
        assert_eq!(back, resp);
        assert_eq!(back.ecs().unwrap().scope_len, 20);
        assert!(back.has_answers());
    }

    #[test]
    fn ecs_partial_address_bytes() {
        // A /20 source needs ceil(20/8)=3 address octets on the wire.
        let m = Message::query(3, Question::a("x.example").unwrap()).with_ecs(p("10.32.16.0/20"));
        let bytes = encode(&m).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back.ecs().unwrap().source, p("10.32.16.0/20"));
        // /0 needs zero octets.
        let m0 = Message::query(4, Question::a("x.example").unwrap()).with_ecs(Prefix::DEFAULT);
        assert_eq!(roundtrip(&m0).ecs().unwrap().source, Prefix::DEFAULT);
    }

    #[test]
    fn name_compression_shrinks_and_roundtrips() {
        let mut m = Message::query(5, Question::a("www.example.com").unwrap());
        m.answers = vec![
            Record::a("www.example.com".parse().unwrap(), 60, 1),
            Record::a("www.example.com".parse().unwrap(), 60, 2),
            Record {
                name: "api.example.com".parse().unwrap(),
                rtype: RrType::Cname,
                class: RrClass::In,
                ttl: 60,
                rdata: RData::Cname("www.example.com".parse().unwrap()),
            },
        ];
        let bytes = encode(&m).unwrap();
        assert_eq!(decode(&bytes).unwrap(), m);
        // The three repeats of www.example.com must compress to pointers:
        // a full encoding would repeat 17 bytes; allow generous slack.
        assert!(
            bytes.len() < 100,
            "packet unexpectedly large: {}",
            bytes.len()
        );
    }

    #[test]
    fn txt_record_long_string_chunks() {
        let long = "x".repeat(700);
        let mut m = Message::query(6, Question::txt("t.example").unwrap());
        m.answers = vec![Record::txt("t.example".parse().unwrap(), 60, long.clone())];
        let back = roundtrip(&m);
        match &back.answers[0].rdata {
            RData::Txt(s) => assert_eq!(s, &long),
            other => panic!("wrong rdata: {other:?}"),
        }
    }

    #[test]
    fn empty_txt_roundtrips() {
        let mut m = Message::query(6, Question::txt("t.example").unwrap());
        m.answers = vec![Record::txt("t.example".parse().unwrap(), 60, "")];
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn unknown_type_is_opaque_lossless() {
        let mut m = Message::query(7, Question::a("z.example").unwrap());
        m.answers = vec![Record {
            name: "z.example".parse().unwrap(),
            rtype: RrType::Other(4242),
            class: RrClass::In,
            ttl: 9,
            rdata: RData::Opaque(vec![1, 2, 3, 4, 5]),
        }];
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn root_question_roundtrips() {
        let q = Question {
            name: DomainName::root(),
            rtype: RrType::Ns,
            class: RrClass::In,
        };
        let m = Message::query(8, q);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let m =
            Message::query(9, Question::a("www.example.com").unwrap()).with_ecs(p("10.0.0.0/24"));
        let bytes = encode(&m).unwrap();
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "decode accepted a {cut}-byte truncation");
        }
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Header + a name that points forward to itself.
        let mut pkt = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        pkt.extend_from_slice(&[0xC0, 12]); // pointer to its own offset 12
        pkt.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&pkt), Err(WireError::BadPointer(_))));
    }

    #[test]
    fn decode_rejects_reserved_label_type() {
        let mut pkt = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        pkt.push(0x80); // reserved 10-prefix label type
        pkt.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&pkt), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn decode_rejects_bad_ecs() {
        // Build a valid message, then corrupt the ECS family to IPv6.
        let m = Message::query(10, Question::a("a.example").unwrap()).with_ecs(p("10.0.0.0/24"));
        let mut bytes = encode(&m).unwrap();
        // Find the ECS option: family bytes are the 2 bytes after code+len.
        // code 0x0008, len 0x0007 — locate that pattern.
        let pat = [0x00, 0x08, 0x00, 0x07, 0x00, 0x01];
        let pos = bytes
            .windows(pat.len())
            .position(|w| w == pat)
            .expect("ECS option not found");
        bytes[pos + 5] = 2; // family = 2 (IPv6)
        assert!(matches!(decode(&bytes), Err(WireError::BadEcs(_))));
    }

    #[test]
    fn decode_rejects_nonzero_ecs_padding() {
        let m = Message::query(11, Question::a("a.example").unwrap()).with_ecs(p("10.0.0.0/20"));
        let mut bytes = encode(&m).unwrap();
        // /20 encodes 3 address octets: 0x0A 0x00 0x00; set low 4 bits of
        // the third octet (beyond the /20 boundary) to violate RFC 7871.
        let pat = [0x00, 0x08, 0x00, 0x07, 0x00, 0x01, 20, 0, 0x0A];
        let pos = bytes
            .windows(pat.len())
            .position(|w| w == pat)
            .expect("ECS option not found");
        bytes[pos + 10] |= 0x0F;
        assert!(matches!(decode(&bytes), Err(WireError::BadEcs(_))));
    }

    #[test]
    fn decode_rejects_wrong_a_rdlen() {
        let mut m = Message::query(12, Question::a("a.example").unwrap());
        m.answers = vec![Record::a("a.example".parse().unwrap(), 1, 7)];
        let mut bytes = encode(&m).unwrap();
        // The final 6 bytes are RDLENGTH(2) + RDATA(4). Shrink RDLENGTH to 3
        // and drop a byte.
        let n = bytes.len();
        bytes[n - 6..n - 4].copy_from_slice(&3u16.to_be_bytes());
        bytes.truncate(n - 1);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decode_garbage_never_panics() {
        // Deterministic pseudo-random garbage.
        let mut x = 0x12345678u32;
        for len in 0..200 {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                v.push((x >> 24) as u8);
            }
            let _ = decode(&v); // must not panic
        }
    }

    #[test]
    fn multiple_questions_rejected() {
        let m = Message::query(13, Question::a("a.example").unwrap());
        let mut bytes = encode(&m).unwrap();
        bytes[4..6].copy_from_slice(&2u16.to_be_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Unsupported(_))));
    }
}

// ---------------------------------------------------------------------------
// Zero-allocation fast lane
// ---------------------------------------------------------------------------

/// A pre-rendered non-recursive `A`-in-`IN` probe query for one domain.
///
/// The cache-probing sweep sends the same query shape millions of times,
/// varying only the transaction ID and the ECS source prefix. Rendering
/// from a template writes the packet into a caller-reused buffer without
/// building a [`Message`], cloning a [`DomainName`], or allocating.
/// [`ProbeQueryTemplate::render`] is asserted byte-identical to
/// `encode(Message::query(..).with_recursion_desired(false).with_ecs(..))`
/// in tests.
#[derive(Debug, Clone)]
pub struct ProbeQueryTemplate {
    /// Header + question + OPT record up to (and excluding) RDLEN.
    prefix: Vec<u8>,
    /// Length in bytes of the QNAME within `prefix` (starts at offset 12).
    qname_len: usize,
    name: DomainName,
}

impl ProbeQueryTemplate {
    /// Pre-renders the query skeleton for `domain`.
    pub fn new(domain: &DomainName) -> Self {
        let mut prefix = Vec::with_capacity(64);
        put_u16(&mut prefix, 0); // id, patched per render
        put_u16(&mut prefix, 0); // flags: query, opcode 0, rd=0
        put_u16(&mut prefix, 1); // qdcount
        put_u16(&mut prefix, 0); // ancount
        put_u16(&mut prefix, 0); // nscount
        put_u16(&mut prefix, 1); // arcount (the OPT)
        for label in domain.labels() {
            put_u8(&mut prefix, label.as_str().len() as u8);
            prefix.extend_from_slice(label.as_str().as_bytes());
        }
        put_u8(&mut prefix, 0); // root
        let qname_len = prefix.len() - 12;
        put_u16(&mut prefix, RrType::A.to_u16());
        put_u16(&mut prefix, RrClass::In.to_u16());
        // OPT pseudo-record header, mirroring `Edns::default()`.
        let edns = Edns::default();
        put_u8(&mut prefix, 0); // root owner name
        put_u16(&mut prefix, RrType::Opt.to_u16());
        put_u16(&mut prefix, edns.udp_payload_size);
        let ttl: u32 =
            ((edns.ext_rcode as u32) << 24) | ((edns.version as u32) << 16) | edns.flags as u32;
        put_u32(&mut prefix, ttl);
        ProbeQueryTemplate {
            prefix,
            qname_len,
            name: domain.clone(),
        }
    }

    /// The probe domain this template encodes.
    pub fn name(&self) -> &DomainName {
        &self.name
    }

    /// The uncompressed QNAME wire bytes (labels + terminal root byte).
    pub fn qname_wire(&self) -> &[u8] {
        &self.prefix[12..12 + self.qname_len]
    }

    /// Renders the query for one probe into `out` (cleared first).
    pub fn render(&self, id: u16, ecs_source: Prefix, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&self.prefix);
        out[0..2].copy_from_slice(&id.to_be_bytes());
        let addr_bytes = ecs_source.len().div_ceil(8) as u16;
        put_u16(out, 4 + (4 + addr_bytes)); // OPT RDLEN: option code+len+body
        write_ecs_option(out, ecs_source, 0);
    }

    /// Appends the rendered query to `out` without clearing it; returns
    /// the byte offset the packet starts at. Bytes written are identical
    /// to [`ProbeQueryTemplate::render`] for the same `(id, ecs_source)`.
    pub fn render_append(&self, id: u16, ecs_source: Prefix, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.extend_from_slice(&self.prefix);
        out[start..start + 2].copy_from_slice(&id.to_be_bytes());
        let addr_bytes = ecs_source.len().div_ceil(8) as u16;
        put_u16(out, 4 + (4 + addr_bytes));
        write_ecs_option(out, ecs_source, 0);
        start
    }
}

/// An arena of rendered probe queries: many [`ProbeQueryTemplate`]
/// renders packed back-to-back in one reused buffer.
///
/// The batched probing lane renders a whole unit's worth of queries up
/// front and hands the arena to the resolver in one call, so per-probe
/// costs (buffer clears, bounds setup, dispatch) are paid once per
/// batch. After the first few batches the arena reaches steady state
/// and `clear` + `push` cycles allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct ProbeBatch {
    /// All rendered packets, concatenated.
    buf: Vec<u8>,
    /// `(start, len)` of each packet within `buf`.
    spans: Vec<(u32, u32)>,
}

impl ProbeBatch {
    /// An empty arena.
    pub fn new() -> ProbeBatch {
        ProbeBatch::default()
    }

    /// Forgets every rendered query but keeps the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.spans.clear();
    }

    /// Renders one query into the arena; returns its index.
    pub fn push(&mut self, template: &ProbeQueryTemplate, id: u16, ecs_source: Prefix) -> usize {
        let start = template.render_append(id, ecs_source, &mut self.buf);
        self.spans
            .push((start as u32, (self.buf.len() - start) as u32));
        self.spans.len() - 1
    }

    /// The rendered packet at `index`.
    pub fn query(&self, index: usize) -> &[u8] {
        let (start, len) = self.spans[index];
        &self.buf[start as usize..(start + len) as usize]
    }

    /// Number of rendered queries.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no queries.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The rendered packets, in push order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.query(i))
    }
}

/// A borrowed view of a simple probe-shaped query packet.
///
/// "Simple" means: exactly one question with an uncompressed QNAME, no
/// answer/authority records, and at most one additional record which
/// must be a root-owned OPT. Anything else returns `None`, signalling
/// the caller to fall back to the full [`decode`] path — so the fast
/// lane never changes observable behaviour, only the cost of the
/// common case.
#[derive(Debug, Clone, Copy)]
pub struct QueryView<'a> {
    /// Transaction ID.
    pub id: u16,
    /// Raw header flags word.
    pub flags: u16,
    /// Raw uncompressed QNAME bytes (labels + terminal root byte),
    /// borrowed from the packet starting at offset 12.
    pub qname_wire: &'a [u8],
    /// Raw QTYPE.
    pub rtype: u16,
    /// Raw QCLASS.
    pub qclass: u16,
    /// First ECS option in the OPT record, if any.
    pub ecs: Option<EcsOption>,
}

impl QueryView<'_> {
    /// The QR bit.
    pub fn is_response(&self) -> bool {
        self.flags & 0x8000 != 0
    }

    /// The raw opcode.
    pub fn opcode(&self) -> u8 {
        (self.flags >> 11) as u8 & 0x0F
    }

    /// The RD bit.
    pub fn recursion_desired(&self) -> bool {
        self.flags & 0x0100 != 0
    }
}

/// Parses a probe-shaped query without allocating. See [`QueryView`].
pub fn query_view(data: &[u8]) -> Option<QueryView<'_>> {
    if data.len() < 12 {
        return None;
    }
    let be16 = |i: usize| ((data[i] as u16) << 8) | data[i + 1] as u16;
    let (qdcount, ancount, nscount, arcount) = (be16(4), be16(6), be16(8), be16(10));
    if qdcount != 1 || ancount != 0 || nscount != 0 || arcount > 1 {
        return None;
    }
    // QNAME: plain labels only (our own probers never compress it).
    let mut pos = 12usize;
    loop {
        let len = *data.get(pos)? as usize;
        if len == 0 {
            pos += 1;
            break;
        }
        if len & 0xC0 != 0 {
            return None;
        }
        pos += 1 + len;
        if pos - 12 > MAX_NAME_LEN {
            return None;
        }
    }
    let qname_wire = &data[12..pos];
    if data.len() < pos + 4 {
        return None;
    }
    let rtype = be16(pos);
    let qclass = be16(pos + 2);
    pos += 4;

    let mut ecs = None;
    if arcount == 1 {
        // Must be a root-owned OPT record.
        if data.len() < pos + 11 || data[pos] != 0 || be16(pos + 1) != RrType::Opt.to_u16() {
            return None;
        }
        let rdlen = be16(pos + 9) as usize;
        pos += 11;
        let rdata = data.get(pos..pos + rdlen)?;
        let mut opt = 0usize;
        while opt < rdata.len() {
            if rdata.len() < opt + 4 {
                return None;
            }
            let code = ((rdata[opt] as u16) << 8) | rdata[opt + 1] as u16;
            let len = (((rdata[opt + 2] as u16) << 8) | rdata[opt + 3] as u16) as usize;
            let body = rdata.get(opt + 4..opt + 4 + len)?;
            if code == OPTION_CODE_ECS && ecs.is_none() {
                ecs = Some(decode_ecs(body).ok()?);
            }
            opt += 4 + len;
        }
    }
    Some(QueryView {
        id: be16(0),
        flags: be16(2),
        qname_wire,
        rtype,
        qclass,
        ecs,
    })
}

/// The fields probe-outcome classification needs, parsed without
/// building a [`Message`] (no names are materialised, record bodies are
/// skipped). Rejects the same malformed packets [`decode`] would, as far
/// as the skipped fields allow.
#[derive(Debug, Clone, Copy)]
pub struct ResponseView {
    /// Transaction ID.
    pub id: u16,
    /// Raw header flags word.
    pub flags: u16,
    /// ANCOUNT from the header.
    pub answer_count: u16,
    /// TTL of the first answer record; 0 when there are no answers.
    pub first_answer_ttl: u32,
    /// First ECS option in the OPT record, if any.
    pub ecs: Option<EcsOption>,
}

/// Advances past one (possibly pointer-terminated) encoded name.
fn skip_name(data: &[u8], mut pos: usize) -> Result<usize, WireError> {
    loop {
        let len = *data.get(pos).ok_or(WireError::Truncated)?;
        match len & 0xC0 {
            0x00 => {
                if len == 0 {
                    return Ok(pos + 1);
                }
                pos += 1 + len as usize;
            }
            0xC0 => {
                if pos + 2 > data.len() {
                    return Err(WireError::Truncated);
                }
                return Ok(pos + 2);
            }
            other => return Err(WireError::BadLabelType(other)),
        }
    }
}

/// Parses a response for classification without allocating. See
/// [`ResponseView`].
pub fn response_view(data: &[u8]) -> Result<ResponseView, WireError> {
    if data.len() < 12 {
        return Err(WireError::Truncated);
    }
    let be16 = |i: usize| ((data[i] as u16) << 8) | data[i + 1] as u16;
    let (qdcount, ancount, nscount, arcount) = (be16(4), be16(6), be16(8), be16(10));
    let mut pos = 12usize;
    for _ in 0..qdcount {
        pos = skip_name(data, pos)?;
        pos += 4; // QTYPE + QCLASS
        if pos > data.len() {
            return Err(WireError::Truncated);
        }
    }
    let mut first_answer_ttl = 0u32;
    let mut ecs = None;
    for section in 0..3u8 {
        let count = [ancount, nscount, arcount][section as usize];
        for i in 0..count {
            pos = skip_name(data, pos)?;
            if pos + 10 > data.len() {
                return Err(WireError::Truncated);
            }
            let rtype = be16(pos);
            let ttl = ((be16(pos + 4) as u32) << 16) | be16(pos + 6) as u32;
            let rdlen = be16(pos + 8) as usize;
            pos += 10;
            let rdata = data.get(pos..pos + rdlen).ok_or(WireError::Truncated)?;
            if section == 0 && i == 0 {
                first_answer_ttl = ttl;
            }
            if section == 2 && rtype == RrType::Opt.to_u16() {
                let mut opt = 0usize;
                while opt < rdata.len() {
                    if rdata.len() < opt + 4 {
                        return Err(WireError::Truncated);
                    }
                    let code = ((rdata[opt] as u16) << 8) | rdata[opt + 1] as u16;
                    let len = (((rdata[opt + 2] as u16) << 8) | rdata[opt + 3] as u16) as usize;
                    let body = rdata
                        .get(opt + 4..opt + 4 + len)
                        .ok_or(WireError::Truncated)?;
                    if code == OPTION_CODE_ECS && ecs.is_none() {
                        ecs = Some(decode_ecs(body)?);
                    }
                    opt += 4 + len;
                }
            }
            pos += rdlen;
        }
    }
    Ok(ResponseView {
        id: be16(0),
        flags: be16(2),
        answer_count: ancount,
        first_answer_ttl,
        ecs,
    })
}

/// Writes the probe response the Google Public DNS frontend sends for a
/// non-recursive ECS probe, byte-identical to encoding the equivalent
/// `Message::response_for(query).with_answers(..).with_response_ecs(..)`
/// (asserted in tests).
///
/// `question_wire` is the query's QNAME + QTYPE + QCLASS, echoed
/// verbatim — callers must only pass canonical (lowercase) question
/// bytes, which holds because the fast-lane eligibility check byte-
/// compares the QNAME against our own encoder's output. The answer name
/// compresses to a pointer at offset 12, exactly as the [`Message`]
/// encoder would emit. Flags are fixed at QR|RA with RD clear: the fast
/// lane only serves non-recursive probe queries.
pub fn write_probe_response(
    out: &mut Vec<u8>,
    id: u16,
    question_wire: &[u8],
    answer: Option<(u32, u32)>, // (ttl, A address)
    ecs_source: Prefix,
    ecs_scope_len: u8,
) {
    out.clear();
    put_u16(out, id);
    put_u16(out, 0x8080); // QR | RA, opcode 0, rd 0, rcode NoError
    put_u16(out, 1); // qdcount
    put_u16(out, answer.is_some() as u16);
    put_u16(out, 0); // nscount
    put_u16(out, 1); // arcount (the OPT)
    out.extend_from_slice(question_wire);
    if let Some((ttl, addr)) = answer {
        put_u16(out, 0xC000 | 12); // name: pointer to the question at 12
        put_u16(out, RrType::A.to_u16());
        put_u16(out, RrClass::In.to_u16());
        put_u32(out, ttl);
        put_u16(out, 4); // RDLEN
        put_u32(out, addr);
    }
    let edns = Edns::default();
    put_u8(out, 0); // root owner name
    put_u16(out, RrType::Opt.to_u16());
    put_u16(out, edns.udp_payload_size);
    let opt_ttl: u32 =
        ((edns.ext_rcode as u32) << 24) | ((edns.version as u32) << 16) | edns.flags as u32;
    put_u32(out, opt_ttl);
    let addr_bytes = ecs_source.len().div_ceil(8) as u16;
    put_u16(out, 4 + (4 + addr_bytes)); // RDLEN
    write_ecs_option(out, ecs_source, ecs_scope_len.min(32));
}

/// The TC (truncation) bit in the DNS header flags word.
pub const FLAG_TC: u16 = 0x0200;

/// Mask extracting the RCODE from the header flags word.
pub const RCODE_MASK: u16 = 0x000F;

/// Writes an injected-fault error response: the question echoed
/// verbatim, no answers, no OPT, `rcode` in the low flag bits and
/// optionally the TC bit set. Both gpdns lanes build injected
/// SERVFAIL / REFUSED / truncated responses through this one helper,
/// so they are byte-identical whichever lane served the query.
pub fn write_probe_error_response(
    out: &mut Vec<u8>,
    id: u16,
    question_wire: &[u8],
    rcode: u8,
    truncated: bool,
) {
    out.clear();
    put_u16(out, id);
    let mut flags = 0x8080 | (u16::from(rcode) & RCODE_MASK); // QR | RA
    if truncated {
        flags |= FLAG_TC;
    }
    put_u16(out, flags);
    put_u16(out, 1); // qdcount
    put_u16(out, 0); // ancount
    put_u16(out, 0); // nscount
    put_u16(out, 0); // arcount — error responses carry no OPT
    out.extend_from_slice(question_wire);
}

/// Whether `response` echoes `query`'s question verbatim — byte-compares
/// the QNAME + QTYPE + QCLASS region starting at offset 12 of each
/// packet. Used by the resilient prober to reject responses whose
/// question does not match what was asked (counted as `Dropped`).
pub fn question_echo_matches(query: &[u8], response: &[u8]) -> bool {
    let Some(end) = question_end(query) else {
        return false;
    };
    response.len() >= end && response[12..end] == query[12..end]
}

/// End offset (exclusive) of the first question in `pkt`, assuming an
/// uncompressed QNAME at offset 12.
fn question_end(pkt: &[u8]) -> Option<usize> {
    let mut pos = 12usize;
    loop {
        let b = *pkt.get(pos)?;
        if b == 0 {
            pos += 1;
            break;
        }
        if b & 0xC0 != 0 {
            return None; // compressed question names are never emitted
        }
        pos += 1 + b as usize;
    }
    pos += 4; // QTYPE + QCLASS
    (pos <= pkt.len()).then_some(pos)
}

#[cfg(test)]
mod fast_lane_tests {
    use super::*;
    use crate::Question;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn probe_query(domain: &str, id: u16, scope: Prefix) -> Message {
        Message::query(id, Question::a(domain).unwrap())
            .with_recursion_desired(false)
            .with_ecs(scope)
    }

    #[test]
    fn template_render_matches_message_encoder() {
        for domain in [
            "www.google.com",
            "facebook.com",
            "cdn.msvalidation.example",
            "a.b.c.d.example",
        ] {
            let tmpl = ProbeQueryTemplate::new(&domain.parse().unwrap());
            let mut fast = Vec::new();
            for scope in ["203.0.113.0/24", "10.32.16.0/20", "0.0.0.0/0", "1.2.3.4/32"] {
                let scope = p(scope);
                for id in [0u16, 0x1234, 0xFFFF] {
                    tmpl.render(id, scope, &mut fast);
                    let slow = encode(&probe_query(domain, id, scope)).unwrap();
                    assert_eq!(fast, slow, "{domain} {scope} {id:#x}");
                }
            }
        }
    }

    #[test]
    fn batch_entries_match_scalar_renders() {
        let domains = ["www.google.com", "facebook.com", "a.b.c.d.example"];
        let templates: Vec<ProbeQueryTemplate> = domains
            .iter()
            .map(|d| ProbeQueryTemplate::new(&d.parse().unwrap()))
            .collect();
        let mut batch = ProbeBatch::new();
        let mut scalar = Vec::new();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for (i, scope) in ["203.0.113.0/24", "10.32.16.0/20", "0.0.0.0/0", "1.2.3.4/32"]
            .iter()
            .enumerate()
        {
            let scope = p(scope);
            for (j, tmpl) in templates.iter().enumerate() {
                let id = (i * 7 + j) as u16 ^ 0x5AA5;
                let idx = batch.push(tmpl, id, scope);
                assert_eq!(idx, expected.len());
                tmpl.render(id, scope, &mut scalar);
                expected.push(scalar.clone());
            }
        }
        assert_eq!(batch.len(), expected.len());
        assert!(!batch.is_empty());
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(batch.query(i), &want[..], "entry {i}");
        }
        assert_eq!(
            batch.iter().map(<[u8]>::len).sum::<usize>(),
            expected.iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn batch_clear_reuses_capacity() {
        let tmpl = ProbeQueryTemplate::new(&"www.google.com".parse().unwrap());
        let mut batch = ProbeBatch::new();
        for i in 0..32u16 {
            batch.push(&tmpl, i, p("203.0.113.0/24"));
        }
        let cap = batch.buf.capacity();
        let spans_cap = batch.spans.capacity();
        batch.clear();
        assert!(batch.is_empty());
        for i in 0..32u16 {
            batch.push(&tmpl, i, p("203.0.113.0/24"));
        }
        assert_eq!(batch.buf.capacity(), cap, "buffer capacity not reused");
        assert_eq!(
            batch.spans.capacity(),
            spans_cap,
            "span capacity not reused"
        );
        let mut scalar = Vec::new();
        tmpl.render(31, p("203.0.113.0/24"), &mut scalar);
        assert_eq!(batch.query(31), &scalar[..]);
    }

    #[test]
    fn query_view_agrees_with_decode() {
        let tmpl = ProbeQueryTemplate::new(&"www.google.com".parse().unwrap());
        let mut buf = Vec::new();
        tmpl.render(0xABCD, p("198.51.100.0/24"), &mut buf);
        let view = query_view(&buf).expect("template query is simple");
        let full = decode(&buf).unwrap();
        assert_eq!(view.id, full.id);
        assert_eq!(view.is_response(), full.is_response);
        assert_eq!(view.recursion_desired(), full.recursion_desired);
        assert_eq!(view.opcode(), full.opcode.to_u8());
        assert_eq!(view.rtype, RrType::A.to_u16());
        assert_eq!(view.qclass, RrClass::In.to_u16());
        assert_eq!(view.ecs, full.ecs().copied());
        assert_eq!(view.qname_wire, tmpl.qname_wire());
    }

    #[test]
    fn error_response_parses_and_flags_read_back() {
        let tmpl = ProbeQueryTemplate::new(&"www.google.com".parse().unwrap());
        let mut query = Vec::new();
        tmpl.render(0xBEEF, p("198.51.100.0/24"), &mut query);
        let question_wire = &query[12..12 + tmpl.qname_wire().len() + 4];

        let mut resp = Vec::new();
        write_probe_error_response(&mut resp, 0xBEEF, question_wire, 2, false);
        let view = response_view(&resp).unwrap();
        assert_eq!(view.id, 0xBEEF);
        assert_eq!(view.flags & RCODE_MASK, 2); // SERVFAIL
        assert_eq!(view.flags & FLAG_TC, 0);
        assert_eq!(view.answer_count, 0);
        assert!(view.ecs.is_none());
        // Decodes through the full parser too.
        let msg = decode(&resp).unwrap();
        assert!(msg.is_response);
        assert_eq!(msg.answers.len(), 0);

        write_probe_error_response(&mut resp, 0xBEEF, question_wire, 0, true);
        let view = response_view(&resp).unwrap();
        assert_eq!(view.flags & FLAG_TC, FLAG_TC);
        assert_eq!(view.flags & RCODE_MASK, 0);
    }

    #[test]
    fn question_echo_matching() {
        let tmpl = ProbeQueryTemplate::new(&"www.google.com".parse().unwrap());
        let mut query = Vec::new();
        tmpl.render(7, p("203.0.113.0/24"), &mut query);
        let question_wire = &query[12..12 + tmpl.qname_wire().len() + 4].to_vec();

        // A real probe response echoes the question.
        let mut resp = Vec::new();
        write_probe_response(&mut resp, 7, question_wire, None, p("203.0.113.0/24"), 0);
        assert!(question_echo_matches(&query, &resp));
        // So does an injected error response.
        write_probe_error_response(&mut resp, 7, question_wire, 5, false);
        assert!(question_echo_matches(&query, &resp));

        // A response to a different name does not.
        let other = ProbeQueryTemplate::new(&"facebook.com".parse().unwrap());
        let mut other_q = Vec::new();
        other.render(7, p("203.0.113.0/24"), &mut other_q);
        let other_question = other_q[12..12 + other.qname_wire().len() + 4].to_vec();
        write_probe_response(&mut resp, 7, &other_question, None, p("203.0.113.0/24"), 0);
        assert!(!question_echo_matches(&query, &resp));
        // Truncated garbage never panics.
        assert!(!question_echo_matches(&query, &resp[..8]));
        assert!(!question_echo_matches(&[0u8; 5], &resp));
    }

    #[test]
    fn query_view_rejects_non_simple_shapes() {
        // A response with answers is not probe-query-shaped.
        let q = probe_query("www.google.com", 1, p("10.0.0.0/24"));
        let resp = Message::response_for(&q)
            .with_answers(vec![Record::a("www.google.com".parse().unwrap(), 60, 1)])
            .with_response_ecs(p("10.0.0.0/24"), 20);
        assert!(query_view(&encode(&resp).unwrap()).is_none());
        // Truncated packets are rejected, never panic.
        let bytes = encode(&q).unwrap();
        for cut in 0..bytes.len() {
            let _ = query_view(&bytes[..cut]);
        }
    }

    #[test]
    fn response_view_agrees_with_decode() {
        let q = probe_query("www.youtube.com", 77, p("203.0.113.0/24"));
        let hit = Message::response_for(&q)
            .with_answers(vec![Record::a(
                "www.youtube.com".parse().unwrap(),
                299,
                0x60F0_0001,
            )])
            .with_response_ecs(p("203.0.113.0/24"), 22);
        let scope0 = Message::response_for(&q)
            .with_answers(vec![Record::a(
                "www.youtube.com".parse().unwrap(),
                1,
                0x60F0_0001,
            )])
            .with_response_ecs(p("203.0.113.0/24"), 0);
        let miss = Message::response_for(&q).with_response_ecs(p("203.0.113.0/24"), 0);
        for msg in [&hit, &scope0, &miss] {
            let bytes = encode(msg).unwrap();
            let view = response_view(&bytes).unwrap();
            let full = decode(&bytes).unwrap();
            assert_eq!(view.id, full.id);
            assert_eq!(view.answer_count as usize, full.answers.len());
            if let Some(first) = full.answers.first() {
                assert_eq!(view.first_answer_ttl, first.ttl);
            }
            assert_eq!(view.ecs, full.ecs().copied());
        }
    }

    #[test]
    fn response_view_rejects_truncation() {
        let q = probe_query("www.google.com", 5, p("10.0.0.0/24"));
        let resp = Message::response_for(&q)
            .with_answers(vec![Record::a("www.google.com".parse().unwrap(), 60, 9)])
            .with_response_ecs(p("10.0.0.0/24"), 24);
        let bytes = encode(&resp).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                response_view(&bytes[..cut]).is_err(),
                "accepted {cut}-byte truncation"
            );
        }
    }

    #[test]
    fn write_probe_response_matches_message_encoder() {
        let source = p("198.51.100.0/24");
        let q = probe_query("facebook.com", 0x5150, source);
        let qbytes = encode(&q).unwrap();
        let view = query_view(&qbytes).unwrap();
        let question_wire = &qbytes[12..12 + view.qname_wire.len() + 4];

        let mut fast = Vec::new();
        // Hit with a nonzero scope.
        write_probe_response(
            &mut fast,
            q.id,
            question_wire,
            Some((299, 0x60F0_0002)),
            source,
            22,
        );
        let slow = Message::response_for(&q)
            .with_answers(vec![Record::a(
                "facebook.com".parse().unwrap(),
                299,
                0x60F0_0002,
            )])
            .with_response_ecs(source, 22);
        assert_eq!(fast, encode(&slow).unwrap());

        // Scope-zero hit.
        write_probe_response(
            &mut fast,
            q.id,
            question_wire,
            Some((1, 0x60F0_0002)),
            source,
            0,
        );
        let slow = Message::response_for(&q)
            .with_answers(vec![Record::a(
                "facebook.com".parse().unwrap(),
                1,
                0x60F0_0002,
            )])
            .with_response_ecs(source, 0);
        assert_eq!(fast, encode(&slow).unwrap());

        // Miss: no answers, scope-zero ECS.
        write_probe_response(&mut fast, q.id, question_wire, None, source, 0);
        let slow = Message::response_for(&q).with_response_ecs(source, 0);
        assert_eq!(fast, encode(&slow).unwrap());
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let msgs = [
            probe_query("www.google.com", 1, p("10.0.0.0/24")),
            probe_query("www.wikipedia.org", 2, p("192.0.2.0/28")),
            Message::query(3, Question::a("www.example.com").unwrap()),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_into(m, &mut buf).unwrap();
            assert_eq!(buf, encode(m).unwrap());
        }
    }
}

// ---------------------------------------------------------------------------
// DNS-over-TCP framing (RFC 1035 §4.2.2)
// ---------------------------------------------------------------------------

/// Encodes a message with the two-octet length prefix used on TCP —
/// the transport the paper's prober uses to dodge the UDP rate limit.
pub fn encode_tcp(msg: &Message) -> Result<Vec<u8>, WireError> {
    let body = encode(msg)?;
    if body.len() > u16::MAX as usize {
        return Err(WireError::EncodeTooLong);
    }
    let mut out = Vec::with_capacity(body.len() + 2);
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes one length-prefixed message from a TCP stream buffer.
///
/// Returns the message and the number of bytes consumed, or
/// `Ok(None)` if the buffer does not yet hold a complete frame
/// (stream reassembly), or an error for malformed contents.
pub fn decode_tcp(stream: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    if stream.len() < 2 {
        return Ok(None);
    }
    let len = u16::from_be_bytes([stream[0], stream[1]]) as usize;
    if stream.len() < 2 + len {
        return Ok(None);
    }
    let msg = decode(&stream[2..2 + len])?;
    Ok(Some((msg, 2 + len)))
}

#[cfg(test)]
mod tcp_tests {
    use super::*;
    use crate::Question;

    fn probe() -> Message {
        Message::query(7, Question::a("www.google.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs("203.0.113.0/24".parse().unwrap())
    }

    #[test]
    fn tcp_roundtrip() {
        let m = probe();
        let framed = encode_tcp(&m).unwrap();
        let (back, used) = decode_tcp(&framed).unwrap().unwrap();
        assert_eq!(back, m);
        assert_eq!(used, framed.len());
    }

    #[test]
    fn tcp_partial_frames_wait() {
        let framed = encode_tcp(&probe()).unwrap();
        assert!(decode_tcp(&framed[..1]).unwrap().is_none());
        assert!(decode_tcp(&framed[..framed.len() - 1]).unwrap().is_none());
        assert!(decode_tcp(&[]).unwrap().is_none());
    }

    #[test]
    fn tcp_stream_with_two_messages() {
        let m1 = probe();
        let mut m2 = probe();
        m2.id = 9;
        let mut stream = encode_tcp(&m1).unwrap();
        stream.extend(encode_tcp(&m2).unwrap());
        let (got1, used1) = decode_tcp(&stream).unwrap().unwrap();
        assert_eq!(got1.id, 7);
        let (got2, used2) = decode_tcp(&stream[used1..]).unwrap().unwrap();
        assert_eq!(got2.id, 9);
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn tcp_bad_contents_error() {
        // Complete frame with garbage inside.
        let mut stream = vec![0, 3];
        stream.extend_from_slice(&[1, 2, 3]);
        assert!(decode_tcp(&stream).is_err());
    }
}
