//! RFC 1035 wire-format codec with name compression.
//!
//! [`encode`] produces a compact packet (names compressed against every
//! previously written name suffix). [`decode`] is fully bounds-checked:
//! arbitrary bytes can be fed in and the worst outcome is a
//! [`WireError`]. Compression pointers must point strictly backwards,
//! which both matches real resolver behaviour and makes pointer loops
//! impossible.
//!
//! The codec exists so the simulated query path exercises exactly what a
//! real prober would put on the wire — including the EDNS0 OPT record
//! and the RFC 7871 ECS option the whole cache-probing technique relies
//! on — and so the test suite can fuzz the parser with garbage.

use std::collections::HashMap;

use bytes::{BufMut, BytesMut};
use clientmap_net::Prefix;

use crate::edns::{ECS_FAMILY_IPV4, OPTION_CODE_ECS};
use crate::name::{Label, MAX_NAME_LEN};
use crate::{
    DomainName, EcsOption, Edns, EdnsOption, Message, Opcode, Question, RData, Rcode, Record,
    RrClass, RrType, WireError,
};

/// Maximum offset expressible by a 14-bit compression pointer.
const MAX_POINTER: usize = 0x3FFF;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes a message to wire format.
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut buf = BytesMut::with_capacity(512);
    let mut names: HashMap<String, usize> = HashMap::new();

    buf.put_u16(msg.id);
    let mut flags: u16 = 0;
    if msg.is_response {
        flags |= 0x8000;
    }
    flags |= (msg.opcode.to_u8() as u16) << 11;
    if msg.authoritative {
        flags |= 0x0400;
    }
    if msg.truncated {
        flags |= 0x0200;
    }
    if msg.recursion_desired {
        flags |= 0x0100;
    }
    if msg.recursion_available {
        flags |= 0x0080;
    }
    flags |= msg.rcode.to_u8() as u16;
    buf.put_u16(flags);

    let qdcount = msg.question.iter().count() as u16;
    let arcount = msg.additional.len() as u16 + msg.edns.iter().count() as u16;
    buf.put_u16(qdcount);
    buf.put_u16(msg.answers.len() as u16);
    buf.put_u16(msg.authority.len() as u16);
    buf.put_u16(arcount);

    if let Some(q) = &msg.question {
        encode_name(&mut buf, &q.name, &mut names)?;
        buf.put_u16(q.rtype.to_u16());
        buf.put_u16(q.class.to_u16());
    }
    for r in &msg.answers {
        encode_record(&mut buf, r, &mut names)?;
    }
    for r in &msg.authority {
        encode_record(&mut buf, r, &mut names)?;
    }
    for r in &msg.additional {
        encode_record(&mut buf, r, &mut names)?;
    }
    if let Some(edns) = &msg.edns {
        encode_opt(&mut buf, edns)?;
    }
    Ok(buf.to_vec())
}

/// Writes a (possibly compressed) name at the current offset.
fn encode_name(
    buf: &mut BytesMut,
    name: &DomainName,
    names: &mut HashMap<String, usize>,
) -> Result<(), WireError> {
    let labels = name.labels();
    for i in 0..labels.len() {
        let suffix: String = labels[i..]
            .iter()
            .map(|l| l.as_str())
            .collect::<Vec<_>>()
            .join(".");
        if let Some(&off) = names.get(&suffix) {
            if off <= MAX_POINTER {
                buf.put_u16(0xC000 | off as u16);
                return Ok(());
            }
        }
        let here = buf.len();
        if here <= MAX_POINTER {
            names.insert(suffix, here);
        }
        let label = labels[i].as_str();
        debug_assert!(label.len() <= 63);
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
    }
    buf.put_u8(0); // root
    Ok(())
}

fn encode_record(
    buf: &mut BytesMut,
    r: &Record,
    names: &mut HashMap<String, usize>,
) -> Result<(), WireError> {
    encode_name(buf, &r.name, names)?;
    buf.put_u16(r.rtype.to_u16());
    buf.put_u16(r.class.to_u16());
    buf.put_u32(r.ttl);
    // Reserve the RDLENGTH slot, then backfill.
    let len_pos = buf.len();
    buf.put_u16(0);
    let start = buf.len();
    match &r.rdata {
        RData::A(addr) => buf.put_u32(*addr),
        RData::Cname(n) | RData::Ns(n) => encode_name(buf, n, names)?,
        RData::Txt(text) => {
            let bytes = text.as_bytes();
            if bytes.is_empty() {
                buf.put_u8(0);
            } else {
                for chunk in bytes.chunks(255) {
                    buf.put_u8(chunk.len() as u8);
                    buf.put_slice(chunk);
                }
            }
        }
        RData::Opaque(data) => buf.put_slice(data),
    }
    let rdlen = buf.len() - start;
    if rdlen > u16::MAX as usize {
        return Err(WireError::EncodeTooLong);
    }
    buf[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
    Ok(())
}

fn encode_opt(buf: &mut BytesMut, edns: &Edns) -> Result<(), WireError> {
    buf.put_u8(0); // root name
    buf.put_u16(RrType::Opt.to_u16());
    buf.put_u16(edns.udp_payload_size);
    let ttl: u32 =
        ((edns.ext_rcode as u32) << 24) | ((edns.version as u32) << 16) | edns.flags as u32;
    buf.put_u32(ttl);
    let len_pos = buf.len();
    buf.put_u16(0);
    let start = buf.len();
    for opt in &edns.options {
        match opt {
            EdnsOption::Ecs(ecs) => {
                // RFC 7871: family, source prefix len, scope prefix len,
                // then ceil(source_len/8) address bytes.
                let src_len = ecs.source.len();
                let addr_bytes = src_len.div_ceil(8) as usize;
                buf.put_u16(OPTION_CODE_ECS);
                buf.put_u16(4 + addr_bytes as u16);
                buf.put_u16(ECS_FAMILY_IPV4);
                buf.put_u8(src_len);
                buf.put_u8(ecs.scope_len);
                let addr = ecs.source.addr().to_be_bytes();
                buf.put_slice(&addr[..addr_bytes]);
            }
            EdnsOption::Other { code, data } => {
                if data.len() > u16::MAX as usize {
                    return Err(WireError::EncodeTooLong);
                }
                buf.put_u16(*code);
                buf.put_u16(data.len() as u16);
                buf.put_slice(data);
            }
        }
    }
    let rdlen = buf.len() - start;
    if rdlen > u16::MAX as usize {
        return Err(WireError::EncodeTooLong);
    }
    buf[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over the packet.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(((self.u8()? as u16) << 8) | self.u8()? as u16)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(((self.u16()? as u32) << 16) | self.u16()? as u32)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Decodes a name starting at the cursor, following backward-only
/// compression pointers.
fn decode_name(cur: &mut Cursor<'_>) -> Result<DomainName, WireError> {
    let mut labels: Vec<Label> = Vec::new();
    let mut wire_len = 1usize; // root byte
                               // After the first pointer jump we stop advancing the real cursor.
    let mut jumped = false;
    let mut pos = cur.pos;

    loop {
        let len_byte = *cur.data.get(pos).ok_or(WireError::Truncated)?;
        match len_byte & 0xC0 {
            0x00 => {
                if len_byte == 0 {
                    pos += 1;
                    if !jumped {
                        cur.pos = pos;
                    }
                    return DomainName::from_labels(labels).map_err(|_| WireError::NameTooLong);
                }
                let n = len_byte as usize;
                let start = pos + 1;
                let end = start + n;
                if end > cur.data.len() {
                    return Err(WireError::Truncated);
                }
                wire_len += 1 + n;
                if wire_len > MAX_NAME_LEN {
                    return Err(WireError::NameTooLong);
                }
                let text = std::str::from_utf8(&cur.data[start..end])
                    .map_err(|_| WireError::InvalidLabel)?;
                labels.push(Label::new(text).map_err(|_| WireError::InvalidLabel)?);
                pos = end;
                if !jumped {
                    cur.pos = pos;
                }
            }
            0xC0 => {
                let second = *cur.data.get(pos + 1).ok_or(WireError::Truncated)?;
                let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                // Backward-only: prevents loops and forward references.
                if target >= pos {
                    return Err(WireError::BadPointer(target as u16));
                }
                if !jumped {
                    cur.pos = pos + 2;
                }
                jumped = true;
                pos = target;
            }
            other => return Err(WireError::BadLabelType(other)),
        }
    }
}

fn decode_question(cur: &mut Cursor<'_>) -> Result<Question, WireError> {
    let name = decode_name(cur)?;
    let rtype = RrType::from_u16(cur.u16()?);
    let class = RrClass::from_u16(cur.u16()?);
    Ok(Question { name, rtype, class })
}

/// Outcome of decoding one record slot: a regular record or the OPT
/// pseudo-record (extracted into [`Edns`]).
enum Slot {
    Record(Record),
    Opt(Edns),
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<Slot, WireError> {
    let name = decode_name(cur)?;
    let rtype = RrType::from_u16(cur.u16()?);
    let class_raw = cur.u16()?;
    let ttl = cur.u32()?;
    let rdlen = cur.u16()? as usize;
    if cur.remaining() < rdlen {
        return Err(WireError::Truncated);
    }
    if rtype == RrType::Opt {
        if !name.is_root() {
            return Err(WireError::BadOpt("OPT owner name must be root"));
        }
        let rdata = cur.bytes(rdlen)?;
        let edns = decode_opt(class_raw, ttl, rdata)?;
        return Ok(Slot::Opt(edns));
    }

    let rdata_end = cur.pos + rdlen;
    let rdata = match rtype {
        RrType::A => {
            if rdlen != 4 {
                return Err(WireError::RdataLengthMismatch {
                    declared: rdlen as u16,
                    consumed: 4,
                });
            }
            RData::A(cur.u32()?)
        }
        RrType::Cname | RrType::Ns => {
            let n = decode_name(cur)?;
            if cur.pos != rdata_end {
                return Err(WireError::RdataLengthMismatch {
                    declared: rdlen as u16,
                    consumed: (cur.pos + rdlen - rdata_end) as u16,
                });
            }
            if rtype == RrType::Cname {
                RData::Cname(n)
            } else {
                RData::Ns(n)
            }
        }
        RrType::Txt => {
            let mut text = Vec::new();
            while cur.pos < rdata_end {
                let n = cur.u8()? as usize;
                if cur.pos + n > rdata_end {
                    return Err(WireError::Truncated);
                }
                text.extend_from_slice(cur.bytes(n)?);
            }
            RData::Txt(String::from_utf8(text).map_err(|_| WireError::InvalidLabel)?)
        }
        _ => RData::Opaque(cur.bytes(rdlen)?.to_vec()),
    };
    Ok(Slot::Record(Record {
        name,
        rtype,
        class: RrClass::from_u16(class_raw),
        ttl,
        rdata,
    }))
}

fn decode_opt(class_raw: u16, ttl: u32, rdata: &[u8]) -> Result<Edns, WireError> {
    let mut edns = Edns {
        udp_payload_size: class_raw,
        ext_rcode: (ttl >> 24) as u8,
        version: (ttl >> 16) as u8,
        flags: (ttl & 0xFFFF) as u16,
        options: Vec::new(),
    };
    let mut cur = Cursor::new(rdata);
    while cur.remaining() > 0 {
        let code = cur.u16()?;
        let len = cur.u16()? as usize;
        let body = cur.bytes(len)?;
        if code == OPTION_CODE_ECS {
            edns.options.push(EdnsOption::Ecs(decode_ecs(body)?));
        } else {
            edns.options.push(EdnsOption::Other {
                code,
                data: body.to_vec(),
            });
        }
    }
    Ok(edns)
}

fn decode_ecs(body: &[u8]) -> Result<EcsOption, WireError> {
    if body.len() < 4 {
        return Err(WireError::BadEcs("option shorter than fixed header"));
    }
    let family = ((body[0] as u16) << 8) | body[1] as u16;
    if family != ECS_FAMILY_IPV4 {
        return Err(WireError::BadEcs("non-IPv4 family"));
    }
    let source_len = body[2];
    let scope_len = body[3];
    if source_len > 32 || scope_len > 32 {
        return Err(WireError::BadEcs("prefix length > 32"));
    }
    let addr_bytes = source_len.div_ceil(8) as usize;
    if body.len() != 4 + addr_bytes {
        return Err(WireError::BadEcs("address length mismatch"));
    }
    let mut octets = [0u8; 4];
    octets[..addr_bytes].copy_from_slice(&body[4..4 + addr_bytes]);
    let addr = u32::from_be_bytes(octets);
    // RFC 7871 §6: trailing bits beyond source_len MUST be zero.
    let source =
        Prefix::new(addr, source_len).map_err(|_| WireError::BadEcs("bad source prefix"))?;
    if source.addr() != addr {
        return Err(WireError::BadEcs("nonzero padding bits"));
    }
    Ok(EcsOption { source, scope_len })
}

/// Decodes a packet into a [`Message`].
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    let mut cur = Cursor::new(data);
    let id = cur.u16()?;
    let flags = cur.u16()?;
    let qdcount = cur.u16()?;
    let ancount = cur.u16()?;
    let nscount = cur.u16()?;
    let arcount = cur.u16()?;

    if qdcount > 1 {
        return Err(WireError::Unsupported("multiple questions"));
    }

    let question = if qdcount == 1 {
        Some(decode_question(&mut cur)?)
    } else {
        None
    };

    let mut answers = Vec::with_capacity(ancount.min(64) as usize);
    for _ in 0..ancount {
        match decode_record(&mut cur)? {
            Slot::Record(r) => answers.push(r),
            Slot::Opt(_) => return Err(WireError::BadOpt("OPT in answer section")),
        }
    }
    let mut authority = Vec::with_capacity(nscount.min(64) as usize);
    for _ in 0..nscount {
        match decode_record(&mut cur)? {
            Slot::Record(r) => authority.push(r),
            Slot::Opt(_) => return Err(WireError::BadOpt("OPT in authority section")),
        }
    }
    let mut additional = Vec::new();
    let mut edns = None;
    for _ in 0..arcount {
        match decode_record(&mut cur)? {
            Slot::Record(r) => additional.push(r),
            Slot::Opt(e) => {
                if edns.replace(e).is_some() {
                    return Err(WireError::BadOpt("duplicate OPT"));
                }
            }
        }
    }

    Ok(Message {
        id,
        is_response: flags & 0x8000 != 0,
        opcode: Opcode::from_u8((flags >> 11) as u8),
        authoritative: flags & 0x0400 != 0,
        truncated: flags & 0x0200 != 0,
        recursion_desired: flags & 0x0100 != 0,
        recursion_available: flags & 0x0080 != 0,
        rcode: Rcode::from_u8(flags as u8),
        question,
        answers,
        authority,
        additional,
        edns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Question;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn roundtrip(msg: &Message) -> Message {
        let bytes = encode(msg).unwrap();
        decode(&bytes).unwrap()
    }

    #[test]
    fn simple_query_roundtrip() {
        let m = Message::query(0xBEEF, Question::a("www.example.com").unwrap());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn non_recursive_ecs_query_roundtrip() {
        let m = Message::query(1, Question::a("facebook.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs(p("203.0.113.0/24"));
        let back = roundtrip(&m);
        assert_eq!(back, m);
        assert!(!back.recursion_desired);
        assert_eq!(back.ecs().unwrap().source, p("203.0.113.0/24"));
    }

    #[test]
    fn response_with_answers_and_scope() {
        let q = Message::query(2, Question::a("www.google.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs(p("198.51.100.0/24"));
        let resp = Message::response_for(&q)
            .with_answers(vec![Record::a(
                "www.google.com".parse().unwrap(),
                300,
                0x8efa436e,
            )])
            .with_response_ecs(p("198.51.100.0/24"), 20);
        let back = roundtrip(&resp);
        assert_eq!(back, resp);
        assert_eq!(back.ecs().unwrap().scope_len, 20);
        assert!(back.has_answers());
    }

    #[test]
    fn ecs_partial_address_bytes() {
        // A /20 source needs ceil(20/8)=3 address octets on the wire.
        let m = Message::query(3, Question::a("x.example").unwrap()).with_ecs(p("10.32.16.0/20"));
        let bytes = encode(&m).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back.ecs().unwrap().source, p("10.32.16.0/20"));
        // /0 needs zero octets.
        let m0 = Message::query(4, Question::a("x.example").unwrap()).with_ecs(Prefix::DEFAULT);
        assert_eq!(roundtrip(&m0).ecs().unwrap().source, Prefix::DEFAULT);
    }

    #[test]
    fn name_compression_shrinks_and_roundtrips() {
        let mut m = Message::query(5, Question::a("www.example.com").unwrap());
        m.answers = vec![
            Record::a("www.example.com".parse().unwrap(), 60, 1),
            Record::a("www.example.com".parse().unwrap(), 60, 2),
            Record {
                name: "api.example.com".parse().unwrap(),
                rtype: RrType::Cname,
                class: RrClass::In,
                ttl: 60,
                rdata: RData::Cname("www.example.com".parse().unwrap()),
            },
        ];
        let bytes = encode(&m).unwrap();
        assert_eq!(decode(&bytes).unwrap(), m);
        // The three repeats of www.example.com must compress to pointers:
        // a full encoding would repeat 17 bytes; allow generous slack.
        assert!(
            bytes.len() < 100,
            "packet unexpectedly large: {}",
            bytes.len()
        );
    }

    #[test]
    fn txt_record_long_string_chunks() {
        let long = "x".repeat(700);
        let mut m = Message::query(6, Question::txt("t.example").unwrap());
        m.answers = vec![Record::txt("t.example".parse().unwrap(), 60, long.clone())];
        let back = roundtrip(&m);
        match &back.answers[0].rdata {
            RData::Txt(s) => assert_eq!(s, &long),
            other => panic!("wrong rdata: {other:?}"),
        }
    }

    #[test]
    fn empty_txt_roundtrips() {
        let mut m = Message::query(6, Question::txt("t.example").unwrap());
        m.answers = vec![Record::txt("t.example".parse().unwrap(), 60, "")];
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn unknown_type_is_opaque_lossless() {
        let mut m = Message::query(7, Question::a("z.example").unwrap());
        m.answers = vec![Record {
            name: "z.example".parse().unwrap(),
            rtype: RrType::Other(4242),
            class: RrClass::In,
            ttl: 9,
            rdata: RData::Opaque(vec![1, 2, 3, 4, 5]),
        }];
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn root_question_roundtrips() {
        let q = Question {
            name: DomainName::root(),
            rtype: RrType::Ns,
            class: RrClass::In,
        };
        let m = Message::query(8, q);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let m =
            Message::query(9, Question::a("www.example.com").unwrap()).with_ecs(p("10.0.0.0/24"));
        let bytes = encode(&m).unwrap();
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "decode accepted a {cut}-byte truncation");
        }
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Header + a name that points forward to itself.
        let mut pkt = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        pkt.extend_from_slice(&[0xC0, 12]); // pointer to its own offset 12
        pkt.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&pkt), Err(WireError::BadPointer(_))));
    }

    #[test]
    fn decode_rejects_reserved_label_type() {
        let mut pkt = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        pkt.push(0x80); // reserved 10-prefix label type
        pkt.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&pkt), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn decode_rejects_bad_ecs() {
        // Build a valid message, then corrupt the ECS family to IPv6.
        let m = Message::query(10, Question::a("a.example").unwrap()).with_ecs(p("10.0.0.0/24"));
        let mut bytes = encode(&m).unwrap();
        // Find the ECS option: family bytes are the 2 bytes after code+len.
        // code 0x0008, len 0x0007 — locate that pattern.
        let pat = [0x00, 0x08, 0x00, 0x07, 0x00, 0x01];
        let pos = bytes
            .windows(pat.len())
            .position(|w| w == pat)
            .expect("ECS option not found");
        bytes[pos + 5] = 2; // family = 2 (IPv6)
        assert!(matches!(decode(&bytes), Err(WireError::BadEcs(_))));
    }

    #[test]
    fn decode_rejects_nonzero_ecs_padding() {
        let m = Message::query(11, Question::a("a.example").unwrap()).with_ecs(p("10.0.0.0/20"));
        let mut bytes = encode(&m).unwrap();
        // /20 encodes 3 address octets: 0x0A 0x00 0x00; set low 4 bits of
        // the third octet (beyond the /20 boundary) to violate RFC 7871.
        let pat = [0x00, 0x08, 0x00, 0x07, 0x00, 0x01, 20, 0, 0x0A];
        let pos = bytes
            .windows(pat.len())
            .position(|w| w == pat)
            .expect("ECS option not found");
        bytes[pos + 10] |= 0x0F;
        assert!(matches!(decode(&bytes), Err(WireError::BadEcs(_))));
    }

    #[test]
    fn decode_rejects_wrong_a_rdlen() {
        let mut m = Message::query(12, Question::a("a.example").unwrap());
        m.answers = vec![Record::a("a.example".parse().unwrap(), 1, 7)];
        let mut bytes = encode(&m).unwrap();
        // The final 6 bytes are RDLENGTH(2) + RDATA(4). Shrink RDLENGTH to 3
        // and drop a byte.
        let n = bytes.len();
        bytes[n - 6..n - 4].copy_from_slice(&3u16.to_be_bytes());
        bytes.truncate(n - 1);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decode_garbage_never_panics() {
        // Deterministic pseudo-random garbage.
        let mut x = 0x12345678u32;
        for len in 0..200 {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                v.push((x >> 24) as u8);
            }
            let _ = decode(&v); // must not panic
        }
    }

    #[test]
    fn multiple_questions_rejected() {
        let m = Message::query(13, Question::a("a.example").unwrap());
        let mut bytes = encode(&m).unwrap();
        bytes[4..6].copy_from_slice(&2u16.to_be_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Unsupported(_))));
    }
}

// ---------------------------------------------------------------------------
// DNS-over-TCP framing (RFC 1035 §4.2.2)
// ---------------------------------------------------------------------------

/// Encodes a message with the two-octet length prefix used on TCP —
/// the transport the paper's prober uses to dodge the UDP rate limit.
pub fn encode_tcp(msg: &Message) -> Result<Vec<u8>, WireError> {
    let body = encode(msg)?;
    if body.len() > u16::MAX as usize {
        return Err(WireError::EncodeTooLong);
    }
    let mut out = Vec::with_capacity(body.len() + 2);
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes one length-prefixed message from a TCP stream buffer.
///
/// Returns the message and the number of bytes consumed, or
/// `Ok(None)` if the buffer does not yet hold a complete frame
/// (stream reassembly), or an error for malformed contents.
pub fn decode_tcp(stream: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    if stream.len() < 2 {
        return Ok(None);
    }
    let len = u16::from_be_bytes([stream[0], stream[1]]) as usize;
    if stream.len() < 2 + len {
        return Ok(None);
    }
    let msg = decode(&stream[2..2 + len])?;
    Ok(Some((msg, 2 + len)))
}

#[cfg(test)]
mod tcp_tests {
    use super::*;
    use crate::Question;

    fn probe() -> Message {
        Message::query(7, Question::a("www.google.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs("203.0.113.0/24".parse().unwrap())
    }

    #[test]
    fn tcp_roundtrip() {
        let m = probe();
        let framed = encode_tcp(&m).unwrap();
        let (back, used) = decode_tcp(&framed).unwrap().unwrap();
        assert_eq!(back, m);
        assert_eq!(used, framed.len());
    }

    #[test]
    fn tcp_partial_frames_wait() {
        let framed = encode_tcp(&probe()).unwrap();
        assert!(decode_tcp(&framed[..1]).unwrap().is_none());
        assert!(decode_tcp(&framed[..framed.len() - 1]).unwrap().is_none());
        assert!(decode_tcp(&[]).unwrap().is_none());
    }

    #[test]
    fn tcp_stream_with_two_messages() {
        let m1 = probe();
        let mut m2 = probe();
        m2.id = 9;
        let mut stream = encode_tcp(&m1).unwrap();
        stream.extend(encode_tcp(&m2).unwrap());
        let (got1, used1) = decode_tcp(&stream).unwrap().unwrap();
        assert_eq!(got1.id, 7);
        let (got2, used2) = decode_tcp(&stream[used1..]).unwrap().unwrap();
        assert_eq!(got2.id, 9);
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn tcp_bad_contents_error() {
        // Complete frame with garbage inside.
        let mut stream = vec![0, 3];
        stream.extend_from_slice(&[1, 2, 3]);
        assert!(decode_tcp(&stream).is_err());
    }
}
