//! Resource records, RR types/classes, and response codes.

use std::fmt;

use clientmap_net::Prefix;

use crate::DomainName;

/// Resource-record types used by the pipeline.
///
/// Unknown types survive a decode/encode round trip via
/// [`RrType::Other`], so the codec never silently drops data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Text record (e.g. the `o-o.myaddr.l.google.com` PoP-discovery TXT).
    Txt,
    /// IPv6 host address (carried opaquely; the pipeline is IPv4-only).
    Aaaa,
    /// EDNS0 OPT pseudo-record (RFC 6891).
    Opt,
    /// Any other type, by number.
    Other(u16),
}

impl RrType {
    /// The wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Other(v) => v,
        }
    }

    /// From the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            other => RrType::Other(other),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Soa => write!(f, "SOA"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Aaaa => write!(f, "AAAA"),
            RrType::Opt => write!(f, "OPT"),
            RrType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Resource-record classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrClass {
    /// The Internet class (the only one we use semantically).
    In,
    /// Any other class, by number. For OPT records this field carries the
    /// requestor's UDP payload size and is handled by the EDNS layer.
    Other(u16),
}

impl RrClass {
    /// The wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Other(v) => v,
        }
    }

    /// From the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrClass::In,
            other => RrClass::Other(other),
        }
    }
}

/// DNS response codes (RFC 1035 §4.1.1, extended by EDNS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (the normal answer to a Chromium probe).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused — e.g. Google Public DNS rate limiting, or a recursive
    /// resolver rejecting outside queries.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    /// The 4-bit wire value (low bits only; extended rcode lives in OPT).
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// From the wire value.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(v) => write!(f, "RCODE{v}"),
        }
    }
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// An IPv4 address.
    A(u32),
    /// An alias target.
    Cname(DomainName),
    /// A name server.
    Ns(DomainName),
    /// Text strings (joined; individual 255-byte chunking is a wire
    /// concern handled by the codec).
    Txt(String),
    /// Anything else, carried opaquely so round trips are lossless.
    Opaque(Vec<u8>),
}

impl RData {
    /// The natural RR type for this rdata (opaque data has none).
    pub fn rtype(&self) -> Option<RrType> {
        match self {
            RData::A(_) => Some(RrType::A),
            RData::Cname(_) => Some(RrType::Cname),
            RData::Ns(_) => Some(RrType::Ns),
            RData::Txt(_) => Some(RrType::Txt),
            RData::Opaque(_) => None,
        }
    }
}

/// One resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: DomainName,
    /// Record type (authoritative; may disagree with `rdata` only for
    /// [`RData::Opaque`]).
    pub rtype: RrType,
    /// Record class.
    pub class: RrClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// The data.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for an A record.
    pub fn a(name: DomainName, ttl: u32, addr: u32) -> Record {
        Record {
            name,
            rtype: RrType::A,
            class: RrClass::In,
            ttl,
            rdata: RData::A(addr),
        }
    }

    /// Convenience constructor for a TXT record.
    pub fn txt(name: DomainName, ttl: u32, text: impl Into<String>) -> Record {
        Record {
            name,
            rtype: RrType::Txt,
            class: RrClass::In,
            ttl,
            rdata: RData::Txt(text.into()),
        }
    }
}

/// A served "answer" bundled with the ECS scope it applies to — what an
/// ECS-aware authoritative hands back (RFC 7871 §7.2.1): the records
/// plus the `scope prefix-length` that tells caches how widely the
/// answer may be reused.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopedAnswer {
    /// Answer records.
    pub records: Vec<Record>,
    /// The scope the answer is valid for. `None` means "no ECS in the
    /// response" (domain does not support ECS); `Some(p)` with
    /// `p.len() == 0` is the RFC 7871 scope-0 "valid everywhere" case.
    pub scope: Option<Prefix>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtype_roundtrip() {
        for v in [1u16, 2, 5, 6, 16, 28, 41, 99, 65280] {
            assert_eq!(RrType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RrType::from_u16(1), RrType::A);
        assert_eq!(RrType::from_u16(999), RrType::Other(999));
    }

    #[test]
    fn rcode_roundtrip_masks_high_bits() {
        for v in 0u8..16 {
            assert_eq!(Rcode::from_u8(v).to_u8(), v);
        }
        assert_eq!(Rcode::from_u8(0xF3), Rcode::NxDomain);
    }

    #[test]
    fn rdata_natural_types() {
        assert_eq!(RData::A(1).rtype(), Some(RrType::A));
        assert_eq!(RData::Txt("x".into()).rtype(), Some(RrType::Txt));
        assert_eq!(RData::Opaque(vec![1, 2]).rtype(), None);
    }

    #[test]
    fn record_constructors() {
        let n: DomainName = "www.example.com".parse().unwrap();
        let r = Record::a(n.clone(), 300, 0x01020304);
        assert_eq!(r.rtype, RrType::A);
        assert_eq!(r.ttl, 300);
        let t = Record::txt(n, 60, "pop=lhr");
        assert_eq!(t.rdata, RData::Txt("pop=lhr".into()));
    }
}
