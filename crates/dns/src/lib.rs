//! # clientmap-dns
//!
//! A from-scratch DNS data model for the `clientmap` measurement
//! pipeline:
//!
//! - [`DomainName`] — validated, case-insensitive domain names;
//! - resource records ([`Record`], [`RData`], [`RrType`], [`Rcode`]);
//! - [`Message`] — query/response messages with EDNS0 and the RFC 7871
//!   EDNS Client Subnet (ECS) option ([`EcsOption`]);
//! - a bounds-checked RFC 1035 **wire codec** with name compression
//!   ([`wire::encode`], [`wire::decode`]) — malformed input returns
//!   [`WireError`], never panics;
//! - an **ECS-scoped TTL cache** ([`EcsCache`]) reproducing how Google
//!   Public DNS keeps separate cache entries per client-subnet scope,
//!   which is the mechanism the paper's cache-probing technique (§3.1)
//!   snoops on.
//!
//! The crate performs no I/O. "Time" is a plain `u64` of simulated
//! milliseconds supplied by the caller, which keeps the cache testable
//! and the whole pipeline deterministic.
//!
//! ```
//! use clientmap_dns::{DomainName, Message, Question, RrType};
//!
//! let q = Message::query(0x1234, Question::a("www.example.com").unwrap())
//!     .with_recursion_desired(false);
//! let bytes = clientmap_dns::wire::encode(&q).unwrap();
//! let back = clientmap_dns::wire::decode(&bytes).unwrap();
//! assert_eq!(q, back);
//! assert_eq!(back.question.as_ref().unwrap().rtype, RrType::A);
//! assert_eq!(
//!     back.question.as_ref().unwrap().name,
//!     "WWW.EXAMPLE.COM".parse::<DomainName>().unwrap()
//! );
//! ```

#![warn(missing_docs)]

mod cache;
mod edns;
mod error;
mod message;
mod name;
mod rr;
pub mod wire;

pub use cache::{CacheKey, CacheLookup, EcsCache, EcsCacheEntry};
pub use edns::{EcsOption, Edns, EdnsOption};
pub use error::{DnsError, WireError};
pub use message::{Message, Opcode, Question};
pub use name::{DomainName, Label};
pub use rr::{RData, Rcode, Record, RrClass, RrType, ScopedAnswer};
