//! Property-based tests for the DNS wire codec and the ECS cache
//! (DESIGN.md §6: `decode(encode(m)) == m`, no panics on garbage,
//! non-recursive queries never populate the cache, exact TTL expiry,
//! scoped entries answer only addresses inside the scope).

use clientmap_dns::{
    wire, CacheKey, DomainName, EcsCache, Message, Question, RData, Rcode, Record, RrClass, RrType,
};
use clientmap_net::Prefix;
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_][a-z0-9_-]{0,14}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(arb_label(), 0..5)
        .prop_map(|labels| DomainName::parse(&labels.join(".")).expect("labels are valid"))
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(a, l).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = (RrType, RData)> {
    prop_oneof![
        any::<u32>().prop_map(|a| (RrType::A, RData::A(a))),
        arb_name().prop_map(|n| (RrType::Cname, RData::Cname(n))),
        arb_name().prop_map(|n| (RrType::Ns, RData::Ns(n))),
        proptest::string::string_regex("[ -~]{0,300}")
            .expect("valid regex")
            .prop_map(|s| (RrType::Txt, RData::Txt(s))),
        (1000u16..2000, prop::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(t, d)| (RrType::Other(t), RData::Opaque(d))),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), arb_rdata(), any::<u32>()).prop_map(|(name, (rtype, rdata), ttl)| Record {
        name,
        rtype,
        class: RrClass::In,
        ttl,
        rdata,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        prop::collection::vec(arb_record(), 0..4),
        prop::collection::vec(arb_record(), 0..3),
        any::<bool>(),
        any::<bool>(),
        prop::option::of(arb_prefix()),
        0u8..6,
    )
        .prop_map(
            |(id, qname, answers, additional, rd, is_resp, ecs, rcode)| {
                let mut m = Message::query(
                    id,
                    Question {
                        name: qname,
                        rtype: RrType::A,
                        class: RrClass::In,
                    },
                )
                .with_recursion_desired(rd)
                .with_rcode(Rcode::from_u8(rcode));
                m.is_response = is_resp;
                m.answers = answers;
                m.additional = additional;
                if let Some(p) = ecs {
                    m = m.with_ecs(p);
                }
                m
            },
        )
}

proptest! {
    /// Wire codec round trip is the identity on valid messages.
    #[test]
    fn wire_roundtrip(m in arb_message()) {
        let bytes = wire::encode(&m).expect("encodable");
        let back = wire::decode(&bytes).expect("decodable");
        prop_assert_eq!(back, m);
    }

    /// Any truncation of a valid packet decodes to an error, never a panic.
    #[test]
    fn wire_truncation_errors(m in arb_message(), frac in 0.0f64..1.0) {
        let bytes = wire::encode(&m).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(wire::decode(&bytes[..cut]).is_err());
        }
    }

    /// Random bytes never panic the decoder.
    #[test]
    fn wire_garbage_no_panic(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = wire::decode(&data);
    }

    /// Single-byte corruption never panics and, if it still decodes, the
    /// result re-encodes cleanly (parser output is always well-formed).
    #[test]
    fn wire_bitflip_robustness(m in arb_message(), idx: prop::sample::Index, bit in 0u8..8) {
        let mut bytes = wire::encode(&m).unwrap();
        if bytes.is_empty() { return Ok(()); }
        let i = idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        if let Ok(decoded) = wire::decode(&bytes) {
            prop_assert!(wire::encode(&decoded).is_ok());
        }
    }

    /// Cache: an entry inserted with scope S answers exactly the query
    /// prefixes contained in S, and expires exactly at TTL.
    #[test]
    fn cache_scope_and_ttl_exact(
        scope in (any::<u32>(), 8u8..=24).prop_map(|(a, l)| Prefix::new(a, l).unwrap()),
        probe in (any::<u32>(), 24u8..=24).prop_map(|(a, l)| Prefix::new(a, l).unwrap()),
        ttl in 1u32..3600,
        now in 0u64..1_000_000,
    ) {
        let mut cache = EcsCache::new(64);
        let key = CacheKey::new("www.example.com".parse().unwrap(), RrType::A);
        let rec = Record::a("www.example.com".parse().unwrap(), ttl, 1);
        cache.insert(key.clone(), scope, vec![rec], ttl, now);

        let in_scope = scope.contains(probe);
        let live_at = now + u64::from(ttl) * 1000 - 1;
        let dead_at = now + u64::from(ttl) * 1000;
        prop_assert_eq!(cache.lookup(&key, probe, live_at).is_hit(), in_scope);
        prop_assert!(!cache.lookup(&key, probe, dead_at).is_hit());
    }

    /// Cache capacity bound is never exceeded and lookups stay correct.
    #[test]
    fn cache_capacity_invariant(
        inserts in prop::collection::vec((any::<u32>(), 1u32..600), 1..40),
        cap in 1usize..16,
    ) {
        let mut cache = EcsCache::new(cap);
        let key = CacheKey::new("www.example.com".parse().unwrap(), RrType::A);
        for (i, (addr, ttl)) in inserts.iter().enumerate() {
            let scope = Prefix::new(*addr, 24).unwrap();
            let rec = Record::a("www.example.com".parse().unwrap(), *ttl, *addr);
            cache.insert(key.clone(), scope, vec![rec], *ttl, i as u64 * 10);
            prop_assert!(cache.len() <= cap, "len {} > cap {}", cache.len(), cap);
        }
    }
}

/// The probe path in the simulator never inserts on a miss; this guards
/// the cache API against growing an implicit resolve-on-miss.
#[test]
fn lookup_never_populates() {
    let mut cache = EcsCache::new(16);
    let key = CacheKey::new("www.example.com".parse().unwrap(), RrType::A);
    let probe: Prefix = "10.0.0.0/24".parse().unwrap();
    for t in 0..10 {
        assert!(!cache.lookup(&key, probe, t * 1000).is_hit());
    }
    assert!(cache.is_empty());
    assert_eq!(cache.stats().inserts, 0);
    assert_eq!(cache.stats().misses, 10);
}

/// Names written beyond offset 0x3FFF cannot be pointer targets; the
/// encoder must fall back to uncompressed names and still round-trip.
#[test]
fn compression_disabled_past_pointer_range() {
    let mut m = Message::query(1, Question::a("seed.example").unwrap());
    // ~700 answers × ~40B pushes later names past 16 KiB.
    for i in 0..700u32 {
        let name: DomainName = format!("host-{i}.tail.domain-{i}.example").parse().unwrap();
        m.answers.push(Record {
            name,
            rtype: RrType::A,
            class: RrClass::In,
            ttl: 60,
            rdata: RData::A(i),
        });
    }
    let bytes = wire::encode(&m).expect("encodable");
    assert!(
        bytes.len() > 0x3FFF,
        "message too small to exercise the edge"
    );
    let back = wire::decode(&bytes).expect("decodable");
    assert_eq!(back, m);
}

/// A response compressed against the question name decodes correctly
/// even when the pointer lands exactly at the question-name offset (12).
#[test]
fn pointer_to_question_name() {
    let q = Question::a("www.example.com").unwrap();
    let mut m = Message::query(2, q.clone());
    m.is_response = true;
    m.answers = vec![Record::a(q.name.clone(), 30, 7)];
    let bytes = wire::encode(&m).unwrap();
    // The answer's owner name must be a pointer to offset 12.
    let q_wire_len = q.name.wire_len();
    let answer_name_off = 12 + q_wire_len + 4;
    assert_eq!(bytes[answer_name_off], 0xC0);
    assert_eq!(bytes[answer_name_off + 1], 12);
    assert_eq!(wire::decode(&bytes).unwrap(), m);
}
