//! Stateful model test: random operation sequences against a naive
//! reference implementation of the ECS cache semantics.
//!
//! The reference stores every insert as a plain list and answers
//! lookups by scanning for the most specific unexpired covering scope.
//! Any divergence between the real cache and the model on hit/miss,
//! returned scope, or expiry is a bug. (Capacity-bounded runs are
//! excluded — eviction policy is the cache's own business — so the
//! model cache is sized above the operation count.)

use clientmap_dns::{CacheKey, CacheLookup, EcsCache, Record, RrType};
use clientmap_net::Prefix;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert an entry for (name index, scope, ttl).
    Insert {
        name: u8,
        addr: u32,
        len: u8,
        ttl: u32,
    },
    /// Advance the clock.
    Advance { ms: u32 },
    /// Lookup (name index, /24 probe).
    Lookup { name: u8, addr: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, any::<u32>(), 8u8..=24, 1u32..600).prop_map(|(name, addr, len, ttl)| Op::Insert {
            name,
            addr,
            len,
            ttl
        }),
        (1u32..400_000).prop_map(|ms| Op::Advance { ms }),
        (0u8..3, any::<u32>()).prop_map(|(name, addr)| Op::Lookup { name, addr }),
    ]
}

fn name_of(i: u8) -> CacheKey {
    let name = match i % 3 {
        0 => "a.example",
        1 => "b.example",
        _ => "c.example",
    };
    CacheKey::new(name.parse().unwrap(), RrType::A)
}

/// The reference: a flat list of (key index, scope, expires_ms).
#[derive(Debug, Default)]
struct Model {
    entries: Vec<(u8, Prefix, u64)>,
}

impl Model {
    fn insert(&mut self, name: u8, scope: Prefix, ttl: u32, now: u64) {
        // Replace same (name, scope).
        self.entries
            .retain(|(n, s, _)| !(*n == name % 3 && *s == scope));
        self.entries
            .push((name % 3, scope, now + u64::from(ttl) * 1000));
    }

    /// Most specific live covering scope for the probe.
    fn lookup(&self, name: u8, probe: Prefix, now: u64) -> Option<Prefix> {
        self.entries
            .iter()
            .filter(|(n, s, exp)| *n == name % 3 && *exp > now && s.contains(probe))
            .map(|(_, s, _)| *s)
            .max_by_key(|s| s.len())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_agrees_with_naive_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut cache = EcsCache::new(1024); // far above op count: no eviction
        let mut model = Model::default();
        let mut now: u64 = 0;
        for op in ops {
            match op {
                Op::Insert { name, addr, len, ttl } => {
                    let scope = Prefix::new(addr, len).unwrap();
                    let rec = Record::a("x.example".parse().unwrap(), ttl, addr);
                    cache.insert(name_of(name), scope, vec![rec], ttl, now);
                    model.insert(name, scope, ttl, now);
                }
                Op::Advance { ms } => now += u64::from(ms),
                Op::Lookup { name, addr } => {
                    let probe = Prefix::slash24_of(addr);
                    let got = cache.lookup(&name_of(name), probe, now);
                    let want = model.lookup(name, probe, now);
                    match (got, want) {
                        (CacheLookup::Hit(e), Some(scope)) => {
                            prop_assert_eq!(e.scope, scope, "wrong scope at t={}", now);
                            prop_assert!(e.expires_ms > now);
                        }
                        (CacheLookup::Miss, None) => {}
                        (CacheLookup::Hit(e), None) => {
                            return Err(TestCaseError::fail(format!(
                                "phantom hit {:?} at t={now}", e.scope
                            )));
                        }
                        (CacheLookup::Miss, Some(scope)) => {
                            return Err(TestCaseError::fail(format!(
                                "missed live entry {scope} at t={now}"
                            )));
                        }
                    }
                }
            }
        }
    }
}
