//! Deterministic parallel execution for the clientmap workspace.
//!
//! The measurement pipeline is embarrassingly parallel (independent
//! probe slots, independent root traces, independent ASes) but the
//! project's contract is stronger than "parallel": same-seed runs must
//! be **byte-identical regardless of thread count**, including telemetry
//! snapshots. This crate provides the one primitive that makes both
//! hold at once:
//!
//! [`par_map`] — a work-stealing map with an **ordered reduction**.
//! Workers claim contiguous chunks of the input from a shared atomic
//! cursor (cheap dynamic load balancing, so a straggler chunk does not
//! serialize the run), but every result is placed back at its input
//! index before [`par_map`] returns. Callers fold the output vector
//! sequentially, so the reduction order is a pure function of the work
//! list — never of the interleaving. As long as the per-unit closure is
//! itself deterministic (no shared mutable state beyond commutative
//! atomics), output at `CLIENTMAP_THREADS=1` and `=32` is identical.
//!
//! Worker count resolution, in priority order:
//! 1. a scoped [`with_threads`] override (used by determinism tests —
//!    it is race-free where `set_var` is not),
//! 2. the `CLIENTMAP_THREADS` environment variable (parsed once),
//! 3. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `CLIENTMAP_THREADS`, parsed once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CLIENTMAP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The worker count [`par_map`] will use on this thread, ≥ 1.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` with the worker count pinned to `n` on the current thread.
///
/// This is the determinism-test hook: unlike mutating the environment it
/// cannot race with concurrently running tests, because the override is
/// thread-local and restored on exit (including on panic-free early
/// returns; the guard pattern also restores on unwind).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// How many input items one cursor claim hands a worker.
///
/// Deliberately a pure function of the input length — chunk boundaries
/// must not depend on the thread count, because callers key per-unit
/// state (RNG streams, session resets) off unit identity.
fn chunk_size(len: usize) -> usize {
    // Small enough that skewed units still balance across workers,
    // large enough that the cursor is not contended: at most ~256
    // claims per run.
    (len / 256).max(1)
}

/// Maps `f` over `items` on [`thread_count`] workers, returning results
/// in input order.
///
/// `f` receives `(index, &item)` and must be deterministic per item.
/// Work is claimed in chunks from an atomic cursor, so allocation of
/// items to workers varies run to run — the *output* never does. With
/// one worker (or ≤ 1 item) the map runs inline on the caller's thread,
/// spawning nothing.
///
/// A panic in any worker propagates to the caller after all workers
/// have stopped.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = chunk_size(items.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                s.spawn(move || {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            local.push((i, f(i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("par_map worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let out = with_threads(8, || par_map(&items, |i, &x| (i, x * 2)));
        for (i, (idx, v)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn identical_output_across_thread_counts() {
        let items: Vec<u64> = (0..5_000).collect();
        let run = |n| with_threads(n, || par_map(&items, |i, &x| x.wrapping_mul(i as u64 + 3)));
        let one = run(1);
        for n in [2, 3, 8, 17] {
            assert_eq!(run(n), one, "diverged at {n} threads");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn with_threads_restores_previous_override() {
        assert_eq!(with_threads(3, thread_count), 3);
        let nested = with_threads(5, || (thread_count(), with_threads(2, thread_count)));
        assert_eq!(nested, (5, 2));
    }

    #[test]
    fn override_is_thread_local() {
        with_threads(2, || {
            let outside = std::thread::spawn(thread_count).join().unwrap();
            // The spawned thread sees the env/parallelism default, not 2
            // — unless the environment happens to force 2.
            if std::env::var("CLIENTMAP_THREADS").is_err() {
                assert_eq!(
                    outside,
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                );
            }
            assert_eq!(thread_count(), 2);
        });
    }

    #[test]
    fn side_effects_cover_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..3_000).map(|_| AtomicU64::new(0)).collect();
        with_threads(6, || {
            par_map(&hits, |_, h| {
                h.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
