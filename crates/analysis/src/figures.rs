//! Figure-level analyses: PoP densities (Fig. 1), service-radius CDFs
//! (Fig. 2), per-AS fraction-active bounds (Fig. 4), and relative
//! volume distributions (Figs. 6 & 7).

use std::collections::HashMap;

use clientmap_cacheprobe::CacheProbeResult;
use clientmap_datasets::AsView;
use clientmap_net::{Asn, Rib};

use crate::stats::Ecdf;

/// One PoP's probing yield (Figure 1's per-site density).
#[derive(Debug, Clone)]
pub struct PopDensity {
    /// PoP index in the catalog.
    pub pop: usize,
    /// Site code.
    pub code: &'static str,
    /// Location.
    pub location: &'static str,
    /// Active /24 prefixes discovered at this PoP.
    pub active_slash24s: u64,
    /// Scopes that were assigned to this PoP.
    pub assigned_scopes: usize,
}

/// Figure 1: active-prefix density per probed PoP.
pub fn pop_density(result: &CacheProbeResult) -> Vec<PopDensity> {
    let pops = clientmap_sim::pop_catalog();
    let mut out: Vec<PopDensity> = result
        .bound_vantages
        .iter()
        .map(|b| PopDensity {
            pop: b.pop,
            code: pops[b.pop].code,
            location: pops[b.pop].location,
            active_slash24s: result
                .pop_hit_prefixes
                .get(&b.pop)
                .map(|s| s.num_slash24s())
                .unwrap_or(0),
            assigned_scopes: result.assigned_per_pop.get(&b.pop).copied().unwrap_or(0),
        })
        .collect();
    out.sort_by_key(|d| std::cmp::Reverse(d.active_slash24s));
    out
}

/// Figure 2: the hit-distance CDF for a PoP (km), from calibration.
pub fn service_radius_cdfs(result: &CacheProbeResult) -> HashMap<usize, Ecdf> {
    result
        .service_radii
        .hit_distances_km
        .iter()
        .map(|(pop, d)| (*pop, Ecdf::new(d.clone())))
        .collect()
}

/// One AS's point in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionActivePoint {
    /// The AS.
    pub asn: Asn,
    /// Lower-bound fraction of announced /24s active.
    pub lower: f64,
    /// Upper-bound fraction.
    pub upper: f64,
}

/// Figure 4: per-AS fraction-of-/24s-active under both bound
/// interpretations, plus the two ECDFs the figure plots.
pub fn fraction_active_cdf(
    result: &CacheProbeResult,
    rib: &Rib,
) -> (Vec<FractionActivePoint>, Ecdf, Ecdf) {
    let bounds = result.as_bounds(rib);
    let mut points: Vec<FractionActivePoint> = bounds
        .iter()
        .filter(|(_, b)| b.announced_24s > 0)
        .map(|(asn, b)| FractionActivePoint {
            asn: *asn,
            lower: b.lower_active_24s as f64 / b.announced_24s as f64,
            upper: b.upper_active_24s as f64 / b.announced_24s as f64,
        })
        .collect();
    points.sort_by_key(|p| p.asn);
    let lower = Ecdf::new(points.iter().map(|p| p.lower.min(1.0)).collect());
    let upper = Ecdf::new(points.iter().map(|p| p.upper.min(1.0)).collect());
    (points, lower, upper)
}

/// Figure 6: the ECDF of per-AS **relative volume** for a dataset
/// (each AS's share of the dataset's total activity).
pub fn relative_volume_cdf(view: &AsView) -> Ecdf {
    let total = view.total_volume();
    if total <= 0.0 {
        return Ecdf::new(Vec::new());
    }
    Ecdf::new(view.volume.values().map(|v| v / total).collect())
}

/// Figure 7: per-AS differences in relative volume between two
/// datasets, over the union of their ASes.
pub fn relative_volume_differences(a: &AsView, b: &AsView) -> Ecdf {
    let mut ases: Vec<Asn> = a.volume.keys().chain(b.volume.keys()).copied().collect();
    ases.sort_unstable();
    ases.dedup();
    Ecdf::new(
        ases.iter()
            .map(|asn| a.relative_volume(*asn) - b.relative_volume(*asn))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> clientmap_net::Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn fraction_active_bounds_ordered() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(1));
        rib.announce(p("10.2.0.0/20"), Asn(2));
        let mut r = clientmap_cacheprobe::CacheProbeResult::new(
            vec!["www.google.com".parse().unwrap()],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        r.record_hit(0, 0, p("10.1.0.0/20"), p("10.1.0.0/20"), 1);
        r.record_hit(0, 0, p("10.1.16.0/20"), p("10.1.16.0/20"), 1);
        r.record_hit(0, 0, p("10.2.0.0/24"), p("10.2.0.0/24"), 1);
        let (points, lower, upper) = fraction_active_cdf(&r, &rib);
        assert_eq!(points.len(), 2);
        for pt in &points {
            assert!(pt.lower <= pt.upper, "{pt:?}");
            assert!(pt.upper <= 1.0);
            assert!(pt.lower > 0.0);
        }
        // AS1: lower 2/256, upper 32/256. AS2: 1/16 both.
        let a1 = points.iter().find(|p| p.asn == Asn(1)).unwrap();
        assert!((a1.lower - 2.0 / 256.0).abs() < 1e-12);
        assert!((a1.upper - 32.0 / 256.0).abs() < 1e-12);
        // ECDF of lower dominates (lower values are smaller).
        assert!(lower.quantile(0.5).unwrap() <= upper.quantile(0.5).unwrap());
    }

    #[test]
    fn relative_volume_sums_to_one() {
        let v = AsView::from_volumes([(Asn(1), 10.0), (Asn(2), 30.0), (Asn(3), 60.0)]);
        let cdf = relative_volume_cdf(&v);
        let sum: f64 = cdf.samples().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(cdf.len(), 3);
    }

    #[test]
    fn volume_differences_center_when_identical() {
        let v = AsView::from_volumes([(Asn(1), 10.0), (Asn(2), 30.0)]);
        let d = relative_volume_differences(&v, &v);
        assert!(d.samples().iter().all(|x| x.abs() < 1e-15));
        // Disjoint datasets → extreme differences.
        let w = AsView::from_volumes([(Asn(3), 5.0)]);
        let d2 = relative_volume_differences(&v, &w);
        assert!(d2.samples().iter().any(|x| *x > 0.0));
        assert!(d2.samples().iter().any(|x| *x < 0.0));
    }

    #[test]
    fn empty_volume_view_gives_empty_cdf() {
        let v = AsView::from_set([Asn(1)]);
        assert!(relative_volume_cdf(&v).is_empty());
    }
}
