//! Per-domain cache-probing results (Table 5 / Appendix B.4).

use clientmap_cacheprobe::CacheProbeResult;
use clientmap_net::{Asn, PrefixSet, Rib};

/// Per-domain discovery statistics plus the pairwise containment
/// overlap the paper reports ("we treat prefixes returned by different
/// domains as matching as long as one prefix contains the other" —
/// which [`clientmap_net::PrefixSet`]'s /24 algebra implements).
#[derive(Debug, Clone)]
pub struct DomainOverlap {
    /// Domain names, aligned with all indices below.
    pub domains: Vec<String>,
    /// Total active prefixes (/24s) per domain.
    pub total_prefixes: Vec<u64>,
    /// /24s detected by *only* this domain.
    pub unique_prefixes: Vec<u64>,
    /// ASes per domain.
    pub total_ases: Vec<u64>,
    /// ASes detected by only this domain.
    pub unique_ases: Vec<u64>,
    /// `pairwise[i][j]`: /24s of domain `i` also covered by domain `j`
    /// (diagonal = total).
    pub pairwise: Vec<Vec<u64>>,
}

/// Builds Table 5 from a probing run.
pub fn domain_overlap(result: &CacheProbeResult, rib: &Rib) -> DomainOverlap {
    let n = result.domains.len();
    let sets: Vec<PrefixSet> = (0..n).map(|d| result.active_set_for_domain(d)).collect();
    let as_sets: Vec<Vec<Asn>> = sets
        .iter()
        .map(|s| {
            let mut v: Vec<Asn> = s
                .prefixes()
                .iter()
                .flat_map(|p| rib.origins_within(*p))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    let total_prefixes: Vec<u64> = sets.iter().map(|s| s.num_slash24s()).collect();
    let total_ases: Vec<u64> = as_sets.iter().map(|s| s.len() as u64).collect();

    // Unique prefixes: /24s in domain i's set covered by no other set.
    let mut unique_prefixes = vec![0u64; n];
    for i in 0..n {
        let mut others = PrefixSet::new();
        for (j, s) in sets.iter().enumerate() {
            if j != i {
                others.extend(s);
            }
        }
        unique_prefixes[i] = sets[i].num_slash24s() - sets[i].intersection_slash24s(&others);
    }
    let mut unique_ases = vec![0u64; n];
    for i in 0..n {
        let mut others: Vec<Asn> = as_sets
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .flat_map(|(_, s)| s.iter().copied())
            .collect();
        others.sort_unstable();
        others.dedup();
        unique_ases[i] = as_sets[i]
            .iter()
            .filter(|a| others.binary_search(a).is_err())
            .count() as u64;
    }

    let pairwise = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        total_prefixes[i]
                    } else {
                        sets[i].intersection_slash24s(&sets[j])
                    }
                })
                .collect()
        })
        .collect();

    DomainOverlap {
        domains: result.domains.iter().map(|d| d.to_string()).collect(),
        total_prefixes,
        unique_prefixes,
        total_ases,
        unique_ases,
        pairwise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> clientmap_net::Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn overlap_accounting() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), Asn(1));
        rib.announce(p("11.0.0.0/8"), Asn(2));
        let mut r = clientmap_cacheprobe::CacheProbeResult::new(
            vec![
                "www.google.com".parse().unwrap(),
                "www.wikipedia.org".parse().unwrap(),
            ],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        // Google: fine scopes in 10/8 and 11/8.
        r.record_hit(0, 0, p("10.1.0.0/24"), p("10.1.0.0/24"), 1);
        r.record_hit(0, 0, p("11.1.0.0/24"), p("11.1.0.0/24"), 1);
        // Wikipedia: one coarse scope containing google's first hit.
        r.record_hit(1, 0, p("10.1.0.0/16"), p("10.1.0.0/16"), 1);

        let t5 = domain_overlap(&r, &rib);
        assert_eq!(t5.total_prefixes, vec![2, 256]);
        // Google's 10.1.0.0/24 is inside wikipedia's /16 ⇒ only the 11/8
        // hit is unique; wikipedia has 255 /24s not seen by google.
        assert_eq!(t5.unique_prefixes, vec![1, 255]);
        assert_eq!(t5.total_ases, vec![2, 1]);
        assert_eq!(t5.unique_ases, vec![1, 0]);
        // Pairwise: google ∩ wikipedia = 1 /24 (containment counts).
        assert_eq!(t5.pairwise[0][1], 1);
        assert_eq!(t5.pairwise[1][0], 1);
        assert_eq!(t5.pairwise[0][0], 2);
    }
}
