//! Cluster-quality metrics for the predictive-probing ablation.
//!
//! The clustered planner trades probes for extrapolated copies; this
//! module quantifies what the trade costs. Two views:
//!
//! * **End-to-end** — [`verdict_precision_recall`] compares the /24
//!   verdict table of a clustered sweep against an exhaustive reference
//!   on one target verdict (the differential suite and the CI ablation
//!   gate pin `Hit` precision/recall this way).
//! * **In-sweep** — [`extrapolation_agreement`] and
//!   [`confidence_summary`] read a clustered sweep's own
//!   [`SweepSnapshot`]: how often the copied verdicts agreed with what
//!   the member slots held in the prior sweep, and how confident the
//!   planner was in its copies. These need no reference run, so the
//!   report can print them for any clustered sweep.

use std::collections::BTreeSet;

use clientmap_cacheprobe::verdict_rank;
use clientmap_store::{SweepSnapshot, Verdict, VerdictTable};

/// Binary precision/recall tallies over a target verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecisionRecall {
    /// /24s carrying the target verdict in both tables.
    pub true_positives: u64,
    /// /24s the observed table claims but the reference does not.
    pub false_positives: u64,
    /// /24s the reference carries but the observed table missed.
    pub false_negatives: u64,
}

impl PrecisionRecall {
    /// Tallies one (observed, reference) verdict pair.
    pub fn tally(&mut self, observed: bool, reference: bool) {
        match (observed, reference) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, true) => self.false_negatives += 1,
            (false, false) => {}
        }
    }

    /// `TP / (TP + FP)`; 1.0 when nothing was claimed (a sweep that
    /// claims nothing tells no lies).
    pub fn precision(&self) -> f64 {
        let claimed = self.true_positives + self.false_positives;
        if claimed == 0 {
            1.0
        } else {
            self.true_positives as f64 / claimed as f64
        }
    }

    /// `TP / (TP + FN)`; 1.0 when the reference is empty.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }
}

/// Precision/recall of `observed` against `reference` on `target`,
/// over every /24 either table measured.
pub fn verdict_precision_recall(
    observed: &VerdictTable,
    reference: &VerdictTable,
    target: Verdict,
) -> PrecisionRecall {
    let mut indexes: BTreeSet<u32> = observed.iter_measured().map(|(i, _)| i).collect();
    indexes.extend(reference.iter_measured().map(|(i, _)| i));
    let mut pr = PrecisionRecall::default();
    for idx in indexes {
        pr.tally(observed.get(idx) == target, reference.get(idx) == target);
    }
    pr
}

/// How a clustered sweep's extrapolated `Hit` verdicts compare against
/// what the member slots held in the *prior* sweep — the self-contained
/// agreement measure the report prints without a reference run. Only
/// tags whose member was measured last sweep participate (a copy onto a
/// never-measured slot has nothing to disagree with).
pub fn extrapolation_agreement(snapshot: &SweepSnapshot) -> PrecisionRecall {
    let mut pr = PrecisionRecall::default();
    for (key, tag) in &snapshot.confidence {
        if tag.prior_verdict == 0 {
            continue;
        }
        let extrapolated = snapshot.records.get(key).map_or(0, verdict_rank);
        pr.tally(
            extrapolated == Verdict::Hit as u8,
            tag.prior_verdict == Verdict::Hit as u8,
        );
    }
    pr
}

/// Distribution summary of a clustered sweep's confidence tags.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConfidenceSummary {
    /// Extrapolated slots (tags in the snapshot).
    pub tagged: u64,
    /// Weakest tag (0 when nothing is tagged).
    pub min: u8,
    /// Strongest tag.
    pub max: u8,
    /// Mean tag on the raw `1..=255` scale.
    pub mean: f64,
}

/// Summarizes the confidence column of a clustered sweep's snapshot.
pub fn confidence_summary(snapshot: &SweepSnapshot) -> ConfidenceSummary {
    let mut s = ConfidenceSummary::default();
    let mut total = 0u64;
    for tag in snapshot.confidence.values() {
        s.tagged += 1;
        total += u64::from(tag.confidence);
        s.max = s.max.max(tag.confidence);
        s.min = if s.min == 0 {
            tag.confidence
        } else {
            s.min.min(tag.confidence)
        };
    }
    if s.tagged > 0 {
        s.mean = total as f64 / s.tagged as f64;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_store::{ConfidenceRecord, HitEvent, ScopeRecord};

    #[test]
    fn precision_recall_over_verdict_tables() {
        let mut reference = VerdictTable::new();
        let mut observed = VerdictTable::new();
        reference.record(1, Verdict::Hit);
        reference.record(2, Verdict::Hit);
        reference.record(3, Verdict::Miss);
        observed.record(1, Verdict::Hit); // TP
        observed.record(3, Verdict::Hit); // FP (reference says Miss)
        observed.record(4, Verdict::Miss); // no target on either side
        // idx 2: FN — reference Hit, observed unmeasured.
        let pr = verdict_precision_recall(&observed, &reference, Verdict::Hit);
        assert_eq!(
            pr,
            PrecisionRecall {
                true_positives: 1,
                false_positives: 1,
                false_negatives: 1,
            }
        );
        assert_eq!(pr.precision(), 0.5);
        assert_eq!(pr.recall(), 0.5);

        // Degenerate cases never divide by zero.
        let empty = PrecisionRecall::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn agreement_reads_the_snapshot_alone() {
        let mut snap = SweepSnapshot::new(7, 1);
        let hit_rec = ScopeRecord {
            attempts: 3,
            hit_events: vec![HitEvent {
                resp_addr: 0x0A000000,
                resp_len: 24,
                remaining_ttl: 9,
            }],
            ..ScopeRecord::default()
        };
        let miss_rec = ScopeRecord {
            attempts: 3,
            ..ScopeRecord::default()
        };
        // TP: copied Hit onto a slot that was Hit last sweep.
        snap.records.insert((0, 0, 0x0A000000, 24), hit_rec.clone());
        snap.confidence.insert(
            (0, 0, 0x0A000000, 24),
            ConfidenceRecord {
                rep: (0, 0, 0x0A000100, 24),
                confidence: 200,
                prior_verdict: 4,
            },
        );
        // FP: copied Hit onto a slot that was Miss last sweep.
        snap.records.insert((0, 0, 0x0A000200, 24), hit_rec);
        snap.confidence.insert(
            (0, 0, 0x0A000200, 24),
            ConfidenceRecord {
                rep: (0, 0, 0x0A000100, 24),
                confidence: 150,
                prior_verdict: 2,
            },
        );
        // FN: copied Miss onto a slot that was Hit last sweep.
        snap.records.insert((0, 0, 0x0A000300, 24), miss_rec);
        snap.confidence.insert(
            (0, 0, 0x0A000300, 24),
            ConfidenceRecord {
                rep: (0, 0, 0x0A000400, 24),
                confidence: 100,
                prior_verdict: 4,
            },
        );
        // Ignored: tag with no prior verdict (cold extrapolation).
        snap.confidence.insert(
            (0, 0, 0x0A000500, 24),
            ConfidenceRecord {
                rep: (0, 0, 0x0A000400, 24),
                confidence: 50,
                prior_verdict: 0,
            },
        );
        let pr = extrapolation_agreement(&snap);
        assert_eq!(
            pr,
            PrecisionRecall {
                true_positives: 1,
                false_positives: 1,
                false_negatives: 1,
            }
        );

        let s = confidence_summary(&snap);
        assert_eq!(s.tagged, 4);
        assert_eq!(s.min, 50);
        assert_eq!(s.max, 200);
        assert_eq!(s.mean, 125.0);
    }
}
