//! Relative activity ranking from cache-hit rates — the paper's §6
//! future-work direction, implemented.
//!
//! A scope probed `a` times with `h` hits has an observed hit rate
//! `r = h/a`. Under the Poisson model, one cache *pool*'s entry is live
//! with probability `p = 1 − exp(−λ·TTL/K)`; a probe with `R` redundant
//! queries samples up to `R` of the `K` pools, so
//! `r ≈ 1 − (1 − p)^{E}` with `E = K·(1−((K−1)/K)^R)` effective pools.
//! Inverting gives a per-scope **activity estimate**
//! `λ̂ = −(K/TTL)·ln(1 − (1 − (1−r)^{1/E}))⁻¹`… in practice the clean
//! invertible form is `p̂ = 1 − (1−r)^{1/E}`, `λ̂ = −K·ln(1−p̂)/TTL`.
//!
//! The estimate is *relative*: cross-prefix comparisons share the same
//! unknown constants (per-user query rate, Google share), so ranking by
//! `λ̂` ranks prefixes by client activity — which the `repro ranking`
//! harness validates against the simulation's ground-truth rates.

use std::collections::HashMap;

use clientmap_cacheprobe::CacheProbeResult;
use clientmap_net::Prefix;

/// One ranked scope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityEstimate {
    /// The query scope.
    pub scope: Prefix,
    /// Probe attempts across the run.
    pub attempts: u64,
    /// Observed hit rate.
    pub hit_rate: f64,
    /// Estimated Google-bound query rate (relative units, 1/s).
    pub lambda_hat: f64,
}

/// Inverts a hit rate into a rate estimate.
///
/// `pools` is the number of independent caches per PoP, `redundancy`
/// the queries per probe event, `ttl_secs` the record TTL.
pub fn invert_hit_rate(hit_rate: f64, pools: u32, redundancy: u32, ttl_secs: u32) -> f64 {
    let k = f64::from(pools.max(1));
    // Effective distinct pools sampled by R draws with replacement.
    let e = k * (1.0 - ((k - 1.0) / k).powi(redundancy.max(1) as i32));
    let r = hit_rate.clamp(0.0, 0.999_999);
    let p_pool = 1.0 - (1.0 - r).powf(1.0 / e);
    -k * (1.0 - p_pool).ln() / f64::from(ttl_secs.max(1))
}

/// Per-scope activity estimates from a probing run, for one domain
/// (`domain` indexes `result.domains`). Scopes never probed are absent.
pub fn activity_estimates(
    result: &CacheProbeResult,
    domain: usize,
    pools: u32,
    redundancy: u32,
    ttl_secs: u32,
) -> Vec<ActivityEstimate> {
    let mut out: Vec<ActivityEstimate> = result
        .probe_counts
        .iter()
        .filter(|((d, _), _)| *d == domain)
        .map(|((_, scope), c)| ActivityEstimate {
            scope: *scope,
            attempts: c.attempts,
            hit_rate: c.hit_rate(),
            lambda_hat: invert_hit_rate(c.hit_rate(), pools, redundancy, ttl_secs),
        })
        .collect();
    out.sort_by(|a, b| {
        b.lambda_hat
            .total_cmp(&a.lambda_hat)
            .then_with(|| a.scope.cmp(&b.scope))
    });
    out
}

/// Spearman rank correlation between two paired samples. Returns
/// `None` for degenerate inputs (< 3 pairs or zero variance).
pub fn spearman(pairs: &[(f64, f64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 3 {
        return None;
    }
    let rank = |values: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|a, b| values[*a].total_cmp(&values[*b]));
        let mut ranks = vec![0.0; values.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks over ties.
            let mut j = i;
            while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for k in i..=j {
                ranks[idx[k]] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let rx = rank(pairs.iter().map(|p| p.0).collect());
    let ry = rank(pairs.iter().map(|p| p.1).collect());
    let mean = (n as f64 + 1.0) / 2.0;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let a = rx[i] - mean;
        let b = ry[i] - mean;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx <= 0.0 || dy <= 0.0 {
        return None;
    }
    Some(num / (dx * dy).sqrt())
}

/// Joins activity estimates against an external per-scope measure
/// (e.g. ground truth in validation) and returns the Spearman rank
/// correlation.
pub fn rank_agreement(estimates: &[ActivityEstimate], truth: &HashMap<Prefix, f64>) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = estimates
        .iter()
        .filter_map(|e| truth.get(&e.scope).map(|t| (e.lambda_hat, *t)))
        .collect();
    spearman(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_monotone_and_zero_at_zero() {
        assert_eq!(invert_hit_rate(0.0, 4, 5, 300), 0.0);
        let lo = invert_hit_rate(0.1, 4, 5, 300);
        let mid = invert_hit_rate(0.5, 4, 5, 300);
        let hi = invert_hit_rate(0.9, 4, 5, 300);
        assert!(0.0 < lo && lo < mid && mid < hi, "{lo} {mid} {hi}");
        // Saturated rates stay finite.
        assert!(invert_hit_rate(1.0, 4, 5, 300).is_finite());
    }

    #[test]
    fn inversion_recovers_known_lambda() {
        // Forward-simulate the model, then invert.
        let (k, r, ttl) = (4.0f64, 5u32, 300.0f64);
        for lambda in [1e-4, 1e-3, 1e-2] {
            let p = 1.0 - (-lambda * ttl / k).exp();
            let e = k * (1.0 - ((k - 1.0) / k).powi(r as i32));
            let hit_rate = 1.0 - (1.0 - p).powf(e);
            let lhat = invert_hit_rate(hit_rate, 4, r, 300);
            assert!(
                (lhat - lambda).abs() < 0.05 * lambda,
                "λ {lambda}: λ̂ {lhat}"
            );
        }
    }

    #[test]
    fn spearman_basics() {
        let inc: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((spearman(&inc).unwrap() - 1.0).abs() < 1e-12);
        let dec: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert!((spearman(&dec).unwrap() + 1.0).abs() < 1e-12);
        assert!(spearman(&inc[..2]).is_none());
        let flat: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.0)).collect();
        assert!(spearman(&flat).is_none());
    }

    #[test]
    fn spearman_handles_ties() {
        let pairs = vec![(1.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)];
        let rho = spearman(&pairs).unwrap();
        assert!(rho > 0.8, "rho {rho}");
    }

    #[test]
    fn estimates_sorted_by_activity() {
        let mut result = clientmap_cacheprobe::CacheProbeResult::new(
            vec!["www.google.com".parse().unwrap()],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        let quiet: Prefix = "10.1.0.0/20".parse().unwrap();
        let busy: Prefix = "10.2.0.0/20".parse().unwrap();
        result.probe_counts.insert(
            (0, quiet),
            clientmap_cacheprobe::ProbeCount {
                attempts: 10,
                hits: 1,
                ..Default::default()
            },
        );
        result.probe_counts.insert(
            (0, busy),
            clientmap_cacheprobe::ProbeCount {
                attempts: 10,
                hits: 9,
                ..Default::default()
            },
        );
        let est = activity_estimates(&result, 0, 4, 5, 300);
        assert_eq!(est.len(), 2);
        assert_eq!(est[0].scope, busy);
        assert!(est[0].lambda_hat > est[1].lambda_hat);
        // Ground-truth agreement.
        let truth: HashMap<Prefix, f64> = [(quiet, 0.001), (busy, 0.1)].into_iter().collect();
        // Only 2 points → Spearman undefined; add a third.
        let mid: Prefix = "10.3.0.0/20".parse().unwrap();
        result.probe_counts.insert(
            (0, mid),
            clientmap_cacheprobe::ProbeCount {
                attempts: 10,
                hits: 5,
                ..Default::default()
            },
        );
        let est = activity_estimates(&result, 0, 4, 5, 300);
        let mut truth = truth;
        truth.insert(mid, 0.01);
        let rho = rank_agreement(&est, &truth).unwrap();
        assert!(rho > 0.99, "rho {rho}");
    }
}
