//! # clientmap-analysis
//!
//! The validation and cross-comparison layer (paper §4 and the
//! appendices): every table and figure of the evaluation is a function
//! in this crate over a [`clientmap_datasets::DatasetBundle`] (plus the
//! raw technique output where needed):
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 (prefix overlap) | [`overlap::prefix_matrix`] |
//! | Table 2 (scope stability) | [`scope_stability_table`] |
//! | Table 3 (AS overlap) | [`overlap::as_matrix`] |
//! | Table 4 (volume coverage) | [`overlap::volume_matrix`] |
//! | Table 5 (per-domain) | [`domain_overlap`] |
//! | Figure 1 (PoP densities) | [`pop_density`] |
//! | Figure 2 (service radii) | [`service_radius_cdfs`] |
//! | Figure 3 (country coverage) | [`country_coverage`] |
//! | Figure 4 (fraction active) | [`fraction_active_cdf`] |
//! | Figure 6/7 (relative volume) | [`relative_volume_cdf`], [`relative_volume_differences`] |
//! | §4 headlines | [`dns_http_proxy`], [`groundtruth_recall`], [`scope_precision`] |
//!
//! This is the only layer allowed to read the world's ground truth
//! (for per-AS countries and the like) — the techniques themselves see
//! only public interfaces.

#![warn(missing_docs)]

pub mod cluster;
pub mod combine;
pub mod overlap;
pub mod ranking;
pub mod render;
pub mod stats;
pub mod telemetry;

mod country;
mod domains;
mod figures;
mod headlines;

pub use cluster::{
    confidence_summary, extrapolation_agreement, verdict_precision_recall, ConfidenceSummary,
    PrecisionRecall,
};
pub use country::{country_coverage, CountryCoverage};
pub use domains::{domain_overlap, DomainOverlap};
pub use figures::{
    fraction_active_cdf, pop_density, relative_volume_cdf, relative_volume_differences,
    service_radius_cdfs, FractionActivePoint, PopDensity,
};
pub use headlines::{
    dns_http_proxy, groundtruth_recall, scope_precision, scope_stability_table, DnsHttpProxy,
    ScopeStabilityRow,
};
