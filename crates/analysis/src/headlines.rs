//! The §4 headline validations and Table 2.

use clientmap_cacheprobe::CacheProbeResult;
use clientmap_datasets::{DatasetBundle, PrefixView};

use crate::stats::pct;

/// "DNS activity is a good proxy for web client activity" (§4):
/// cross-coverage of the CDN HTTP log and the Traffic Manager ECS log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnsHttpProxy {
    /// Percent of ECS-DNS query volume from prefixes that also sent
    /// HTTP to the CDN (paper: 97.2%).
    pub dns_volume_in_http_prefixes_pct: f64,
    /// Percent of HTTP volume from prefixes seen in ECS queries
    /// (paper: 92%).
    pub http_volume_in_ecs_prefixes_pct: f64,
}

/// Computes the proxy-validation headline.
pub fn dns_http_proxy(bundle: &DatasetBundle) -> DnsHttpProxy {
    DnsHttpProxy {
        dns_volume_in_http_prefixes_pct: pct(
            bundle.cloud_ecs.volume_in(&bundle.ms_clients),
            bundle.cloud_ecs.total_volume(),
        ),
        http_volume_in_ecs_prefixes_pct: pct(
            bundle.ms_clients.volume_in(&bundle.cloud_ecs),
            bundle.ms_clients.total_volume(),
        ),
    }
}

/// "Cache probing recovers most DNS activity" (§4): the fraction of
/// ground-truth ECS /24s (Traffic Manager log for the Microsoft
/// domain) that cache probing of that same domain uncovered
/// (paper: 91%).
pub fn groundtruth_recall(result: &CacheProbeResult, cloud_ecs: &PrefixView) -> f64 {
    let Some(ms_idx) = result
        .domains
        .iter()
        .position(|d| d.to_string().contains("msvalidation"))
    else {
        return 0.0;
    };
    let probed = PrefixView::from_set(result.active_set_for_domain(ms_idx));
    let covered = cloud_ecs.intersection_slash24s(&probed);
    covered as f64 / cloud_ecs.num_slash24s().max(1) as f64
}

/// "Few false positives" (§4): the fraction of cache-probing hit
/// scopes containing at least one /24 the CDN saw clients in
/// (paper: 99.1%).
pub fn scope_precision(result: &CacheProbeResult, ms_clients: &PrefixView) -> f64 {
    let scopes = result.hit_prefixes();
    if scopes.is_empty() {
        return 0.0;
    }
    let confirmed = scopes
        .iter()
        .filter(|s| ms_clients.set.intersects(**s))
        .count();
    confirmed as f64 / scopes.len() as f64
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct ScopeStabilityRow {
    /// Domain label.
    pub domain: String,
    /// Hits whose response scope equals the query scope.
    pub exact: u64,
    /// Hits within 2 bits.
    pub within2: u64,
    /// Hits within 4 bits.
    pub within4: u64,
    /// All hits for the domain.
    pub total: u64,
}

impl ScopeStabilityRow {
    /// Percent columns as the paper prints them.
    pub fn pcts(&self) -> (f64, f64, f64) {
        let t = self.total as f64;
        (
            pct(self.exact as f64, t),
            pct(self.within2 as f64, t),
            pct(self.within4 as f64, t),
        )
    }
}

/// Table 2: per-domain and overall response-scope stability.
pub fn scope_stability_table(result: &CacheProbeResult) -> Vec<ScopeStabilityRow> {
    let mut rows: Vec<ScopeStabilityRow> = result
        .domains
        .iter()
        .enumerate()
        .map(|(d, name)| {
            let (exact, within2, within4, total) = result.scope_stability(d);
            ScopeStabilityRow {
                domain: name.to_string(),
                exact,
                within2,
                within4,
                total,
            }
        })
        .collect();
    let overall = ScopeStabilityRow {
        domain: "Overall".to_string(),
        exact: rows.iter().map(|r| r.exact).sum(),
        within2: rows.iter().map(|r| r.within2).sum(),
        within4: rows.iter().map(|r| r.within4).sum(),
        total: rows.iter().map(|r| r.total).sum(),
    };
    rows.push(overall);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_net::{Prefix, PrefixSet};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn proxy_headline_math() {
        let ms_clients =
            PrefixView::from_volumes([(p("10.1.0.0/24"), 92.0), (p("10.2.0.0/24"), 8.0)]);
        let cloud_ecs =
            PrefixView::from_volumes([(p("10.1.0.0/24"), 50.0), (p("10.3.0.0/24"), 50.0)]);
        let bundle = fake_bundle(ms_clients, cloud_ecs);
        let proxy = dns_http_proxy(&bundle);
        assert!((proxy.dns_volume_in_http_prefixes_pct - 50.0).abs() < 1e-9);
        assert!((proxy.http_volume_in_ecs_prefixes_pct - 92.0).abs() < 1e-9);
    }

    /// A bundle with only the fields the headline functions read.
    fn fake_bundle(ms_clients: PrefixView, cloud_ecs: PrefixView) -> DatasetBundle {
        DatasetBundle {
            cache_probing: PrefixView::default(),
            dns_logs: PrefixView::default(),
            ms_clients,
            ms_resolvers: PrefixView::default(),
            cloud_ecs,
            apnic: Default::default(),
            cache_probing_as: Default::default(),
            dns_logs_as: Default::default(),
            ms_clients_as: Default::default(),
            ms_resolvers_as: Default::default(),
            cloud_ecs_as: Default::default(),
        }
    }

    fn probe_with_ms_hits() -> CacheProbeResult {
        let mut r = clientmap_cacheprobe::CacheProbeResult::new(
            vec![
                "www.google.com".parse().unwrap(),
                "cdn.msvalidation.example".parse().unwrap(),
            ],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        r.record_hit(1, 0, p("10.1.0.0/23"), p("10.1.0.0/23"), 1);
        r.record_hit(0, 0, p("10.9.0.0/24"), p("10.9.0.0/24"), 1);
        r
    }

    #[test]
    fn recall_uses_ms_domain_only() {
        let r = probe_with_ms_hits();
        // Ground truth: 3 ECS /24s, two inside the probed /23.
        let ecs = PrefixView::from_volumes([
            (p("10.1.0.0/24"), 1.0),
            (p("10.1.1.0/24"), 1.0),
            (p("10.5.0.0/24"), 1.0),
        ]);
        let recall = groundtruth_recall(&r, &ecs);
        assert!((recall - 2.0 / 3.0).abs() < 1e-12, "{recall}");
        // Without the MS domain in the run: 0.
        let other = clientmap_cacheprobe::CacheProbeResult::new(
            vec!["www.google.com".parse().unwrap()],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        assert_eq!(groundtruth_recall(&other, &ecs), 0.0);
    }

    #[test]
    fn precision_counts_confirmed_scopes() {
        let r = probe_with_ms_hits();
        let ms = PrefixView::from_set(PrefixSet::from_prefixes([p("10.1.0.0/24")]));
        // Two hit scopes; only the /23 intersects the CDN log.
        let precision = scope_precision(&r, &ms);
        assert!((precision - 0.5).abs() < 1e-12, "{precision}");
    }

    #[test]
    fn stability_table_has_overall_row() {
        let mut r = probe_with_ms_hits();
        r.record_hit(0, 0, p("10.8.0.0/20"), p("10.8.0.0/22"), 1);
        let rows = scope_stability_table(&r);
        assert_eq!(rows.len(), 3);
        let overall = rows.last().unwrap();
        assert_eq!(overall.domain, "Overall");
        assert_eq!(overall.total, 3);
        assert_eq!(overall.exact, 2);
        assert_eq!(overall.within2, 3);
        let (e, w2, w4) = overall.pcts();
        assert!(e < w2 && (w2 - w4).abs() < 1e-9);
    }
}
