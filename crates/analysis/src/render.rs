//! Plain-text table rendering for reports and the `repro` harness.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a header row.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len().max(r.len()), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                // Right-align numeric-looking cells, left-align text.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".,%KM-+()".contains(ch))
                    && c.chars().any(|ch| ch.is_ascii_digit());
                if numeric {
                    let _ = write!(out, "{}{}", " ".repeat(pad), c);
                } else {
                    let _ = write!(out, "{}{}", c, " ".repeat(pad));
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

/// Formats a count with K/M suffixes the way the paper's tables do
/// (e.g. `9712.2K`).
pub fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1.0e6)
    } else if n >= 10_000 {
        format!("{:.1}K", n as f64 / 1.0e3)
    } else {
        n.to_string()
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "count"]);
        t.row(["alpha", "5"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned in their column.
        assert!(lines[2].ends_with("    5"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(fmt_count(9_712_200), "9712.2K");
        assert_eq!(fmt_count(692_200), "692.2K");
        assert_eq!(fmt_count(36_989), "37.0K");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(15_527_909), "15.5M");
        assert_eq!(fmt_pct(95.24), "95.2%");
    }
}
