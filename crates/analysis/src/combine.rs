//! Combining the two techniques at ⟨region, AS⟩ granularity — the
//! paper's §6 first future-work direction, implemented.
//!
//! The difficulty the paper names: cache probing measures **client
//! prefix** activity while DNS logs measures **recursive resolver**
//! activity. Its proposed join: "since users are often physically
//! close to and in the same AS as their recursive resolver, we can
//! estimate activity at the ⟨region, AS⟩ granularity and associate
//! that activity with active prefixes in that ⟨region, AS⟩."
//!
//! [`combine_region_as`] does exactly that: each resolver's Chromium
//! count lands in the ⟨country, AS⟩ cell given by public data (the
//! geolocation database and the RIB), and the cell's activity is
//! spread over the cache-probing-active prefixes mapped to the same
//! cell, yielding a per-prefix activity estimate neither technique
//! could produce alone.

use std::collections::HashMap;

use clientmap_cacheprobe::CacheProbeResult;
use clientmap_chromium::DnsLogsResult;
use clientmap_geo::{CountryCode, GeoDb};
use clientmap_net::{Asn, Prefix, Rib};

/// One ⟨country, AS⟩ cell of the combined estimate.
#[derive(Debug, Clone)]
pub struct RegionAsCell {
    /// Country (from the resolver's / prefixes' geolocation entries).
    pub country: CountryCode,
    /// The AS.
    pub asn: Asn,
    /// Chromium probes attributed to this cell's resolvers.
    pub resolver_probes: f64,
    /// Cache-probing-active prefixes mapped into the cell.
    pub active_prefixes: Vec<Prefix>,
    /// Active /24 count across those prefixes.
    pub active_24s: u64,
}

impl RegionAsCell {
    /// The combined per-/24 activity estimate: the cell's resolver
    /// activity spread uniformly over its active /24s (`None` if the
    /// cell has resolver signal but no located active prefixes — the
    /// join's residual, which the paper anticipates).
    pub fn per_slash24_activity(&self) -> Option<f64> {
        if self.active_24s == 0 {
            None
        } else {
            Some(self.resolver_probes / self.active_24s as f64)
        }
    }
}

fn empty_cell(country: CountryCode, asn: Asn) -> RegionAsCell {
    RegionAsCell {
        country,
        asn,
        resolver_probes: 0.0,
        active_prefixes: Vec::new(),
        active_24s: 0,
    }
}

/// Joins the two techniques on ⟨country, AS⟩ through public data only
/// (geolocation DB + RIB).
pub fn combine_region_as(
    cache_probe: &CacheProbeResult,
    dns_logs: &DnsLogsResult,
    geodb: &GeoDb,
    rib: &Rib,
) -> Vec<RegionAsCell> {
    let mut cells: HashMap<(CountryCode, Asn), RegionAsCell> = HashMap::new();

    // Resolver side: country from the geo DB, AS from the RIB.
    for r in &dns_logs.resolvers {
        let Some(asn) = rib.origin_of_addr(r.resolver_addr) else {
            continue;
        };
        let Some(country) = geodb.lookup_addr(r.resolver_addr).map(|e| e.country) else {
            continue;
        };
        let cell = cells
            .entry((country, asn))
            .or_insert_with(|| empty_cell(country, asn));
        cell.resolver_probes += r.probes;
    }

    // Prefix side: every active scope mapped to its ⟨country, AS⟩.
    for scope in cache_probe.hit_prefixes() {
        let Some(asn) = rib.origin_of_prefix(scope) else {
            continue;
        };
        let Some(country) = geodb
            .lookup(scope)
            .or_else(|| geodb.lookup_addr(scope.addr()))
            .map(|e| e.country)
        else {
            continue;
        };
        let cell = cells
            .entry((country, asn))
            .or_insert_with(|| empty_cell(country, asn));
        cell.active_24s += scope.num_slash24s();
        cell.active_prefixes.push(scope);
    }

    let mut out: Vec<RegionAsCell> = cells.into_values().collect();
    out.sort_by(|a, b| {
        b.resolver_probes
            .total_cmp(&a.resolver_probes)
            .then_with(|| a.asn.cmp(&b.asn))
            .then_with(|| a.country.cmp(&b.country))
    });
    out
}

/// Summary statistics of a combined estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombineSummary {
    /// Cells with both resolver signal and active prefixes (joined).
    pub joined_cells: usize,
    /// Cells with resolver signal only.
    pub resolver_only: usize,
    /// Cells with active prefixes only.
    pub prefix_only: usize,
    /// Fraction of resolver activity that landed in joined cells.
    pub joined_activity_fraction: f64,
}

/// Summarises how well the join worked.
pub fn summarize(cells: &[RegionAsCell]) -> CombineSummary {
    let mut joined = 0;
    let mut resolver_only = 0;
    let mut prefix_only = 0;
    let mut joined_activity = 0.0;
    let mut total_activity = 0.0;
    for c in cells {
        total_activity += c.resolver_probes;
        match (c.resolver_probes > 0.0, c.active_24s > 0) {
            (true, true) => {
                joined += 1;
                joined_activity += c.resolver_probes;
            }
            (true, false) => resolver_only += 1,
            (false, true) => prefix_only += 1,
            (false, false) => {}
        }
    }
    CombineSummary {
        joined_cells: joined,
        resolver_only,
        prefix_only,
        joined_activity_fraction: if total_activity > 0.0 {
            joined_activity / total_activity
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_chromium::ResolverActivity;
    use clientmap_geo::{GeoAccuracyModel, GeoDbBuilder, PrefixKind};
    use clientmap_net::GeoCoord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn fixture() -> (CacheProbeResult, DnsLogsResult, GeoDb, Rib) {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(100));
        rib.announce(p("10.2.0.0/16"), Asn(200));

        let mut gb = GeoDbBuilder::new();
        let us = "US".parse().unwrap();
        let br = "BR".parse().unwrap();
        let nyc = GeoCoord::new(40.7, -74.0).unwrap();
        let sao = GeoCoord::new(-23.5, -46.6).unwrap();
        gb.add(p("10.1.0.0/16"), nyc, us, PrefixKind::Eyeball);
        gb.add(p("10.2.0.0/16"), sao, br, PrefixKind::Eyeball);
        let model = GeoAccuracyModel {
            eyeball_max_err_km: 0.001,
            ..GeoAccuracyModel::default()
        };
        let geodb = gb.build(&model, &mut StdRng::seed_from_u64(1));

        let mut probe = CacheProbeResult::new(
            vec!["www.google.com".parse().unwrap()],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        probe.record_hit(0, 0, p("10.1.0.0/22"), p("10.1.0.0/22"), 1);
        probe.record_hit(0, 0, p("10.1.4.0/24"), p("10.1.4.0/24"), 1);

        let dns = DnsLogsResult {
            resolvers: vec![
                ResolverActivity {
                    resolver_addr: p("10.1.0.0/24").addr() | 53,
                    probes: 90.0,
                },
                ResolverActivity {
                    resolver_addr: p("10.2.0.0/24").addr() | 53,
                    probes: 10.0,
                },
            ],
            rejected_noise_records: 0,
            records_examined: 2,
        };
        (probe, dns, geodb, rib)
    }

    #[test]
    fn join_produces_cells_and_spreads_activity() {
        let (probe, dns, geodb, rib) = fixture();
        let cells = combine_region_as(&probe, &dns, &geodb, &rib);
        assert_eq!(cells.len(), 2);
        // AS100/US: 90 probes over 5 active /24s.
        let us_cell = cells.iter().find(|c| c.asn == Asn(100)).unwrap();
        assert_eq!(us_cell.country.as_str(), "US");
        assert_eq!(us_cell.active_24s, 5);
        assert!((us_cell.per_slash24_activity().unwrap() - 18.0).abs() < 1e-9);
        // AS200/BR: resolver signal but no active prefix located.
        let br_cell = cells.iter().find(|c| c.asn == Asn(200)).unwrap();
        assert_eq!(br_cell.active_24s, 0);
        assert!(br_cell.per_slash24_activity().is_none());
        // Sorted by activity.
        assert_eq!(cells[0].asn, Asn(100));
    }

    #[test]
    fn summary_accounting() {
        let (probe, dns, geodb, rib) = fixture();
        let cells = combine_region_as(&probe, &dns, &geodb, &rib);
        let s = summarize(&cells);
        assert_eq!(s.joined_cells, 1);
        assert_eq!(s.resolver_only, 1);
        assert_eq!(s.prefix_only, 0);
        assert!((s.joined_activity_fraction - 0.9).abs() < 1e-9);
    }

    #[test]
    fn unrouted_resolvers_dropped() {
        let (probe, mut dns, geodb, rib) = fixture();
        dns.resolvers.push(ResolverActivity {
            resolver_addr: 0xDEAD_BEEF,
            probes: 999.0,
        });
        let cells = combine_region_as(&probe, &dns, &geodb, &rib);
        let total: f64 = cells.iter().map(|c| c.resolver_probes).sum();
        assert!((total - 100.0).abs() < 1e-9, "phantom resolver leaked in");
    }
}
