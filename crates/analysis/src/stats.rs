//! Small statistics utilities: ECDFs and percentiles.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0..=1.0`), nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// The sorted samples (for plotting/printing a CDF series).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF at evenly spaced fractions, returning
    /// `(value, cumulative_fraction)` pairs — the series papers plot.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
                (self.sorted[idx.min(self.sorted.len() - 1)], q)
            })
            .collect()
    }
}

/// Percent helper with guarded division.
pub fn pct(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        100.0 * num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, f64::NAN, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_leq(0.5), 0.0);
        assert_eq!(e.fraction_leq(2.0), 0.5);
        assert_eq!(e.fraction_leq(10.0), 1.0);
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        // Nearest-rank rounding: (n−1)·q = 1.5 rounds to index 2.
        assert_eq!(e.quantile(0.5), Some(3.0));
        assert_eq!(e.quantile(0.25), Some(2.0));
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_leq(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert!(e.series(5).is_empty());
    }

    #[test]
    fn series_monotone() {
        let e = Ecdf::new((0..100).map(f64::from).collect());
        let s = e.series(10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn pct_guards() {
        assert_eq!(pct(1.0, 0.0), 0.0);
        assert_eq!(pct(1.0, 4.0), 25.0);
    }
}
