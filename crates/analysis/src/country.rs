//! Per-country coverage (Figure 3): for each country, the fraction of
//! its APNIC-estimated Internet population that lives in ASes where
//! cache probing found client activity.

use std::collections::HashMap;

use clientmap_datasets::AsView;
use clientmap_geo::CountryCode;
use clientmap_world::World;

/// One country's coverage point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryCoverage {
    /// The country.
    pub country: CountryCode,
    /// APNIC-estimated users in the country (sum over published ASes).
    pub apnic_users: f64,
    /// Fraction of those users in ASes the technique detected.
    pub fraction_seen: f64,
}

/// Computes Figure 3's points. AS→country comes from registration data
/// (public RIR files), which the world's AS table stands in for.
pub fn country_coverage(world: &World, apnic: &AsView, technique: &AsView) -> Vec<CountryCoverage> {
    // Accumulate in ASN order — not HashMap iteration order — so the
    // per-country float sums are bitwise reproducible across processes.
    let mut by_asn: Vec<(clientmap_net::Asn, f64)> =
        apnic.volume.iter().map(|(a, v)| (*a, *v)).collect();
    by_asn.sort_unstable_by_key(|(asn, _)| *asn);
    let mut users: HashMap<CountryCode, f64> = HashMap::new();
    let mut seen: HashMap<CountryCode, f64> = HashMap::new();
    for (asn, est) in by_asn {
        let Some(as_id) = world.as_id(asn) else {
            continue;
        };
        let country = world.ases[as_id].country;
        *users.entry(country).or_insert(0.0) += est;
        if technique.contains(asn) {
            *seen.entry(country).or_insert(0.0) += est;
        }
    }
    let mut out: Vec<CountryCoverage> = users
        .into_iter()
        .map(|(country, apnic_users)| CountryCoverage {
            country,
            apnic_users,
            fraction_seen: seen.get(&country).copied().unwrap_or(0.0) / apnic_users.max(1e-12),
        })
        .collect();
    out.sort_by(|a, b| {
        b.apnic_users
            .total_cmp(&a.apnic_users)
            .then_with(|| a.country.cmp(&b.country))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_net::Asn;
    use clientmap_world::{World, WorldConfig};

    #[test]
    fn coverage_fractions_in_range_and_weighted() {
        let world = World::generate(WorldConfig::tiny(121));
        // APNIC view from ground truth (all user ASes).
        let apnic = AsView::from_volumes(
            world
                .ases
                .iter()
                .filter(|a| a.users > 0.0)
                .map(|a| (a.asn, a.users)),
        );
        // A technique that saw every *large* AS only.
        let technique = AsView::from_set(
            world
                .ases
                .iter()
                .filter(|a| a.users > 1000.0)
                .map(|a| a.asn),
        );
        let cov = country_coverage(&world, &apnic, &technique);
        assert!(!cov.is_empty());
        for c in &cov {
            assert!((0.0..=1.0).contains(&c.fraction_seen), "{c:?}");
            assert!(c.apnic_users > 0.0);
        }
        // Sorted by population, descending.
        for w in cov.windows(2) {
            assert!(w[0].apnic_users >= w[1].apnic_users);
        }
        // Volume-weighted coverage must beat AS-count coverage (large
        // ASes dominate user counts).
        let weighted: f64 = cov
            .iter()
            .map(|c| c.fraction_seen * c.apnic_users)
            .sum::<f64>()
            / cov.iter().map(|c| c.apnic_users).sum::<f64>();
        let by_as = technique.len() as f64 / apnic.len() as f64;
        assert!(weighted > by_as, "weighted {weighted} vs by-AS {by_as}");
    }

    #[test]
    fn unknown_ases_skipped() {
        let world = World::generate(WorldConfig::tiny(122));
        let apnic = AsView::from_volumes([(Asn(999_999_999), 1.0e6)]);
        let technique = AsView::from_set([Asn(999_999_999)]);
        let cov = country_coverage(&world, &apnic, &technique);
        assert!(
            cov.is_empty(),
            "AS without registration data must be dropped"
        );
    }
}
