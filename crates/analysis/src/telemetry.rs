//! Human-readable rendering of a run's telemetry snapshot.
//!
//! The raw snapshot (``repro --metrics out.json``) is exhaustive but
//! flat; [`render_summary`] groups it into the story of a run — query
//! funnel at the Google front end, probe outcome mix, DNS-logs funnel,
//! dataset sizes — in the same fixed-width style as the paper tables.

use clientmap_telemetry::MetricsSnapshot;

/// Renders the interesting cross-sections of `snap` as a fixed-width
/// text section. Counters that never fired are omitted, so tiny runs
/// produce tiny summaries.
pub fn render_summary(snap: &MetricsSnapshot) -> String {
    let mut s = String::from(
        "Run telemetry\n------------------------------------------------------------\n",
    );

    let gpdns_queries = snap.counter("gpdns.queries.udp") + snap.counter("gpdns.queries.tcp");
    if gpdns_queries > 0 {
        s.push_str(&format!(
            "Google front end: {gpdns_queries} queries ({} udp, {} tcp); \
             {} rate-limited, {} refused recursive\n",
            snap.counter("gpdns.queries.udp"),
            snap.counter("gpdns.queries.tcp"),
            snap.counter("gpdns.rate_limited.udp") + snap.counter("gpdns.rate_limited.tcp"),
            snap.counter("gpdns.recursive"),
        ));
        s.push_str(&format!(
            "  cache: {} hits, {} scope-zero, {} misses across pools\n",
            snap.sum_counters("gpdns.cache.hit."),
            snap.sum_counters("gpdns.cache.scope0."),
            snap.sum_counters("gpdns.cache.miss."),
        ));
    }

    let attempts = snap.counter("cacheprobe.attempts");
    if attempts > 0 {
        s.push_str(&format!(
            "cache probing: {} probes over {} attempts at {} PoPs; \
             outcomes {} hit / {} scope0 / {} miss / {} dropped\n",
            snap.counter("cacheprobe.probes_sent"),
            attempts,
            snap.counter("cacheprobe.pops_bound"),
            snap.counter("cacheprobe.outcome.hit"),
            snap.counter("cacheprobe.outcome.scope0"),
            snap.counter("cacheprobe.outcome.miss"),
            snap.counter("cacheprobe.outcome.dropped"),
        ));
        if let Some(h) = snap.histogram("cacheprobe.assignment_size") {
            s.push_str(&format!(
                "  assignments: {} PoP lists, mean {:.0} scopes (max {})\n",
                h.count,
                h.mean(),
                h.max,
            ));
        }
        if let Some(h) = snap.histogram("cacheprobe.hit.remaining_ttl_secs") {
            s.push_str(&format!(
                "  hit freshness: mean remaining TTL {:.0}s (min {}s, max {}s)\n",
                h.mean(),
                h.min,
                h.max,
            ));
        }
    }

    let examined = snap.counter("dnslogs.records_examined");
    if examined > 0 {
        s.push_str(&format!(
            "DNS logs: {examined} records examined → {} shape-rejected, \
             {} noise-rejected, {} attributed to {} resolvers\n",
            snap.counter("dnslogs.shape_mismatch"),
            snap.counter("dnslogs.rejected_noise"),
            snap.counter("dnslogs.attributed"),
            snap.counter("dnslogs.resolvers_detected"),
        ));
    }

    if snap.counter("world.ases") > 0 {
        s.push_str(&format!(
            "world: {} ASes, {} routed /24s ({} active), {} resolvers, {} geo entries\n",
            snap.counter("world.ases"),
            snap.counter("world.slash24s.routed"),
            snap.counter("world.slash24s.active"),
            snap.counter("world.resolvers"),
            snap.counter("geodb.entries"),
        ));
    }

    let dataset_sizes: Vec<String> = snap
        .counters
        .range("datasets.".to_string()..)
        .take_while(|(k, _)| k.starts_with("datasets."))
        .filter(|(k, _)| k.ends_with(".slash24s"))
        .map(|(k, v)| {
            let name = &k["datasets.".len()..k.len() - ".slash24s".len()];
            format!("{name} {v}")
        })
        .collect();
    if !dataset_sizes.is_empty() {
        s.push_str(&format!("datasets (/24s): {}\n", dataset_sizes.join(", ")));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_telemetry::MetricsRegistry;

    #[test]
    fn empty_snapshot_renders_header_only() {
        let m = MetricsRegistry::new();
        let s = render_summary(&m.snapshot());
        assert!(s.starts_with("Run telemetry"));
        assert_eq!(s.lines().count(), 2, "{s}");
    }

    #[test]
    fn sections_appear_when_counters_fire() {
        let m = MetricsRegistry::new();
        m.counter("gpdns.queries.tcp").add(7);
        m.counter("gpdns.cache.hit.pool0").add(7);
        m.counter("cacheprobe.attempts").add(3);
        m.counter("cacheprobe.probes_sent").add(9);
        m.counter("dnslogs.records_examined").add(4);
        m.counter("datasets.cache_probing.slash24s").add(16);
        let s = render_summary(&m.snapshot());
        assert!(s.contains("Google front end: 7 queries"), "{s}");
        assert!(s.contains("cache probing: 9 probes over 3 attempts"), "{s}");
        assert!(s.contains("DNS logs: 4 records"), "{s}");
        assert!(s.contains("cache_probing 16"), "{s}");
    }
}
