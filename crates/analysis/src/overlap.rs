//! Pairwise dataset overlap matrices (Tables 1, 3 and 4).

use clientmap_datasets::{AsView, DatasetBundle, DatasetId, PrefixView};

use crate::stats::pct;

/// A generic overlap matrix: `cells[i][j]` is the intersection of row
/// `i` with column `j`, and `pct[i][j]` the percent of row `i` also in
/// column `j`. The diagonal carries each dataset's own size.
#[derive(Debug, Clone)]
pub struct OverlapMatrix {
    /// Row/column datasets, in order.
    pub datasets: Vec<DatasetId>,
    /// Intersection sizes.
    pub cells: Vec<Vec<u64>>,
    /// Percent of row in column.
    pub pct: Vec<Vec<f64>>,
}

impl OverlapMatrix {
    /// Cell lookup by dataset pair.
    pub fn cell(&self, row: DatasetId, col: DatasetId) -> Option<(u64, f64)> {
        let i = self.datasets.iter().position(|d| *d == row)?;
        let j = self.datasets.iter().position(|d| *d == col)?;
        Some((self.cells[i][j], self.pct[i][j]))
    }

    /// Size of a dataset (its diagonal cell).
    pub fn size(&self, id: DatasetId) -> Option<u64> {
        let i = self.datasets.iter().position(|d| *d == id)?;
        Some(self.cells[i][i])
    }
}

/// Table 1: /24-prefix overlap across the datasets that have a prefix
/// view (APNIC is excluded — AS-only, which is one of the paper's
/// points).
///
/// Each dataset's dense /24 bitset is materialised once; every
/// pairwise cell is then a word-wise AND + popcount, so the matrix
/// stays cheap even over full-universe prefix views.
pub fn prefix_matrix(bundle: &DatasetBundle, datasets: &[DatasetId]) -> OverlapMatrix {
    let views: Vec<(DatasetId, PrefixView)> = datasets
        .iter()
        .filter_map(|id| bundle.prefix_view(*id).map(|v| (*id, v)))
        .collect();
    let bits: Vec<clientmap_store::Slash24Bitset> =
        views.iter().map(|(_, v)| v.slash24_bitset()).collect();
    let n = views.len();
    let mut cells = vec![vec![0u64; n]; n];
    let mut pcts = vec![vec![0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            let inter = if i == j {
                bits[i].count()
            } else {
                bits[i].and_count(&bits[j])
            };
            cells[i][j] = inter;
            pcts[i][j] = pct(inter as f64, bits[i].count() as f64);
        }
    }
    OverlapMatrix {
        datasets: views.iter().map(|(id, _)| *id).collect(),
        cells,
        pct: pcts,
    }
}

/// Table 3: AS-level overlap across all datasets.
pub fn as_matrix(bundle: &DatasetBundle, datasets: &[DatasetId]) -> OverlapMatrix {
    let views: Vec<(DatasetId, AsView)> = datasets
        .iter()
        .map(|id| (*id, bundle.as_view(*id)))
        .collect();
    let n = views.len();
    let mut cells = vec![vec![0u64; n]; n];
    let mut pcts = vec![vec![0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            let inter = if i == j {
                views[i].1.len()
            } else {
                views[i].1.intersection_len(&views[j].1)
            } as u64;
            cells[i][j] = inter;
            pcts[i][j] = pct(inter as f64, views[i].1.len() as f64);
        }
    }
    OverlapMatrix {
        datasets: views.iter().map(|(id, _)| *id).collect(),
        cells,
        pct: pcts,
    }
}

/// Table 4: percent of each row dataset's *activity volume* carried by
/// ASes also present in the column dataset. Rows without a volume
/// measure (cache probing, the union) are skipped, as in the paper.
#[derive(Debug, Clone)]
pub struct VolumeMatrix {
    /// Row datasets (those with volumes).
    pub rows: Vec<DatasetId>,
    /// Column datasets.
    pub cols: Vec<DatasetId>,
    /// Percent of row volume within column AS set.
    pub pct: Vec<Vec<f64>>,
}

impl VolumeMatrix {
    /// Lookup.
    pub fn cell(&self, row: DatasetId, col: DatasetId) -> Option<f64> {
        let i = self.rows.iter().position(|d| *d == row)?;
        let j = self.cols.iter().position(|d| *d == col)?;
        Some(self.pct[i][j])
    }
}

/// Builds Table 4.
pub fn volume_matrix(
    bundle: &DatasetBundle,
    rows: &[DatasetId],
    cols: &[DatasetId],
) -> VolumeMatrix {
    let row_views: Vec<(DatasetId, AsView)> = rows
        .iter()
        .map(|id| (*id, bundle.as_view(*id)))
        .filter(|(_, v)| v.total_volume() > 0.0)
        .collect();
    let col_views: Vec<(DatasetId, AsView)> =
        cols.iter().map(|id| (*id, bundle.as_view(*id))).collect();
    let pcts = row_views
        .iter()
        .map(|(_, rv)| {
            col_views
                .iter()
                .map(|(_, cv)| pct(rv.volume_in(cv), rv.total_volume()))
                .collect()
        })
        .collect();
    VolumeMatrix {
        rows: row_views.iter().map(|(id, _)| *id).collect(),
        cols: col_views.iter().map(|(id, _)| *id).collect(),
        pct: pcts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_datasets::ApnicDataset;
    use clientmap_net::{Asn, Rib};
    use clientmap_sim::cdn::CdnLogs;

    fn bundle() -> DatasetBundle {
        let mut rib = Rib::new();
        rib.announce("10.1.0.0/16".parse().unwrap(), Asn(1));
        rib.announce("10.2.0.0/16".parse().unwrap(), Asn(2));
        rib.announce("10.3.0.0/16".parse().unwrap(), Asn(3));
        let mut probe = clientmap_cacheprobe::CacheProbeResult::new(
            vec!["www.google.com".parse().unwrap()],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        probe.record_hit(
            0,
            0,
            "10.1.0.0/22".parse().unwrap(),
            "10.1.0.0/22".parse().unwrap(),
            1,
        );
        probe.record_hit(
            0,
            0,
            "10.2.0.0/24".parse().unwrap(),
            "10.2.0.0/24".parse().unwrap(),
            1,
        );
        let dns = clientmap_chromium::DnsLogsResult {
            resolvers: vec![clientmap_chromium::ResolverActivity {
                resolver_addr: 0x0A030035,
                probes: 12.0,
            }],
            rejected_noise_records: 0,
            records_examined: 1,
        };
        let mut logs = CdnLogs::default();
        logs.clients.insert("10.1.0.0/24".parse().unwrap(), 70);
        logs.clients.insert("10.3.0.0/24".parse().unwrap(), 30);
        logs.resolvers.insert(0x0A030035, 44);
        logs.ecs_prefixes.insert("10.1.0.0/24".parse().unwrap(), 9);
        let apnic = ApnicDataset {
            estimates: [(Asn(1), 900.0), (Asn(3), 100.0)].into_iter().collect(),
        };
        DatasetBundle::build(&probe, &dns, &logs, &apnic, &rib)
    }

    const ALL: [DatasetId; 5] = [
        DatasetId::CacheProbing,
        DatasetId::DnsLogs,
        DatasetId::Union,
        DatasetId::MicrosoftClients,
        DatasetId::MicrosoftResolvers,
    ];

    #[test]
    fn prefix_matrix_diagonal_and_symmetric_cells() {
        let b = bundle();
        let m = prefix_matrix(&b, &ALL);
        assert_eq!(m.size(DatasetId::CacheProbing), Some(5)); // 4 + 1
        assert_eq!(m.size(DatasetId::MicrosoftClients), Some(2));
        let (i1, p1) = m
            .cell(DatasetId::CacheProbing, DatasetId::MicrosoftClients)
            .unwrap();
        let (i2, _) = m
            .cell(DatasetId::MicrosoftClients, DatasetId::CacheProbing)
            .unwrap();
        assert_eq!(i1, i2, "intersection must be symmetric in count");
        assert_eq!(i1, 1);
        assert!((p1 - 20.0).abs() < 1e-9, "1/5 = 20%, got {p1}");
    }

    #[test]
    fn union_row_covers_both() {
        let b = bundle();
        let m = prefix_matrix(&b, &ALL);
        let u = m.size(DatasetId::Union).unwrap();
        assert_eq!(u, 5 + 1); // cache 5 /24s + resolver /24
    }

    #[test]
    fn as_matrix_includes_apnic() {
        let b = bundle();
        let ids = [
            DatasetId::CacheProbing,
            DatasetId::DnsLogs,
            DatasetId::Apnic,
            DatasetId::MicrosoftClients,
        ];
        let m = as_matrix(&b, &ids);
        assert_eq!(m.size(DatasetId::Apnic), Some(2));
        assert_eq!(m.size(DatasetId::CacheProbing), Some(2)); // AS 1, 2
        let (inter, p) = m.cell(DatasetId::Apnic, DatasetId::CacheProbing).unwrap();
        assert_eq!(inter, 1); // AS1 only
        assert!((p - 50.0).abs() < 1e-9);
    }

    #[test]
    fn volume_matrix_rows_have_volumes() {
        let b = bundle();
        let ids = [
            DatasetId::CacheProbing,
            DatasetId::DnsLogs,
            DatasetId::Apnic,
            DatasetId::MicrosoftClients,
        ];
        let m = volume_matrix(&b, &ids, &ids);
        // cache probing has no volume ⇒ not a row.
        assert!(!m.rows.contains(&DatasetId::CacheProbing));
        assert!(m.rows.contains(&DatasetId::MicrosoftClients));
        // MS clients volume: AS1=70, AS3=30; cache probing covers AS1,AS2
        // ⇒ 70%.
        let p = m
            .cell(DatasetId::MicrosoftClients, DatasetId::CacheProbing)
            .unwrap();
        assert!((p - 70.0).abs() < 1e-9, "{p}");
        // Every dataset's volume is 100% inside itself.
        let self_p = m
            .cell(DatasetId::MicrosoftClients, DatasetId::MicrosoftClients)
            .unwrap();
        assert!((self_p - 100.0).abs() < 1e-9);
    }
}
