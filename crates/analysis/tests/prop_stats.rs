//! Property tests pinning the analysis statistics layer: `Ecdf` and
//! `pct` edge cases against their mathematical definitions, and the
//! overlap-matrix invariants (symmetric intersection cells, diagonal =
//! dataset size, percentages within 0..=100) over randomized dataset
//! bundles. The shim proptest runner derives its RNG seed from each
//! test's name, so every run replays the same cases.

use clientmap_analysis::overlap::{as_matrix, prefix_matrix, volume_matrix};
use clientmap_analysis::stats::{pct, Ecdf};
use clientmap_datasets::{ApnicDataset, DatasetBundle, DatasetId};
use clientmap_net::{Asn, Prefix, Rib};
use clientmap_sim::cdn::CdnLogs;
use proptest::prelude::*;

fn sample_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e6..1.0e6,
        -1.0e6..1.0e6,
        -1.0e6..1.0e6,
        Just(f64::NAN),
        Just(0.0),
    ]
}

fn slash24_strategy() -> impl Strategy<Value = Prefix> {
    // Network addresses inside 10.0.0.0/8 so every prefix can be
    // routed by the tiny RIB below.
    (0u32..0x0000FFFF).prop_map(|i| Prefix::new(0x0A000000 | (i << 8), 24).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Ecdf::new` drops NaNs and nothing else; the CDF is monotone,
    /// hits 1 at the maximum sample, and `quantile` stays inside the
    /// sample range for any `q` (even outside 0..=1, which clamps).
    #[test]
    fn ecdf_matches_its_definition(
        samples in proptest::collection::vec(sample_strategy(), 0..50),
        x1 in -2.0e6..2.0e6f64,
        x2 in -2.0e6..2.0e6f64,
        q in -0.5..1.5f64,
    ) {
        let finite: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        let e = Ecdf::new(samples);
        prop_assert_eq!(e.len(), finite.len());
        prop_assert_eq!(e.is_empty(), finite.is_empty());

        if finite.is_empty() {
            // Empty (or all-NaN) input: a well-defined degenerate CDF.
            prop_assert_eq!(e.fraction_leq(x1), 0.0);
            prop_assert_eq!(e.quantile(q), None);
            prop_assert!(e.series(7).is_empty());
            return Ok(());
        }

        // fraction_leq is the literal counting definition…
        let expect = finite.iter().filter(|v| **v <= x1).count() as f64 / finite.len() as f64;
        prop_assert_eq!(e.fraction_leq(x1), expect);
        // …monotone in x, 0 below the minimum, 1 at and above the max.
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(e.fraction_leq(lo) <= e.fraction_leq(hi));
        let max = finite.iter().copied().fold(f64::MIN, f64::max);
        let min = finite.iter().copied().fold(f64::MAX, f64::min);
        prop_assert_eq!(e.fraction_leq(max), 1.0);
        prop_assert_eq!(e.fraction_leq(min - 1.0), 0.0);

        // Quantiles clamp q and always return an actual sample.
        let v = e.quantile(q).unwrap();
        prop_assert!(v >= min && v <= max, "quantile {v} outside [{min}, {max}]");
        prop_assert!(finite.contains(&v));
        prop_assert_eq!(e.quantile(0.0), Some(min));
        prop_assert_eq!(e.quantile(1.0), Some(max));
    }

    /// A duplicated sample weighs as many times as it appears.
    #[test]
    fn ecdf_counts_duplicates(v in -100.0..100.0f64, dups in 1usize..10, extra in 0usize..10) {
        let mut samples = vec![v; dups];
        samples.extend((0..extra).map(|i| v + 1.0 + i as f64));
        let e = Ecdf::new(samples);
        let total = (dups + extra) as f64;
        prop_assert_eq!(e.fraction_leq(v), dups as f64 / total);
        // A single distinct value is every quantile.
        if extra == 0 {
            prop_assert_eq!(e.quantile(0.37), Some(v));
        }
    }

    /// `pct` stays in 0..=100 for any 0 ≤ num ≤ den and is 0 whenever
    /// the denominator is not positive.
    #[test]
    fn pct_bounds(num in 0.0..1.0e9f64, den in 0.0..1.0e9f64, bad_den in -1.0e9..0.0f64) {
        let (num, den) = if num <= den { (num, den) } else { (den, num) };
        if den > 0.0 {
            let p = pct(num, den);
            prop_assert!((0.0..=100.0).contains(&p), "{p}");
        }
        prop_assert_eq!(pct(num, bad_den), 0.0);
        prop_assert_eq!(pct(num, 0.0), 0.0);
    }

    /// Overlap matrices over a randomized bundle: intersection cells
    /// are symmetric, the diagonal carries each dataset's own size,
    /// cells never exceed either dataset's size, and every percentage
    /// is within 0..=100 (diagonal: exactly 100 for non-empty sets).
    #[test]
    fn overlap_matrices_hold_their_invariants(
        hits in proptest::collection::vec(slash24_strategy(), 1..30),
        clients in proptest::collection::vec((slash24_strategy(), 1u64..1000), 1..30),
        estimates in proptest::collection::vec((1u32..40, 1.0..1.0e6f64), 1..10),
    ) {
        let mut rib = Rib::new();
        for i in 0u32..64 {
            rib.announce(
                Prefix::new(0x0A000000 | (i << 18), 14).unwrap(),
                Asn(i + 1),
            );
        }
        let mut probe = clientmap_cacheprobe::CacheProbeResult::new(
            vec!["www.google.com".parse().unwrap()],
            Vec::new(),
            Default::default(),
            Default::default(),
        );
        for p in &hits {
            probe.record_hit(0, 0, *p, *p, 1);
        }
        let dns = clientmap_chromium::DnsLogsResult {
            resolvers: vec![clientmap_chromium::ResolverActivity {
                resolver_addr: 0x0A030035,
                probes: 12.0,
            }],
            rejected_noise_records: 0,
            records_examined: 1,
        };
        let mut logs = CdnLogs::default();
        for (p, v) in &clients {
            *logs.clients.entry(*p).or_insert(0) += v;
        }
        let apnic = ApnicDataset {
            estimates: estimates.iter().map(|(a, v)| (Asn(*a), *v)).collect(),
        };
        let bundle = DatasetBundle::build(&probe, &dns, &logs, &apnic, &rib);

        let ids = [
            DatasetId::CacheProbing,
            DatasetId::DnsLogs,
            DatasetId::Union,
            DatasetId::MicrosoftClients,
            DatasetId::Apnic,
        ];
        for m in [prefix_matrix(&bundle, &ids), as_matrix(&bundle, &ids)] {
            let n = m.datasets.len();
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(m.cells[i][j], m.cells[j][i], "cell symmetry at ({}, {})", i, j);
                    prop_assert!(m.cells[i][j] <= m.cells[i][i], "cell exceeds row size");
                    prop_assert!(m.cells[i][j] <= m.cells[j][j], "cell exceeds column size");
                    prop_assert!(
                        (0.0..=100.0).contains(&m.pct[i][j]),
                        "pct out of range: {}", m.pct[i][j]
                    );
                }
                let size = m.size(m.datasets[i]).unwrap();
                prop_assert_eq!(m.cells[i][i], size);
                if size > 0 {
                    prop_assert_eq!(m.pct[i][i], 100.0);
                }
            }
        }

        // Table 4: rows are exactly the datasets with volume, every
        // cell a valid percentage, and each row is 100% inside itself.
        // Volumes are float sums accumulated in different orders, so
        // the bounds carry an ulp-scale tolerance.
        let vm = volume_matrix(&bundle, &ids, &ids);
        for (i, row) in vm.rows.iter().enumerate() {
            for j in 0..vm.cols.len() {
                prop_assert!(
                    (-1e-9..=100.0 + 1e-9).contains(&vm.pct[i][j]),
                    "{}", vm.pct[i][j]
                );
            }
            let self_pct = vm.cell(*row, *row).unwrap();
            prop_assert!((self_pct - 100.0).abs() < 1e-9, "{self_pct}");
        }
    }
}
