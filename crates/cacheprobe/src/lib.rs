//! # clientmap-cacheprobe
//!
//! The paper's first technique, **cache probing** (§3.1): non-recursive
//! ECS queries to Google Public DNS reveal which client prefixes
//! recently resolved popular domains. The full measurement pipeline:
//!
//! 1. **Vantage discovery** ([`vantage`]) — spin up cloud VMs, ask each
//!    `o-o.myaddr.l.google.com TXT` which PoP its anycast reaches; the
//!    paper covers 22 of 45 PoPs from AWS + Vultr.
//! 2. **Scope pre-scan** ([`scopescan`]) — query the authoritatives
//!    directly across the address space to learn ECS response scopes;
//!    querying Google once per *scope* instead of per /24 cuts probing
//!    several-fold (validated in Table 2).
//! 3. **Service-radius calibration** ([`calibrate`]) — probe a random
//!    prefix sample at every PoP; the 90th-percentile hit distance is
//!    that PoP's service radius (Fig. 2), so each prefix is later probed
//!    only at plausible PoPs (2.4M vs 4.4M prefixes per PoP in the
//!    paper).
//! 4. **Probing** ([`probe`]) — loop the assigned scopes at a fixed
//!    rate per domain over the measurement window, 5 redundant TCP
//!    queries per ⟨PoP, prefix, domain⟩ to cover the independent cache
//!    pools; a cache hit with return scope > 0 marks the prefix active.
//! 5. **Results** ([`results`]) — active-prefix sets per domain, per-PoP
//!    densities (Fig. 1), query-vs-response scope stability (Table 2),
//!    and per-AS lower/upper activity bounds (Fig. 4).
//!
//! The technique consumes **only public interfaces**: the wire-level
//! query API of the simulated Google Public DNS, the authoritatives,
//! the (MaxMind-style) geolocation database, and RIR allocation /
//! Routeviews data for the probe universe. It never reads the world's
//! ground truth — that is reserved for the validation layer.

#![warn(missing_docs)]

pub mod calibrate;
pub mod cluster;
pub mod diurnal;
pub mod openresolver;
pub mod plan;
pub mod probe;
pub mod resilience;
pub mod results;
pub mod scopescan;
pub mod sweep;
pub mod vantage;

mod config;

pub use cluster::{
    feature_distance, verdict_rank, ClusterFeatures, ClusterStats, ClusteredPlan,
};
pub use config::{ProbeConfig, RetryPolicy};
pub use plan::{
    plan_units, ExhaustivePlan, ExtrapolatedSlot, PlanDecision, PlanOutcome, PlanSlot, ProbePlan,
    WarmStartPlan,
};
pub use probe::{
    execute_sweep, merge_fault_books, merge_shards, prepare_sweep, probe_rescue_shard, probe_shard,
    run_technique, run_technique_full, run_technique_timed, PopHealth, ProbeUnit, ShardMergeError,
    SweepPrep,
};
pub use results::{CacheProbeResult, FaultSummary, ProbeCount};
