//! Cloud vantage points and PoP discovery.
//!
//! The paper runs probers from AWS and Vultr VMs around the world and
//! uses `dig @8.8.8.8 o-o.myaddr.l.google.com TXT` to learn which PoP
//! each VM's anycast path reaches — 16 PoPs via AWS regions plus 6 more
//! via Vultr, for 22 of Google's 45.

use clientmap_net::GeoCoord;
use clientmap_sim::{PopId, Sim, SimTime};

use crate::config::RetryPolicy;
use crate::resilience::{backoff_delay_ms, FaultCounters};

/// Cloud provider of a vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// Amazon Web Services region.
    Aws,
    /// Vultr location.
    Vultr,
}

/// One vantage point (a cloud VM).
#[derive(Debug, Clone, Copy)]
pub struct VantagePoint {
    /// Region name.
    pub name: &'static str,
    /// Provider.
    pub provider: Provider,
    /// Location.
    pub coord: GeoCoord,
}

macro_rules! vp {
    ($name:literal, $prov:ident, $lat:literal, $lon:literal) => {
        VantagePoint {
            name: $name,
            provider: Provider::$prov,
            coord: GeoCoord {
                lat: $lat,
                lon: $lon,
            },
        }
    };
}

/// The vantage-point catalog: AWS regions plus Vultr locations chosen
/// to extend coverage (as the paper did).
pub static VANTAGE_POINTS: &[VantagePoint] = &[
    // AWS regions.
    vp!("us-east-1 (N. Virginia)", Aws, 38.9, -77.4),
    vp!("us-east-2 (Ohio)", Aws, 40.0, -83.0),
    vp!("us-west-1 (N. California)", Aws, 37.4, -122.0),
    vp!("us-west-2 (Oregon)", Aws, 45.8, -119.7),
    vp!("ca-central-1 (Montreal)", Aws, 45.5, -73.6),
    vp!("sa-east-1 (Sao Paulo)", Aws, -23.5, -46.6),
    vp!("eu-west-1 (Ireland)", Aws, 53.3, -6.3),
    vp!("eu-west-2 (London)", Aws, 51.5, -0.1),
    vp!("eu-west-3 (Paris)", Aws, 48.9, 2.4),
    vp!("eu-central-1 (Frankfurt)", Aws, 50.1, 8.7),
    vp!("eu-north-1 (Stockholm)", Aws, 59.3, 18.1),
    vp!("ap-northeast-1 (Tokyo)", Aws, 35.7, 139.7),
    vp!("ap-northeast-2 (Seoul)", Aws, 37.6, 127.0),
    vp!("ap-northeast-3 (Osaka)", Aws, 34.7, 135.5),
    vp!("ap-southeast-1 (Singapore)", Aws, 1.4, 103.8),
    vp!("ap-southeast-2 (Sydney)", Aws, -33.9, 151.2),
    vp!("ap-east-1 (Hong Kong)", Aws, 22.3, 114.2),
    vp!("ap-south-1 (Mumbai)", Aws, 19.1, 72.9),
    // Vultr extensions.
    vp!("vultr-atlanta", Vultr, 33.7, -84.4),
    vp!("vultr-dallas", Vultr, 32.8, -96.8),
    vp!("vultr-seattle", Vultr, 47.6, -122.3),
    vp!("vultr-toronto", Vultr, 43.7, -79.4),
    vp!("vultr-amsterdam", Vultr, 52.4, 4.9),
    vp!("vultr-warsaw", Vultr, 52.2, 21.0),
    vp!("vultr-santiago", Vultr, -33.4, -70.7),
    vp!("vultr-taipei", Vultr, 25.0, 121.6),
    vp!("vultr-johannesburg", Vultr, -26.2, 28.0),
    vp!("vultr-helsinki", Vultr, 60.2, 24.9),
    vp!("vultr-zurich", Vultr, 47.4, 8.5),
    vp!("vultr-okinawa", Vultr, 26.3, 127.8),
];

/// A vantage point bound to the PoP it discovered.
#[derive(Debug, Clone, Copy)]
pub struct BoundVantage {
    /// Index into [`VANTAGE_POINTS`].
    pub vp: usize,
    /// The PoP this VM reaches.
    pub pop: PopId,
}

impl BoundVantage {
    /// Stable prober key used for anycast routing and rate limiting.
    pub fn prober_key(&self) -> u64 {
        self.vp as u64 + 1
    }

    /// The vantage point's coordinates.
    pub fn coord(&self) -> GeoCoord {
        VANTAGE_POINTS[self.vp].coord
    }
}

/// Discovers the PoPs reachable from the catalog: one bound vantage per
/// distinct PoP (first VM to reach it wins, as the paper keeps one VM
/// per covered PoP).
pub fn discover(sim: &mut Sim, t: SimTime) -> Vec<BoundVantage> {
    discover_with(sim, t, &RetryPolicy::default(), None)
}

/// [`discover`] with bounded retries per vantage point. Under fault
/// injection a discovery exchange can be lost or answered with an
/// error, and an undiscovered vantage silently shrinks PoP coverage —
/// so each VM retries its `o-o.myaddr` dance with seeded backoff up to
/// the policy's budget. With `fc = None` (fault-free) this is the
/// single-attempt path, byte-identical to the pre-fault [`discover`].
pub fn discover_with(
    sim: &mut Sim,
    t: SimTime,
    policy: &RetryPolicy,
    fc: Option<&FaultCounters>,
) -> Vec<BoundVantage> {
    let mut bound: Vec<BoundVantage> = Vec::new();
    for (i, vp) in VANTAGE_POINTS.iter().enumerate() {
        let key = i as u64 + 1;
        let mut delay = 0u64;
        let mut failures = 0u64;
        let mut pop = None;
        for retry in 0..=policy.max_retries {
            if retry > 0 {
                let Some(fc) = fc else { break };
                delay += backoff_delay_ms(key, t.as_millis(), retry, policy.backoff_base_ms);
                if delay > policy.deadline_ms {
                    break;
                }
                fc.retries.inc();
            }
            match sim.discover_pop(key, vp.coord, t + SimTime::from_millis(delay)) {
                Some(p) => {
                    pop = Some(p);
                    break;
                }
                None => {
                    if let Some(fc) = fc {
                        fc.observed_discovery.inc();
                        failures += 1;
                    }
                }
            }
        }
        if let Some(fc) = fc {
            if pop.is_none() {
                fc.lost.add(failures);
            } else if failures > 0 {
                fc.recovered.add(failures);
            }
        }
        if let Some(pop) = pop {
            if !bound.iter().any(|b| b.pop == pop) {
                bound.push(BoundVantage { vp: i, pop });
            }
        }
    }
    bound.sort_by_key(|b| b.pop);
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_sim::{pop_catalog, PopStatus};
    use clientmap_world::{World, WorldConfig};

    #[test]
    fn discovery_covers_many_probeable_pops() {
        let mut sim = Sim::new(World::generate(WorldConfig::tiny(71)));
        let bound = discover(&mut sim, SimTime::ZERO);
        assert!(
            bound.len() >= 10,
            "only {} PoPs discovered from {} VPs",
            bound.len(),
            VANTAGE_POINTS.len()
        );
        // Each bound PoP is probeable and unique.
        let mut seen = std::collections::HashSet::new();
        for b in &bound {
            assert_eq!(pop_catalog()[b.pop].status, PopStatus::ProbedVerified);
            assert!(seen.insert(b.pop), "duplicate PoP {}", b.pop);
        }
    }

    #[test]
    fn discovery_is_deterministic() {
        let mut sim = Sim::new(World::generate(WorldConfig::tiny(71)));
        let a = discover(&mut sim, SimTime::ZERO);
        let b = discover(&mut sim, SimTime::from_secs(60));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pop, y.pop);
            assert_eq!(x.vp, y.vp);
        }
    }

    #[test]
    fn catalog_has_both_providers() {
        assert!(VANTAGE_POINTS.iter().any(|v| v.provider == Provider::Aws));
        assert!(VANTAGE_POINTS.iter().any(|v| v.provider == Provider::Vultr));
        assert!(VANTAGE_POINTS.len() >= 25);
    }
}
