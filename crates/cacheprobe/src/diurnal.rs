//! Time-of-day analysis — the paper's §2 motivation that "a
//! fine-grained map in time and network allows researchers to answer
//! questions about time of day effects".
//!
//! Repeatedly probing a prefix around the clock yields an hourly
//! cache-hit-rate profile. Client activity is diurnal, so the profile
//! peaks at the prefix's local afternoon — which means the *phase* of
//! the profile reveals the prefix's longitude band, independently of
//! any geolocation database. `repro diurnal` validates the inferred
//! longitudes against ground truth.

use clientmap_dns::DomainName;
use clientmap_net::Prefix;
use clientmap_sim::{GpdnsSession, ProbeOutcome, Sim, SimTime};

use crate::probe::probe_scope_with;
use crate::vantage::BoundVantage;
use crate::ProbeConfig;

/// Hourly hit-rate profile of one scope.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// The probed scope.
    pub scope: Prefix,
    /// Probe events per UTC hour-of-day.
    pub attempts: [u32; 24],
    /// Hits per UTC hour-of-day.
    pub hits: [u32; 24],
}

impl DiurnalProfile {
    /// Hit rate for one UTC hour.
    pub fn rate(&self, hour: usize) -> f64 {
        if self.attempts[hour] == 0 {
            0.0
        } else {
            f64::from(self.hits[hour]) / f64::from(self.attempts[hour])
        }
    }

    /// Total hits.
    pub fn total_hits(&self) -> u32 {
        self.hits.iter().sum()
    }

    /// The peak UTC hour by circular mean of the hourly hit rates
    /// (`None` when the profile is flat or empty).
    pub fn peak_utc_hour(&self) -> Option<f64> {
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        let mut mass = 0.0f64;
        for h in 0..24 {
            let w = self.rate(h);
            let theta = 2.0 * std::f64::consts::PI * h as f64 / 24.0;
            x += w * theta.cos();
            y += w * theta.sin();
            mass += w;
        }
        if mass < 1e-9 || (x * x + y * y).sqrt() < 1e-6 {
            return None;
        }
        let angle = y.atan2(x).rem_euclid(2.0 * std::f64::consts::PI);
        Some(angle * 24.0 / (2.0 * std::f64::consts::PI))
    }

    /// Longitude inferred from the peak, assuming activity peaks at
    /// `peak_local_hour` local time (the world model peaks at 16:00).
    pub fn inferred_longitude(&self, peak_local_hour: f64) -> Option<f64> {
        let utc_peak = self.peak_utc_hour()?;
        // local = utc + lon/15  ⇒  lon = 15·(local − utc)
        let mut lon = 15.0 * (peak_local_hour - utc_peak);
        while lon > 180.0 {
            lon -= 360.0;
        }
        while lon < -180.0 {
            lon += 360.0;
        }
        Some(lon)
    }
}

/// Probes `scope` `probes_per_hour` times every hour for `days` days
/// at one PoP, building the hourly profile.
#[allow(clippy::too_many_arguments)]
pub fn probe_diurnal(
    sim: &Sim,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    start: SimTime,
    days: u32,
    probes_per_hour: u32,
) -> DiurnalProfile {
    let view = sim.view();
    let mut profile = DiurnalProfile {
        scope,
        attempts: [0; 24],
        hits: [0; 24],
    };
    for day in 0..u64::from(days) {
        for hour in 0..24u64 {
            for k in 0..u64::from(probes_per_hour) {
                // Spread probes across the hour so they fall into
                // different TTL windows.
                let t = start
                    + SimTime::from_hours(day * 24 + hour)
                    + SimTime::from_secs(k * 3600 / u64::from(probes_per_hour).max(1));
                let idx = (hour % 24) as usize;
                profile.attempts[idx] += 1;
                if matches!(
                    probe_scope_with(&view, session, bound, domain, scope, cfg, t),
                    ProbeOutcome::Hit { .. }
                ) {
                    profile.hits[idx] += 1;
                }
            }
        }
    }
    profile
}

/// Mean absolute circular difference between two hours-of-day.
pub fn hour_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(24.0);
    d.min(24.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_profile(peak_utc: f64) -> DiurnalProfile {
        let mut p = DiurnalProfile {
            scope: "10.0.0.0/20".parse().unwrap(),
            attempts: [20; 24],
            hits: [0; 24],
        };
        for h in 0..24 {
            let phase = 2.0 * std::f64::consts::PI * (h as f64 - peak_utc) / 24.0;
            let rate = (0.5 + 0.45 * phase.cos()).max(0.0);
            p.hits[h] = (rate * 20.0).round() as u32;
        }
        p
    }

    #[test]
    fn peak_recovered_from_synthetic_profile() {
        for peak in [0.0, 5.0, 12.0, 19.5] {
            let p = synthetic_profile(peak);
            let got = p.peak_utc_hour().expect("non-flat profile");
            assert!(
                hour_distance(got, peak) < 1.0,
                "peak {peak}: inferred {got}"
            );
        }
    }

    #[test]
    fn flat_or_empty_profiles_yield_none() {
        let empty = DiurnalProfile {
            scope: "10.0.0.0/20".parse().unwrap(),
            attempts: [0; 24],
            hits: [0; 24],
        };
        assert!(empty.peak_utc_hour().is_none());
        let flat = DiurnalProfile {
            scope: "10.0.0.0/20".parse().unwrap(),
            attempts: [10; 24],
            hits: [5; 24],
        };
        assert!(flat.peak_utc_hour().is_none());
    }

    #[test]
    fn longitude_inference_inverts_timezones() {
        // A profile peaking at 16:00 UTC with a 16:00-local peak model
        // means longitude ≈ 0.
        let p = synthetic_profile(16.0);
        let lon = p.inferred_longitude(16.0).unwrap();
        assert!(lon.abs() < 15.0, "lon {lon}");
        // Peak at 21:00 UTC ⇒ local 16:00 is 5 h earlier ⇒ lon ≈ −75°.
        let p = synthetic_profile(21.0);
        let lon = p.inferred_longitude(16.0).unwrap();
        assert!((lon + 75.0).abs() < 15.0, "lon {lon}");
    }

    #[test]
    fn hour_distance_wraps() {
        assert_eq!(hour_distance(23.0, 1.0), 2.0);
        assert_eq!(hour_distance(1.0, 23.0), 2.0);
        assert_eq!(hour_distance(12.0, 12.0), 0.0);
        assert_eq!(hour_distance(0.0, 12.0), 12.0);
    }
}
