//! The probing loop (§3.1.1, "probing details") and the end-to-end
//! technique runner.
//!
//! Probing is embarrassingly parallel — each ⟨PoP, domain⟩ probe stream
//! is an independent connection with its own session state — so the
//! runner fans the streams out as work units over
//! [`clientmap_par::par_map`], sharing the immutable simulation core.
//! Results merge in work-unit order (bound-PoP order × domain order),
//! an ordered reduction that makes the output — reports and telemetry
//! snapshots alike — byte-identical at any thread count.
//!
//! The per-probe inner loop runs on the zero-allocation fast lane:
//! queries render from a pre-built [`wire::ProbeQueryTemplate`] into a
//! reused buffer, responses land in another, and telemetry handles are
//! resolved once per unit, so steady-state probing never touches the
//! allocator or the registry lock.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use clientmap_dns::{wire, DomainName, Message, Question};
use clientmap_net::Prefix;
use clientmap_par::par_map;
use clientmap_sim::{GpdnsSession, PopId, ProbeOutcome, Sim, SimTime, SimView};
use clientmap_telemetry::{Counter, Histogram, MetricsRegistry};

use crate::calibrate::{calibrate, sample_prefixes};
use crate::results::CacheProbeResult;
use crate::scopescan::scan;
use crate::vantage::{discover, BoundVantage};
use crate::ProbeConfig;

/// Sends `cfg.redundancy` identical non-recursive ECS queries for
/// ⟨PoP, prefix, domain⟩ (covering multiple cache pools) and returns
/// the best outcome. Hit > HitScopeZero > Miss > Dropped.
#[allow(clippy::too_many_arguments)]
pub fn probe_scope_with(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
) -> ProbeOutcome {
    let q = Message::query(
        (t.as_millis() as u16) ^ (scope.addr() >> 8) as u16,
        Question {
            name: domain.clone(),
            rtype: clientmap_dns::RrType::A,
            class: clientmap_dns::RrClass::In,
        },
    )
    .with_recursion_desired(false)
    .with_ecs(scope);
    let Ok(packet) = wire::encode(&q) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let resp = view.gpdns_query(
            session,
            bound.prober_key(),
            bound.coord(),
            &packet,
            cfg.transport,
            rt,
        );
        let outcome = clientmap_sim::GooglePublicDns::classify_response(resp.as_deref());
        best = match (&best, &outcome) {
            (_, ProbeOutcome::Hit { .. }) => return outcome,
            (ProbeOutcome::Dropped, _) => outcome,
            (ProbeOutcome::Miss, ProbeOutcome::HitScopeZero) => outcome,
            _ => best,
        };
    }
    best
}

/// Convenience wrapper over [`probe_scope_with`] driving the [`Sim`]'s
/// built-in session (single-threaded callers: examples, ablations).
/// Rate-limiter state persists across calls, as it must for UDP
/// throttling to be observable.
pub fn probe_scope(
    sim: &mut Sim,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
) -> ProbeOutcome {
    let q = Message::query(
        (t.as_millis() as u16) ^ (scope.addr() >> 8) as u16,
        Question {
            name: domain.clone(),
            rtype: clientmap_dns::RrType::A,
            class: clientmap_dns::RrClass::In,
        },
    )
    .with_recursion_desired(false)
    .with_ecs(scope);
    let Ok(packet) = wire::encode(&q) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let resp = sim.gpdns_query(
            bound.prober_key(),
            bound.coord(),
            &packet,
            cfg.transport,
            rt,
        );
        let outcome = clientmap_sim::GooglePublicDns::classify_response(resp.as_deref());
        best = match (&best, &outcome) {
            (_, ProbeOutcome::Hit { .. }) => return outcome,
            (ProbeOutcome::Dropped, _) => outcome,
            (ProbeOutcome::Miss, ProbeOutcome::HitScopeZero) => outcome,
            _ => best,
        };
    }
    best
}

/// Zero-allocation variant of [`probe_scope_with`]: the query renders
/// from a pre-built [`wire::ProbeQueryTemplate`] into a caller-reused
/// buffer and the response lands in another, so the steady-state
/// probing loop performs no heap allocation. Sends byte-for-byte the
/// same queries — and returns the same outcome — as the slow path.
#[allow(clippy::too_many_arguments)]
pub fn probe_scope_fast(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    template: &wire::ProbeQueryTemplate,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
    query_buf: &mut Vec<u8>,
    resp_buf: &mut Vec<u8>,
) -> ProbeOutcome {
    let id = (t.as_millis() as u16) ^ (scope.addr() >> 8) as u16;
    template.render(id, scope, query_buf);
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let got = view.gpdns_query_into(
            session,
            bound.prober_key(),
            bound.coord(),
            query_buf,
            cfg.transport,
            rt,
            resp_buf,
        );
        let outcome =
            clientmap_sim::GooglePublicDns::classify_response(got.then_some(resp_buf.as_slice()));
        best = match (&best, &outcome) {
            (_, ProbeOutcome::Hit { .. }) => return outcome,
            (ProbeOutcome::Dropped, _) => outcome,
            (ProbeOutcome::Miss, ProbeOutcome::HitScopeZero) => outcome,
            _ => best,
        };
    }
    best
}

/// Selects the probing domains: the `num_alexa_domains` most popular
/// ECS+TTL-qualified catalog domains, plus the Microsoft validation
/// domain if configured.
pub fn select_domains(sim: &Sim, cfg: &ProbeConfig) -> Vec<DomainName> {
    let catalog = &sim.world().domains;
    let mut domains: Vec<DomainName> = catalog
        .top_probeable(cfg.num_alexa_domains)
        .iter()
        .map(|s| s.name.clone())
        .collect();
    if cfg.include_microsoft_domain {
        let ms = catalog.microsoft_cdn().name.clone();
        if !domains.contains(&ms) {
            domains.push(ms);
        }
    }
    domains
}

/// Telemetry handles for one PoP worker: the workspace-wide probe
/// counters (shared `Arc`s — concurrent workers bump the same atomics)
/// plus this worker's per-PoP family. Resolved once per worker so the
/// probing loop itself never touches the registry lock.
///
/// The outcome counters satisfy two reconciliation invariants checked
/// after every end-to-end run: `probes_sent == redundancy × attempts`
/// and `hit + scope0 + miss + dropped == attempts`.
struct ProbeMetrics {
    attempts: Arc<Counter>,
    probes_sent: Arc<Counter>,
    hit: Arc<Counter>,
    scope0: Arc<Counter>,
    miss: Arc<Counter>,
    dropped: Arc<Counter>,
    hit_ttl_secs: Arc<Histogram>,
    pop_attempts: Arc<Counter>,
    pop_hits: Arc<Counter>,
    /// `cacheprobe.pop.<code>.assigned` — resolved here with the rest
    /// so assignment accounting never formats a metric name inline.
    assigned: Arc<Counter>,
}

impl ProbeMetrics {
    fn resolve(m: &MetricsRegistry, pop_code: &str) -> ProbeMetrics {
        ProbeMetrics {
            attempts: m.counter("cacheprobe.attempts"),
            probes_sent: m.counter("cacheprobe.probes_sent"),
            hit: m.counter("cacheprobe.outcome.hit"),
            scope0: m.counter("cacheprobe.outcome.scope0"),
            miss: m.counter("cacheprobe.outcome.miss"),
            dropped: m.counter("cacheprobe.outcome.dropped"),
            hit_ttl_secs: m.histogram("cacheprobe.hit.remaining_ttl_secs"),
            pop_attempts: m.counter(&format!("cacheprobe.pop.{pop_code}.attempts")),
            pop_hits: m.counter(&format!("cacheprobe.pop.{pop_code}.hits")),
            assigned: m.counter(&format!("cacheprobe.pop.{pop_code}.assigned")),
        }
    }
}

/// One work unit for the executor: a single domain's probe stream at
/// one bound PoP. Units are built in bound-PoP × domain order, and the
/// reduction consumes them in exactly that order.
struct ProbeUnit {
    /// Index into the bound-vantage list (and its telemetry table).
    bound_idx: usize,
    /// Index into the selected-domain list.
    domain: usize,
    /// Assigned query scopes, in assignment order.
    scopes: Vec<Prefix>,
}

/// What one unit's worker produced.
struct UnitTally {
    /// (query scope, response scope, remaining TTL) per hit.
    hits: Vec<(Prefix, Prefix, u32)>,
    /// query scope → (attempts, hits) for activity ranking.
    counts: HashMap<Prefix, (u64, u64)>,
    probes_sent: u64,
    scope0_hits: u64,
    drops: u64,
    session: GpdnsSession,
}

/// Probes one ⟨PoP, domain⟩ stream for the whole window on the
/// zero-allocation fast lane.
///
/// Slot `k` of the stream fires at `t0 + k·slot_secs`; the stream makes
/// up to nine passes over its scope list and stops at the window edge
/// (the paper's 120 h at 50 q/s over ~2.4M prefixes ≈ 9 passes). Each
/// stream is its own connection with its own session, so units are
/// fully independent — the executor may run them in any order.
fn probe_unit(
    view: &SimView<'_>,
    bound: &BoundVantage,
    template: &wire::ProbeQueryTemplate,
    scopes: &[Prefix],
    cfg: &ProbeConfig,
    t0: SimTime,
    metrics: &ProbeMetrics,
) -> UnitTally {
    let mut tally = UnitTally {
        hits: Vec::new(),
        counts: HashMap::new(),
        probes_sent: 0,
        scope0_hits: 0,
        drops: 0,
        session: GpdnsSession::new(),
    };
    let window_secs = cfg.duration_hours * 3600.0;
    let slot_secs = 1.0 / cfg.rate_per_domain;
    let total_slots = (window_secs * cfg.rate_per_domain) as u64;
    let loops = (total_slots / scopes.len() as u64).clamp(1, 9);
    let mut query_buf = Vec::with_capacity(64);
    let mut resp_buf = Vec::with_capacity(512);
    let mut slot = 0u64;
    'window: for _pass in 0..loops {
        for &scope in scopes {
            // The first slot always fires; later ones only inside the
            // probing window.
            let offset_secs = slot as f64 * slot_secs;
            if slot > 0 && offset_secs >= window_secs {
                break 'window;
            }
            slot += 1;
            let t = t0 + SimTime::from_secs_f64(offset_secs);
            tally.probes_sent += u64::from(cfg.redundancy);
            metrics.attempts.inc();
            metrics.pop_attempts.inc();
            metrics.probes_sent.add(u64::from(cfg.redundancy));
            let count = tally.counts.entry(scope).or_insert((0, 0));
            count.0 += 1;
            match probe_scope_fast(
                view,
                &mut tally.session,
                bound,
                template,
                scope,
                cfg,
                t,
                &mut query_buf,
                &mut resp_buf,
            ) {
                ProbeOutcome::Hit {
                    scope: resp_scope,
                    remaining_ttl,
                } => {
                    count.1 += 1;
                    metrics.hit.inc();
                    metrics.pop_hits.inc();
                    metrics.hit_ttl_secs.record(u64::from(remaining_ttl));
                    tally.hits.push((scope, resp_scope, remaining_ttl));
                }
                ProbeOutcome::HitScopeZero => {
                    metrics.scope0.inc();
                    tally.scope0_hits += 1;
                }
                ProbeOutcome::Miss => metrics.miss.inc(),
                ProbeOutcome::Dropped => {
                    metrics.dropped.inc();
                    tally.drops += 1;
                }
            }
        }
    }
    tally
}

/// Runs the full cache-probing technique.
///
/// `universe` is the public probe universe (RIR allocations /
/// Routeviews blocks). Returns everything downstream analysis needs.
pub fn run_technique(sim: &mut Sim, cfg: &ProbeConfig, universe: &[Prefix]) -> CacheProbeResult {
    run_technique_timed(sim, cfg, universe, &mut Vec::new())
}

/// [`run_technique`], additionally appending `(stage, wall seconds)`
/// pairs to `timings` — the side channel `repro bench` reports from.
pub fn run_technique_timed(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    universe: &[Prefix],
    timings: &mut Vec<(String, f64)>,
) -> CacheProbeResult {
    let seed = sim.world().config.seed;

    // 1. Vantage discovery (optionally capped for ablations).
    let stage = Instant::now();
    let mut bound = discover(sim, SimTime::ZERO);
    if let Some(cap) = cfg.max_pops {
        bound.truncate(cap);
    }
    timings.push(("vantage_discovery".into(), stage.elapsed().as_secs_f64()));

    // 2. Domain selection + authoritative scope pre-scan.
    let stage = Instant::now();
    let domains = select_domains(sim, cfg);
    let scan_result = scan(sim, &domains, universe, SimTime::ZERO);
    timings.push(("scope_scan".into(), stage.elapsed().as_secs_f64()));

    // 3. Service-radius calibration (start a few hours in, so caches
    //    reflect steady-state client activity).
    let stage = Instant::now();
    let sample = sample_prefixes(
        sim,
        universe,
        cfg.calibration_sample,
        cfg.calibration_max_error_km,
        seed ^ 0xCA11,
    );
    let t_cal = SimTime::from_hours(6);
    let radii = calibrate(sim, &bound, &domains, &sample, cfg, t_cal);
    timings.push(("calibration".into(), stage.elapsed().as_secs_f64()));

    // 4. Scope → PoP assignment by service radius (MaxMind location +
    //    error radius possibly within the radius).
    let pops = clientmap_sim::pop_catalog();
    let mut assigned: HashMap<PopId, Vec<(usize, Prefix)>> = HashMap::new();
    for (d, plan) in scan_result.domains.iter().enumerate() {
        for scope in &plan.scopes {
            let geo = {
                let geodb = &sim.world().geodb;
                geodb
                    .lookup(*scope)
                    .or_else(|| geodb.lookup_addr(scope.addr()))
                    .map(|e| (e.coord, e.error_radius_km))
            };
            let Some((coord, err_km)) = geo else { continue };
            for b in &bound {
                let radius = radii.radius(b.pop, cfg.fallback_radius_km);
                if coord.distance_km(&pops[b.pop].coord) <= radius + err_km {
                    assigned.entry(b.pop).or_default().push((d, *scope));
                }
            }
        }
    }

    // 5. The probing loops: one work unit per ⟨PoP, domain⟩ stream,
    //    fanned out over the deterministic executor.
    let stage = Instant::now();
    let t0 = SimTime::from_hours(8);
    let metrics = Arc::clone(sim.metrics());
    metrics.counter("cacheprobe.runs").inc();
    metrics
        .counter("cacheprobe.pops_bound")
        .add(bound.len() as u64);
    metrics
        .counter("cacheprobe.domains_selected")
        .add(domains.len() as u64);
    let assignment_sizes = metrics.histogram("cacheprobe.assignment_size");
    let mut result = CacheProbeResult::new(domains.clone(), bound.clone(), radii, scan_result);

    // Telemetry handles (one table per bound PoP) and query templates
    // (one per domain), resolved/rendered once — nothing in the fan-out
    // formats a metric name or encodes a domain name again.
    let pop_metrics: Vec<ProbeMetrics> = bound
        .iter()
        .map(|b| ProbeMetrics::resolve(&metrics, pops[b.pop].code))
        .collect();
    let templates: Vec<wire::ProbeQueryTemplate> =
        domains.iter().map(wire::ProbeQueryTemplate::new).collect();
    let mut units: Vec<ProbeUnit> = Vec::new();
    for (bi, b) in bound.iter().enumerate() {
        let list = assigned.get(&b.pop).cloned().unwrap_or_default();
        let mut per_domain: Vec<Vec<Prefix>> = vec![Vec::new(); domains.len()];
        for (d, scope) in &list {
            per_domain[*d].push(*scope);
        }
        result.assigned_per_pop.insert(b.pop, list.len());
        assignment_sizes.record(list.len() as u64);
        pop_metrics[bi].assigned.add(list.len() as u64);
        for (d, scopes) in per_domain.into_iter().enumerate() {
            if !scopes.is_empty() {
                units.push(ProbeUnit {
                    bound_idx: bi,
                    domain: d,
                    scopes,
                });
            }
        }
    }

    let view = sim.view();
    let tallies: Vec<UnitTally> = par_map(&units, |_, u| {
        probe_unit(
            &view,
            &bound[u.bound_idx],
            &templates[u.domain],
            &u.scopes,
            cfg,
            t0,
            &pop_metrics[u.bound_idx],
        )
    });

    // Ordered reduction: merge in unit order — a pure function of the
    // work list, never of the thread interleaving.
    for (u, tally) in units.iter().zip(tallies) {
        let pop = bound[u.bound_idx].pop;
        result.probes_sent += tally.probes_sent;
        result.scope0_hits += tally.scope0_hits;
        result.drops += tally.drops;
        for (query_scope, resp_scope, remaining) in tally.hits {
            result.record_hit(u.domain, pop, query_scope, resp_scope, remaining);
        }
        for (scope, (attempts, hits)) in tally.counts {
            let c = result.probe_counts.entry((u.domain, scope)).or_default();
            c.attempts += attempts;
            c.hits += hits;
        }
        sim.absorb_session(&tally.session);
    }
    timings.push(("probing".into(), stage.elapsed().as_secs_f64()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{World, WorldConfig};

    fn run_tiny(seed: u64) -> (Sim, CacheProbeResult) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::new(world);
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0; // ≈ one pass over each list
        cfg.calibration_sample = 250;
        let result = run_technique(&mut sim, &cfg, &universe);
        (sim, result)
    }

    /// One shared end-to-end run — the expensive part of this module's
    /// tests — reused by every read-only assertion below.
    fn shared_run() -> &'static (Sim, CacheProbeResult) {
        static RUN: std::sync::OnceLock<(Sim, CacheProbeResult)> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run_tiny(101))
    }

    #[test]
    fn technique_end_to_end_detects_activity() {
        let (sim, result) = shared_run();
        assert!(result.probes_sent > 0);
        let active = result.active_set();
        assert!(
            active.num_slash24s() > 0,
            "no active prefixes found ({} probes)",
            result.probes_sent
        );
        // Active space is a subset of the (routed) universe and every
        // detected /24 belongs to a prefix with real activity nearby —
        // precision is checked properly in the analysis crate.
        assert!(active.num_slash24s() <= sim.world().routed_slash24s() * 2);
    }

    #[test]
    fn probing_selects_paper_domains() {
        let world = World::generate(WorldConfig::tiny(102));
        let sim = Sim::new(world);
        let domains = select_domains(&sim, &ProbeConfig::default());
        let names: Vec<String> = domains.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "www.google.com",
                "www.youtube.com",
                "facebook.com",
                "www.wikipedia.org",
                "cdn.msvalidation.example",
            ]
        );
    }

    #[test]
    fn hits_record_scope_pairs_for_table2() {
        let (_, result) = shared_run();
        let total: u64 = result.scope_pairs.values().sum();
        assert!(total > 0, "no scope pairs recorded");
        // Most response scopes equal the query scope (Table 2: ~90%).
        let exact: u64 = result
            .scope_pairs
            .iter()
            .filter(|((_, q, r), _)| q == r)
            .map(|(_, c)| *c)
            .sum();
        let frac = exact as f64 / total as f64;
        assert!(frac > 0.75, "exact-scope fraction {frac}");
    }

    #[test]
    fn per_pop_density_populated() {
        let (_, result) = shared_run();
        let with_hits = result
            .pop_hit_prefixes
            .values()
            .filter(|s| s.num_slash24s() > 0)
            .count();
        assert!(with_hits >= 2, "only {with_hits} PoPs saw hits");
    }

    #[test]
    fn deterministic_run_even_across_thread_interleavings() {
        let (sim_a, a) = run_tiny(105);
        let (sim_b, b) = run_tiny(105);
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.active_set().num_slash24s(), b.active_set().num_slash24s());
        assert_eq!(a.scope0_hits, b.scope0_hits);
        assert_eq!(a.hits.len(), b.hits.len());
        // The telemetry snapshot — every counter and histogram in the
        // registry, gpdns and probe side alike — must also agree
        // byte-for-byte: all updates are commutative atomics, so thread
        // scheduling must not leak into totals.
        assert_eq!(
            sim_a.metrics().snapshot().to_json(),
            sim_b.metrics().snapshot().to_json()
        );
    }

    #[test]
    fn identical_results_at_one_two_and_eight_threads() {
        // The executor contract: worker count changes wall time only.
        // Results AND telemetry snapshots are byte-identical at 1, 2,
        // and 8 threads.
        let (sim_1, r_1) = clientmap_par::with_threads(1, || run_tiny(107));
        let snap_1 = sim_1.metrics().snapshot().to_json();
        for threads in [2usize, 8] {
            let (sim_n, r_n) = clientmap_par::with_threads(threads, || run_tiny(107));
            assert_eq!(r_1.probes_sent, r_n.probes_sent, "{threads} threads");
            assert_eq!(r_1.scope0_hits, r_n.scope0_hits, "{threads} threads");
            assert_eq!(r_1.drops, r_n.drops, "{threads} threads");
            assert_eq!(r_1.hits, r_n.hits, "{threads} threads");
            assert_eq!(r_1.probe_counts, r_n.probe_counts, "{threads} threads");
            assert_eq!(r_1.scope_pairs, r_n.scope_pairs, "{threads} threads");
            assert_eq!(
                r_1.active_set().num_slash24s(),
                r_n.active_set().num_slash24s(),
                "{threads} threads"
            );
            assert_eq!(
                snap_1,
                sim_n.metrics().snapshot().to_json(),
                "telemetry diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn probe_counters_reconcile_with_result() {
        let (sim, result) = shared_run();
        let snap = sim.metrics().snapshot();
        let attempts = snap.counter("cacheprobe.attempts");
        let redundancy = u64::from(ProbeConfig::test_scale().redundancy);
        assert_eq!(
            snap.counter("cacheprobe.probes_sent"),
            redundancy * attempts
        );
        assert_eq!(snap.counter("cacheprobe.probes_sent"), result.probes_sent);
        assert_eq!(
            snap.counter("cacheprobe.outcome.hit")
                + snap.counter("cacheprobe.outcome.scope0")
                + snap.counter("cacheprobe.outcome.miss")
                + snap.counter("cacheprobe.outcome.dropped"),
            attempts
        );
        assert_eq!(
            snap.counter("cacheprobe.outcome.scope0"),
            result.scope0_hits
        );
        assert_eq!(snap.counter("cacheprobe.outcome.dropped"), result.drops);
        // `result.hits` aggregates by (domain, scope); sum the per-key
        // event counts to compare against the per-event counter.
        let hit_events: u64 = result.hits.values().map(|h| h.hits).sum();
        assert_eq!(snap.counter("cacheprobe.outcome.hit"), hit_events);
        // Per-PoP families sum back to the global counters.
        let pops = clientmap_sim::pop_catalog();
        let pop_attempts: u64 = pops
            .iter()
            .map(|p| snap.counter(&format!("cacheprobe.pop.{}.attempts", p.code)))
            .sum();
        let pop_hits: u64 = pops
            .iter()
            .map(|p| snap.counter(&format!("cacheprobe.pop.{}.hits", p.code)))
            .sum();
        assert_eq!(pop_attempts, attempts);
        assert_eq!(pop_hits, snap.counter("cacheprobe.outcome.hit"));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

        /// Same seed ⇒ byte-identical metrics snapshots, for arbitrary
        /// seeds: the end-to-end determinism claim, stated as a property.
        #[test]
        fn metrics_snapshot_reproduces_for_any_seed(seed in 200u64..240) {
            let (sim_a, _) = run_tiny(seed);
            let (sim_b, _) = run_tiny(seed);
            proptest::prop_assert_eq!(
                sim_a.metrics().snapshot().to_json(),
                sim_b.metrics().snapshot().to_json()
            );
        }
    }
}
