//! The probing loop (§3.1.1, "probing details") and the end-to-end
//! technique runner.
//!
//! Probing is embarrassingly parallel — each ⟨PoP, domain⟩ probe stream
//! is an independent connection with its own session state — so the
//! runner fans the streams out as work units over
//! [`clientmap_par::par_map`], sharing the immutable simulation core.
//! Results merge in work-unit order (bound-PoP order × domain order),
//! an ordered reduction that makes the output — reports and telemetry
//! snapshots alike — byte-identical at any thread count.
//!
//! The per-probe inner loop runs on the zero-allocation fast lane:
//! queries render from a pre-built [`wire::ProbeQueryTemplate`] into a
//! reused buffer, responses land in another, and telemetry handles are
//! resolved once per unit, so steady-state probing never touches the
//! allocator or the registry lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use clientmap_dns::{wire, DomainName, Message, Question};
use clientmap_net::Prefix;
use clientmap_par::par_map;
use clientmap_sim::{
    BatchConn, BatchDomain, GpdnsSession, PopId, ProbeOutcome, ScopeLane, Sim, SimTime, SimView,
};
use clientmap_store::{
    CalibrationRecord, ConfidenceRecord, HitEvent, RecordKey, ScopeRecord, SweepSnapshot,
};
use clientmap_telemetry::{Counter, Histogram, MetricsRegistry};

use crate::calibrate::{calibrate, calibrate_batched, replay_calibration, sample_prefixes};
use crate::cluster::{synthesize_member_record, ClusteredPlan};
use crate::plan::{
    plan_units, ExhaustivePlan, ExtrapolatedSlot, PlanOutcome, ProbePlan, WarmStartPlan,
};
use crate::resilience::{
    attempt_id, observe_response, resilient_attempt, FaultCounters, WireObservation,
};
use crate::results::{CacheProbeResult, FaultSummary};
use crate::scopescan::scan;
use crate::sweep;
use crate::vantage::{discover_with, BoundVantage};
use crate::ProbeConfig;

/// Merges the outcome of one redundant query into the running best:
/// `Hit > HitScopeZero > Miss > Dropped`, first occurrence of the
/// highest rank winning.
pub fn merge_outcome(best: ProbeOutcome, next: ProbeOutcome) -> ProbeOutcome {
    fn rank(o: &ProbeOutcome) -> u8 {
        match o {
            ProbeOutcome::Dropped => 0,
            ProbeOutcome::Miss => 1,
            ProbeOutcome::HitScopeZero => 2,
            ProbeOutcome::Hit { .. } => 3,
        }
    }
    if rank(&next) > rank(&best) {
        next
    } else {
        best
    }
}

/// Builds the probe query for a ⟨domain, scope⟩ pair; the ID is patched
/// per attempt.
fn encode_probe_query(domain: &DomainName, scope: Prefix) -> Option<Vec<u8>> {
    let q = Message::query(
        0,
        Question {
            name: domain.clone(),
            rtype: clientmap_dns::RrType::A,
            class: clientmap_dns::RrClass::In,
        },
    )
    .with_recursion_desired(false)
    .with_ecs(scope);
    wire::encode(&q).ok()
}

/// Classifies a response after verifying its transaction ID and echoed
/// question; anything unverifiable — including error rcodes, which the
/// plain path does not retry — counts as [`ProbeOutcome::Dropped`].
/// (The resilient path classifies through
/// [`observe_response`] directly and counts each failure class.)
fn classify_checked(query: &[u8], id: u16, resp: Option<&[u8]>) -> ProbeOutcome {
    match observe_response(query, id, resp) {
        WireObservation::Ok(outcome) => outcome,
        _ => ProbeOutcome::Dropped,
    }
}

/// Sends `cfg.redundancy` non-recursive ECS queries for
/// ⟨PoP, prefix, domain⟩ (covering multiple cache pools), each with a
/// distinct transaction ID, and returns the best verified outcome.
/// Hit > HitScopeZero > Miss > Dropped.
#[allow(clippy::too_many_arguments)]
pub fn probe_scope_with(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
) -> ProbeOutcome {
    let Some(mut packet) = encode_probe_query(domain, scope) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let id = attempt_id(t, scope, r, 0);
        packet[0..2].copy_from_slice(&id.to_be_bytes());
        let resp = view.gpdns_query(
            session,
            bound.prober_key(),
            bound.coord(),
            &packet,
            cfg.transport,
            rt,
        );
        best = merge_outcome(best, classify_checked(&packet, id, resp.as_deref()));
        if matches!(best, ProbeOutcome::Hit { .. }) {
            return best;
        }
    }
    best
}

/// Fault-aware sibling of [`probe_scope_with`]: each redundant query
/// gets bounded retries with seeded exponential backoff under the
/// per-probe deadline budget, and a TC-truncated UDP response upgrades
/// the retry to TCP. Used by calibration when fault injection is on.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_scope_resilient_with(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
    fc: &FaultCounters,
) -> ProbeOutcome {
    let Some(mut packet) = encode_probe_query(domain, scope) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let outcome = resilient_attempt(
            bound.prober_key(),
            rt,
            cfg.transport,
            &cfg.retry,
            fc,
            |retry, at, transport| {
                let id = attempt_id(t, scope, r, retry);
                packet[0..2].copy_from_slice(&id.to_be_bytes());
                let resp = view.gpdns_query(
                    session,
                    bound.prober_key(),
                    bound.coord(),
                    &packet,
                    transport,
                    at,
                );
                observe_response(&packet, id, resp.as_deref())
            },
        );
        best = merge_outcome(best, outcome);
        if matches!(best, ProbeOutcome::Hit { .. }) {
            return best;
        }
    }
    best
}

/// Convenience wrapper over [`probe_scope_with`] driving the [`Sim`]'s
/// built-in session (single-threaded callers: examples, ablations).
/// Rate-limiter state persists across calls, as it must for UDP
/// throttling to be observable.
pub fn probe_scope(
    sim: &mut Sim,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
) -> ProbeOutcome {
    let Some(mut packet) = encode_probe_query(domain, scope) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let id = attempt_id(t, scope, r, 0);
        packet[0..2].copy_from_slice(&id.to_be_bytes());
        let resp = sim.gpdns_query(
            bound.prober_key(),
            bound.coord(),
            &packet,
            cfg.transport,
            rt,
        );
        best = merge_outcome(best, classify_checked(&packet, id, resp.as_deref()));
        if matches!(best, ProbeOutcome::Hit { .. }) {
            return best;
        }
    }
    best
}

/// Zero-allocation variant of [`probe_scope_with`]: the query renders
/// from a pre-built [`wire::ProbeQueryTemplate`] into a caller-reused
/// buffer and the response lands in another, so the steady-state
/// probing loop performs no heap allocation. Sends byte-for-byte the
/// same queries — and returns the same outcome — as the slow path.
#[allow(clippy::too_many_arguments)]
pub fn probe_scope_fast(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    template: &wire::ProbeQueryTemplate,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
    query_buf: &mut Vec<u8>,
    resp_buf: &mut Vec<u8>,
) -> ProbeOutcome {
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let id = attempt_id(t, scope, r, 0);
        template.render(id, scope, query_buf);
        let got = view.gpdns_query_into(
            session,
            bound.prober_key(),
            bound.coord(),
            query_buf,
            cfg.transport,
            rt,
            resp_buf,
        );
        best = merge_outcome(
            best,
            classify_checked(query_buf, id, got.then_some(resp_buf.as_slice())),
        );
        if matches!(best, ProbeOutcome::Hit { .. }) {
            return best;
        }
    }
    best
}

/// Fault-aware sibling of [`probe_scope_fast`]: retries, backoff,
/// deadline budget, and the TC → TCP upgrade, all on the
/// zero-allocation lane. Drives the probing sweep when fault injection
/// is on.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_scope_resilient_fast(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    template: &wire::ProbeQueryTemplate,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
    fc: &FaultCounters,
    query_buf: &mut Vec<u8>,
    resp_buf: &mut Vec<u8>,
) -> ProbeOutcome {
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let outcome = resilient_attempt(
            bound.prober_key(),
            rt,
            cfg.transport,
            &cfg.retry,
            fc,
            |retry, at, transport| {
                let id = attempt_id(t, scope, r, retry);
                template.render(id, scope, query_buf);
                let got = view.gpdns_query_into(
                    session,
                    bound.prober_key(),
                    bound.coord(),
                    query_buf,
                    transport,
                    at,
                    resp_buf,
                );
                observe_response(query_buf, id, got.then_some(resp_buf.as_slice()))
            },
        );
        best = merge_outcome(best, outcome);
        if matches!(best, ProbeOutcome::Hit { .. }) {
            return best;
        }
    }
    best
}

/// Selects the probing domains: the `num_alexa_domains` most popular
/// ECS+TTL-qualified catalog domains, plus the Microsoft validation
/// domain if configured.
pub fn select_domains(sim: &Sim, cfg: &ProbeConfig) -> Vec<DomainName> {
    let catalog = &sim.world().domains;
    let mut domains: Vec<DomainName> = catalog
        .top_probeable(cfg.num_alexa_domains)
        .iter()
        .map(|s| s.name.clone())
        .collect();
    if cfg.include_microsoft_domain {
        let ms = catalog.microsoft_cdn().name.clone();
        if !domains.contains(&ms) {
            domains.push(ms);
        }
    }
    domains
}

/// Telemetry handles for one PoP worker: the workspace-wide probe
/// counters (shared `Arc`s — concurrent workers bump the same atomics)
/// plus this worker's per-PoP family. Resolved once per worker so the
/// probing loop itself never touches the registry lock.
///
/// The outcome counters satisfy two reconciliation invariants checked
/// after every end-to-end run: `probes_sent == redundancy × attempts`
/// and `hit + scope0 + miss + dropped == attempts`.
struct ProbeMetrics {
    attempts: Arc<Counter>,
    probes_sent: Arc<Counter>,
    hit: Arc<Counter>,
    scope0: Arc<Counter>,
    miss: Arc<Counter>,
    dropped: Arc<Counter>,
    hit_ttl_secs: Arc<Histogram>,
    pop_attempts: Arc<Counter>,
    pop_hits: Arc<Counter>,
    /// `cacheprobe.pop.<code>.assigned` — resolved here with the rest
    /// so assignment accounting never formats a metric name inline.
    assigned: Arc<Counter>,
}

impl ProbeMetrics {
    fn resolve(m: &MetricsRegistry, pop_code: &str) -> ProbeMetrics {
        ProbeMetrics {
            attempts: m.counter("cacheprobe.attempts"),
            probes_sent: m.counter("cacheprobe.probes_sent"),
            hit: m.counter("cacheprobe.outcome.hit"),
            scope0: m.counter("cacheprobe.outcome.scope0"),
            miss: m.counter("cacheprobe.outcome.miss"),
            dropped: m.counter("cacheprobe.outcome.dropped"),
            hit_ttl_secs: m.histogram("cacheprobe.hit.remaining_ttl_secs"),
            pop_attempts: m.counter(&format!("cacheprobe.pop.{pop_code}.attempts")),
            pop_hits: m.counter(&format!("cacheprobe.pop.{pop_code}.hits")),
            assigned: m.counter(&format!("cacheprobe.pop.{pop_code}.assigned")),
        }
    }
}

/// One work unit for the executor: a single domain's probe stream at
/// one bound PoP. Units are built in bound-PoP × domain order, and the
/// reduction consumes them in exactly that order.
/// One shardable probe work unit: a ⟨PoP, domain⟩ stream and its
/// assigned scopes. Public so [`crate::plan::ProbePlan`] implementors
/// can build and split unit lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeUnit {
    /// Index into the bound-vantage list (and its telemetry table).
    pub bound_idx: usize,
    /// Index into the selected-domain list.
    pub domain: usize,
    /// Assigned query scopes, in assignment order.
    pub scopes: Vec<Prefix>,
}

/// What one unit's worker produced.
struct UnitTally {
    /// (query scope, response scope, remaining TTL) per hit.
    hits: Vec<(Prefix, Prefix, u32)>,
    /// query scope → (attempts, hits, scope0, drops) — the activity
    /// ranking plus the sweep store's per-scope record fields.
    counts: HashMap<Prefix, (u64, u64, u64, u64)>,
    attempts: u64,
    probes_sent: u64,
    scope0_hits: u64,
    drops: u64,
    /// The unit's circuit breaker tripped: `breaker_threshold`
    /// consecutive probes were lost and the rest of the stream was
    /// abandoned (fault injection only).
    tripped: bool,
    session: GpdnsSession,
}

/// Probes one ⟨PoP, domain⟩ stream for the whole window on the
/// zero-allocation fast lane.
///
/// Slot `k` of the stream fires at `t0 + k·slot_secs`; the stream makes
/// up to nine passes over its scope list and stops at the window edge
/// (the paper's 120 h at 50 q/s over ~2.4M prefixes ≈ 9 passes). Each
/// stream is its own connection with its own session, so units are
/// fully independent — the executor may run them in any order.
#[allow(clippy::too_many_arguments)]
fn probe_unit(
    view: &SimView<'_>,
    bound: &BoundVantage,
    template: &wire::ProbeQueryTemplate,
    scopes: &[Prefix],
    cfg: &ProbeConfig,
    t0: SimTime,
    metrics: &ProbeMetrics,
    fc: Option<&FaultCounters>,
) -> UnitTally {
    let mut tally = UnitTally {
        hits: Vec::new(),
        counts: HashMap::new(),
        attempts: 0,
        probes_sent: 0,
        scope0_hits: 0,
        drops: 0,
        tripped: false,
        session: GpdnsSession::new(),
    };
    let window_secs = cfg.duration_hours * 3600.0;
    let slot_secs = 1.0 / cfg.rate_per_domain;
    let total_slots = (window_secs * cfg.rate_per_domain) as u64;
    let loops = (total_slots / scopes.len() as u64).clamp(1, 9);
    let mut query_buf = Vec::with_capacity(64);
    let mut resp_buf = Vec::with_capacity(512);
    let mut slot = 0u64;
    let mut consecutive_drops = 0u32;
    'window: for _pass in 0..loops {
        for &scope in scopes {
            // The first slot always fires; later ones only inside the
            // probing window.
            let offset_secs = slot as f64 * slot_secs;
            if slot > 0 && offset_secs >= window_secs {
                break 'window;
            }
            slot += 1;
            let t = t0 + SimTime::from_secs_f64(offset_secs);
            tally.attempts += 1;
            tally.probes_sent += u64::from(cfg.redundancy);
            metrics.attempts.inc();
            metrics.pop_attempts.inc();
            metrics.probes_sent.add(u64::from(cfg.redundancy));
            let count = tally.counts.entry(scope).or_insert((0, 0, 0, 0));
            count.0 += 1;
            let outcome = match fc {
                Some(fc) => probe_scope_resilient_fast(
                    view,
                    &mut tally.session,
                    bound,
                    template,
                    scope,
                    cfg,
                    t,
                    fc,
                    &mut query_buf,
                    &mut resp_buf,
                ),
                None => probe_scope_fast(
                    view,
                    &mut tally.session,
                    bound,
                    template,
                    scope,
                    cfg,
                    t,
                    &mut query_buf,
                    &mut resp_buf,
                ),
            };
            match outcome {
                ProbeOutcome::Hit {
                    scope: resp_scope,
                    remaining_ttl,
                } => {
                    count.1 += 1;
                    metrics.hit.inc();
                    metrics.pop_hits.inc();
                    metrics.hit_ttl_secs.record(u64::from(remaining_ttl));
                    tally.hits.push((scope, resp_scope, remaining_ttl));
                }
                ProbeOutcome::HitScopeZero => {
                    metrics.scope0.inc();
                    tally.scope0_hits += 1;
                    count.2 += 1;
                }
                ProbeOutcome::Miss => metrics.miss.inc(),
                ProbeOutcome::Dropped => {
                    metrics.dropped.inc();
                    tally.drops += 1;
                    count.3 += 1;
                }
            }
            // Circuit breaker: a PoP that eats everything we send —
            // even after retries — is almost certainly dark; abandon
            // the stream rather than burn the window into it.
            if fc.is_some() {
                if matches!(outcome, ProbeOutcome::Dropped) {
                    consecutive_drops += 1;
                    if consecutive_drops >= cfg.retry.breaker_threshold {
                        tally.tripped = true;
                        break 'window;
                    }
                } else {
                    consecutive_drops = 0;
                }
            }
        }
    }
    tally
}

/// Serves one accumulated batch and folds its outcomes into the tally —
/// the bulk classifier of the batched lane. Counts follow the scalar
/// loop exactly (per-slot attempts, per-scope tuple bumps, hits in slot
/// order); the shared metric counters are left to the caller's
/// end-of-unit flush. `false` means the batch failed the kernel's
/// validation pass, which leaves the connection untouched so the caller
/// can abandon the lane without any global side effects.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    view: &SimView<'_>,
    conn: &mut BatchConn,
    dom: &BatchDomain<'_>,
    lanes: &[ScopeLane],
    batch: &wire::ProbeBatch,
    events: &[(u32, SimTime)],
    scopes: &[Prefix],
    redundancy: u32,
    outcomes: &mut Vec<ProbeOutcome>,
    tally: &mut UnitTally,
) -> bool {
    outcomes.clear();
    if !view.gpdns.serve_batch(
        conn, dom, view.auth, lanes, batch, events, redundancy, outcomes,
    ) {
        return false;
    }
    for (&(lane, _), outcome) in events.iter().zip(outcomes.iter()) {
        let scope = scopes[lane as usize];
        tally.attempts += 1;
        tally.probes_sent += u64::from(redundancy);
        let count = tally.counts.entry(scope).or_insert((0, 0, 0, 0));
        count.0 += 1;
        match *outcome {
            ProbeOutcome::Hit {
                scope: resp_scope,
                remaining_ttl,
            } => {
                count.1 += 1;
                tally.hits.push((scope, resp_scope, remaining_ttl));
            }
            ProbeOutcome::HitScopeZero => {
                tally.scope0_hits += 1;
                count.2 += 1;
            }
            ProbeOutcome::Miss => {}
            ProbeOutcome::Dropped => {
                tally.drops += 1;
                count.3 += 1;
            }
        }
    }
    true
}

/// Batched sibling of [`probe_unit`]: the same ⟨PoP, domain⟩ stream,
/// served through the simulator's batch kernel. Routing, admission
/// state, and the per-scope cache lanes hoist out of the per-probe
/// loop; queries render into one reused [`wire::ProbeBatch`] arena
/// (`cfg.batch_size` events per serve, `0` = the whole stream at once);
/// outcomes fold in bulk; and the shared probe counters flush once per
/// unit — an `add(n)` for every `inc()` the scalar lane performs, so
/// the registry lands byte-identical.
///
/// Returns `None` — before any session or registry effect — when the
/// core refuses a batch connection (fault injection enabled) or a batch
/// fails validation; the caller falls back to the scalar lane.
fn probe_unit_batched(
    view: &SimView<'_>,
    bound: &BoundVantage,
    template: &wire::ProbeQueryTemplate,
    scopes: &[Prefix],
    cfg: &ProbeConfig,
    t0: SimTime,
    metrics: &ProbeMetrics,
) -> Option<UnitTally> {
    let mut tally = UnitTally {
        hits: Vec::new(),
        counts: HashMap::new(),
        attempts: 0,
        probes_sent: 0,
        scope0_hits: 0,
        drops: 0,
        tripped: false,
        session: GpdnsSession::new(),
    };
    let mut conn = view.gpdns.open_batch(
        view.catchments,
        &tally.session,
        bound.prober_key(),
        bound.coord(),
        cfg.transport,
    )?;
    let dom = view.gpdns.batch_domain(&conn, template.qname_wire())?;
    let lanes: Vec<ScopeLane> = scopes
        .iter()
        .map(|&s| view.gpdns.scope_lane(view.auth, &dom, s))
        .collect();

    let window_secs = cfg.duration_hours * 3600.0;
    let slot_secs = 1.0 / cfg.rate_per_domain;
    let total_slots = (window_secs * cfg.rate_per_domain) as u64;
    let loops = (total_slots / scopes.len() as u64).clamp(1, 9);
    let chunk = if cfg.batch_size == 0 {
        usize::MAX
    } else {
        cfg.batch_size
    };
    let mut batch = wire::ProbeBatch::new();
    let mut events: Vec<(u32, SimTime)> = Vec::new();
    let mut outcomes: Vec<ProbeOutcome> = Vec::new();
    let mut slot = 0u64;
    'window: for _pass in 0..loops {
        for (li, &scope) in scopes.iter().enumerate() {
            // The first slot always fires; later ones only inside the
            // probing window.
            let offset_secs = slot as f64 * slot_secs;
            if slot > 0 && offset_secs >= window_secs {
                break 'window;
            }
            slot += 1;
            let t = t0 + SimTime::from_secs_f64(offset_secs);
            batch.push(template, attempt_id(t, scope, 0, 0), scope);
            events.push((li as u32, t));
            if events.len() >= chunk {
                if !flush_batch(
                    view,
                    &mut conn,
                    &dom,
                    &lanes,
                    &batch,
                    &events,
                    scopes,
                    cfg.redundancy,
                    &mut outcomes,
                    &mut tally,
                ) {
                    return None;
                }
                batch.clear();
                events.clear();
            }
        }
    }
    if !events.is_empty()
        && !flush_batch(
            view,
            &mut conn,
            &dom,
            &lanes,
            &batch,
            &events,
            scopes,
            cfg.redundancy,
            &mut outcomes,
            &mut tally,
        )
    {
        return None;
    }
    view.gpdns.close_batch(conn, &mut tally.session);

    // Bulk telemetry flush: the counters are shared atomics, so one
    // `add(n)` per unit is indistinguishable from the scalar lane's n
    // `inc()`s once every unit lands.
    let hits = tally.hits.len() as u64;
    let misses = tally.attempts - hits - tally.scope0_hits - tally.drops;
    metrics.attempts.add(tally.attempts);
    metrics.pop_attempts.add(tally.attempts);
    metrics.probes_sent.add(tally.probes_sent);
    metrics.hit.add(hits);
    metrics.pop_hits.add(hits);
    for &(_, _, remaining) in &tally.hits {
        metrics.hit_ttl_secs.record(u64::from(remaining));
    }
    metrics.scope0.add(tally.scope0_hits);
    metrics.miss.add(misses);
    metrics.dropped.add(tally.drops);
    Some(tally)
}

/// The snapshot key of one ⟨vantage, domain, scope⟩ stream slot.
pub(crate) fn record_key(bound_idx: usize, domain: usize, scope: Prefix) -> RecordKey {
    (bound_idx as u16, domain as u16, scope.addr(), scope.len())
}

/// Replays one stored [`ScopeRecord`] into the result (probe counts,
/// hit families, headline totals) as if its probes had run this sweep.
/// With `metrics` set, the client-side probe counters are bumped too —
/// the warm-partial path, where the skipped share of the window must
/// still land in this run's telemetry. (The full-skip path passes
/// `None` and absorbs the snapshot's whole metrics delta instead.)
fn replay_record(
    result: &mut CacheProbeResult,
    pop: PopId,
    domain: usize,
    scope: Prefix,
    rec: &ScopeRecord,
    redundancy: u32,
    metrics: Option<&ProbeMetrics>,
) {
    if rec.attempts == 0 {
        // Assigned but never reached last sweep — nothing to replay
        // (and nothing was counted, so nothing to re-count).
        return;
    }
    result.probes_sent += rec.attempts * u64::from(redundancy);
    result.scope0_hits += rec.scope0;
    result.drops += rec.drops;
    let c = result.probe_counts.entry((domain, scope)).or_default();
    c.attempts += rec.attempts;
    c.hits += rec.hits();
    c.scope0 += rec.scope0;
    c.drops += rec.drops;
    for e in &rec.hit_events {
        let Ok(resp) = Prefix::new(e.resp_addr, e.resp_len) else {
            continue;
        };
        result.record_hit(domain, pop, scope, resp, e.remaining_ttl);
    }
    if let Some(m) = metrics {
        m.attempts.add(rec.attempts);
        m.pop_attempts.add(rec.attempts);
        m.probes_sent.add(rec.attempts * u64::from(redundancy));
        m.hit.add(rec.hits());
        m.pop_hits.add(rec.hits());
        for e in &rec.hit_events {
            m.hit_ttl_secs.record(u64::from(e.remaining_ttl));
        }
        m.scope0.add(rec.scope0);
        m.miss.add(rec.misses());
        m.dropped.add(rec.drops);
    }
}

/// Folds a clustered plan's extrapolated slots into the sweep: each
/// member inherits a synthesized copy of its representative's fresh
/// record (replayed through the normal record path so headline totals
/// and client telemetry include it) plus a [`ConfidenceRecord`] in the
/// snapshot's provenance column. Runs after the ordered reduction, so
/// visiting `extrapolated` in plan order keeps the fold byte-identical
/// at any thread or shard count. A representative whose stream never
/// produced a probe event copies as an empty record — the next
/// planner's escalation signal, exactly like a breaker-aborted live
/// slot.
fn fold_extrapolated(
    result: &mut CacheProbeResult,
    fresh: &mut BTreeMap<RecordKey, ScopeRecord>,
    confidence: &mut BTreeMap<RecordKey, ConfidenceRecord>,
    extrapolated: &[ExtrapolatedSlot],
    bound: &[BoundVantage],
    pop_metrics: &[ProbeMetrics],
    redundancy: u32,
) {
    for e in extrapolated {
        let rep_rec = fresh.get(&e.rep).cloned().unwrap_or_default();
        let synth = synthesize_member_record(&rep_rec, e.scope);
        replay_record(
            result,
            bound[e.bound_idx].pop,
            e.domain,
            e.scope,
            &synth,
            redundancy,
            Some(&pop_metrics[e.bound_idx]),
        );
        let key = record_key(e.bound_idx, e.domain, e.scope);
        confidence.insert(
            key,
            ConfidenceRecord {
                rep: e.rep,
                confidence: e.confidence,
                prior_verdict: e.prior_verdict,
            },
        );
        fresh.insert(key, synth);
    }
}

/// Runs the full cache-probing technique.
///
/// `universe` is the public probe universe (RIR allocations /
/// Routeviews blocks). Returns everything downstream analysis needs.
pub fn run_technique(sim: &mut Sim, cfg: &ProbeConfig, universe: &[Prefix]) -> CacheProbeResult {
    run_technique_full(sim, cfg, universe, &mut Vec::new(), None).0
}

/// [`run_technique`], additionally appending `(stage, wall seconds)`
/// pairs to `timings` — the side channel `repro bench` reports from.
pub fn run_technique_timed(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    universe: &[Prefix],
    timings: &mut Vec<(String, f64)>,
) -> CacheProbeResult {
    run_technique_full(sim, cfg, universe, timings, None).0
}

/// The full technique with warm-start support: runs cold when `prior`
/// is `None`, otherwise plans an incremental re-sweep against the prior
/// [`SweepSnapshot`] and probes only what the planner emits (new,
/// dirty, rescue, or expired scopes), replaying the rest from the
/// snapshot. Returns the result **and** this sweep's own snapshot.
///
/// Discovery, domain selection, the scope pre-scan, calibration, and
/// PoP assignment always run live — they are cheap relative to the
/// probing window and pin the key spaces (vantage and domain indexes)
/// the snapshot's records are keyed by. The caller is responsible for
/// validating `prior` against the current world seed and config digest
/// (the pipeline layer does); this function trusts its key space.
pub fn run_technique_full(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    universe: &[Prefix],
    timings: &mut Vec<(String, f64)>,
    prior: Option<&SweepSnapshot>,
) -> (CacheProbeResult, SweepSnapshot) {
    let prep = prepare_sweep(sim, cfg, universe, timings, prior);
    execute_sweep(sim, cfg, prep, timings)
}

/// The sweep's preamble, paused at the start of the probing window:
/// bound vantages, calibration, scope→PoP assignment, the (warm)
/// planner's live unit list, and the skipped-record replay set.
///
/// Everything in here is a pure function of ⟨world seed, probing
/// config, universe, prior snapshot⟩, so two processes that prepare the
/// same sweep hold identical prep state. That is the property the
/// distributed driver/worker split builds on: a worker can probe any
/// unit shard ([`probe_shard`]) and ship back a delta that the driver
/// merges ([`merge_shards`]) into output byte-identical to a
/// single-process [`execute_sweep`].
pub struct SweepPrep {
    fc: Option<FaultCounters>,
    bound: Vec<BoundVantage>,
    templates: Vec<wire::ProbeQueryTemplate>,
    pop_metrics: Vec<ProbeMetrics>,
    assigned: HashMap<PopId, Vec<(usize, Prefix)>>,
    units: Vec<ProbeUnit>,
    skipped: Vec<(usize, usize, Prefix, ScopeRecord)>,
    extrapolated: Vec<ExtrapolatedSlot>,
    warm_full_skip: bool,
    /// The prior snapshot, kept whole when the planner emitted zero
    /// probe work — the full-skip finish replays it wholesale.
    full_skip_prior: Option<SweepSnapshot>,
    result: CacheProbeResult,
    snapshot: SweepSnapshot,
    t0: SimTime,
    stage: Instant,
    /// Registry state at the probing-window start; the sweep's stored
    /// metrics delta is measured from here.
    pre: clientmap_telemetry::MetricsSnapshot,
    gpdns_pre: clientmap_sim::GpdnsStats,
}

impl SweepPrep {
    /// Live probe units the planner emitted (the shardable work list).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Scopes in unit `idx` (labels shard work; empty when out of range).
    pub fn unit_len(&self, idx: usize) -> usize {
        self.units.get(idx).map_or(0, |u| u.scopes.len())
    }

    /// True when a warm plan skipped everything — nothing to shard.
    pub fn warm_full_skip(&self) -> bool {
        self.warm_full_skip
    }

    /// Seed of the world this sweep measures.
    pub fn world_seed(&self) -> u64 {
        self.snapshot.world_seed
    }

    /// Digest of the probing-relevant configuration.
    pub fn config_digest(&self) -> u64 {
        self.snapshot.config_digest
    }

    /// True when the sweep runs under fault injection. Faulted shards
    /// ship per-PoP fault books alongside their deltas so the driver
    /// can quarantine globally and plan the rescue phase.
    pub fn faulted(&self) -> bool {
        self.fc.is_some()
    }

    /// Bound vantages in this prep — the valid `bound_idx` range for
    /// wire-decoded rescue units.
    pub fn num_bound(&self) -> usize {
        self.bound.len()
    }

    /// Selected domains in this prep — the valid `domain` range for
    /// wire-decoded rescue units.
    pub fn num_domains(&self) -> usize {
        self.templates.len()
    }
}

/// Runs discovery, domain selection, the scope pre-scan, calibration,
/// PoP assignment, unit building, and warm planning — everything up to
/// (but not including) the probing window — and returns the paused
/// [`SweepPrep`]. `run_technique_full` is exactly
/// [`prepare_sweep`] + [`execute_sweep`].
pub fn prepare_sweep(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    universe: &[Prefix],
    timings: &mut Vec<(String, f64)>,
    prior: Option<&SweepSnapshot>,
) -> SweepPrep {
    let seed = sim.world().config.seed;

    // Fault-injection bookkeeping: counters resolve only when the
    // sim's plan is enabled, so fault-free runs register nothing new
    // and stay byte-identical to the pre-fault pipeline.
    let fc = sim
        .fault_plan()
        .enabled()
        .then(|| FaultCounters::resolve(sim.metrics()));

    // 1. Vantage discovery (optionally capped for ablations). Under
    //    fault injection each VM retries its myaddr exchange.
    let stage = Instant::now();
    let mut bound = discover_with(sim, SimTime::ZERO, &cfg.retry, fc.as_ref());
    if let Some(cap) = cfg.max_pops {
        bound.truncate(cap);
    }
    timings.push(("vantage_discovery".into(), stage.elapsed().as_secs_f64()));

    // 2. Domain selection + authoritative scope pre-scan.
    let stage = Instant::now();
    let domains = select_domains(sim, cfg);
    let scan_result = scan(sim, &domains, universe, SimTime::ZERO);
    timings.push(("scope_scan".into(), stage.elapsed().as_secs_f64()));

    // 3. Service-radius calibration (start a few hours in, so caches
    //    reflect steady-state client activity). Fault-free batched runs
    //    capture per-PoP calibration records for the snapshot, and a
    //    warm re-sweep replays the prior run's records for every clean
    //    PoP — re-sampling and re-probing only PoPs the prior sweep
    //    quarantined (or never calibrated).
    let stage = Instant::now();
    let t_cal = SimTime::from_hours(6);
    let use_batched_cal = cfg.batched_probing && !sim.fault_plan().enabled();
    let mut calibration_records: Vec<CalibrationRecord> = Vec::new();
    let mut calibration_sample: u64 = 0;
    let draw_sample = |sim: &Sim| {
        sample_prefixes(
            sim,
            universe,
            cfg.calibration_sample,
            cfg.calibration_max_error_km,
            seed ^ 0xCA11,
        )
    };
    let radii = 'cal: {
        if use_batched_cal {
            if let Some(prior) = prior.filter(|p| !p.calibration.is_empty()) {
                // A prior record covers its PoP unless that PoP was
                // quarantined last sweep (its radius is then suspect).
                let covered: std::collections::HashSet<u64> = prior
                    .calibration
                    .iter()
                    .map(|r| r.pop)
                    .filter(|p| !prior.quarantined_pops().contains(p))
                    .collect();
                let dirty: Vec<BoundVantage> = bound
                    .iter()
                    .filter(|b| !covered.contains(&(b.pop as u64)))
                    .cloned()
                    .collect();
                let replayed: Vec<CalibrationRecord> = prior
                    .calibration
                    .iter()
                    .filter(|r| {
                        covered.contains(&r.pop) && bound.iter().any(|b| b.pop as u64 == r.pop)
                    })
                    .cloned()
                    .collect();
                if dirty.is_empty() {
                    // Every bound PoP replays: skip the sample draw
                    // entirely — its size rides along in the snapshot.
                    calibration_sample = prior.calibration_sample;
                    calibration_records = replayed;
                    break 'cal replay_calibration(
                        sim,
                        &calibration_records,
                        calibration_sample,
                        cfg.transport,
                    );
                }
                let sample = draw_sample(sim);
                if let Some(live) = calibrate_batched(sim, &dirty, &domains, &sample, cfg, t_cal) {
                    let mut radii =
                        replay_calibration(sim, &replayed, sample.len() as u64, cfg.transport);
                    radii.radius_km.extend(live.radii.radius_km);
                    radii.hit_distances_km.extend(live.radii.hit_distances_km);
                    calibration_records = replayed;
                    calibration_records.extend(live.records);
                    calibration_records.sort_by_key(|r| r.pop);
                    calibration_sample = sample.len() as u64;
                    break 'cal radii;
                }
            }
            let sample = draw_sample(sim);
            if let Some(out) = calibrate_batched(sim, &bound, &domains, &sample, cfg, t_cal) {
                calibration_records = out.records;
                calibration_sample = sample.len() as u64;
                break 'cal out.radii;
            }
        }
        // Scalar lane: faulted runs (which must ride the resilient
        // path) and `batched_probing = false`. No records are captured,
        // so the next warm sweep calibrates live again.
        let sample = draw_sample(sim);
        calibrate(sim, &bound, &domains, &sample, cfg, t_cal)
    };
    timings.push(("calibration".into(), stage.elapsed().as_secs_f64()));

    // 4. Scope → PoP assignment by service radius (MaxMind location +
    //    error radius possibly within the radius).
    let pops = clientmap_sim::pop_catalog();
    let mut assigned: HashMap<PopId, Vec<(usize, Prefix)>> = HashMap::new();
    for (d, plan) in scan_result.domains.iter().enumerate() {
        for scope in &plan.scopes {
            let geo = {
                let geodb = &sim.world().geodb;
                geodb
                    .lookup(*scope)
                    .or_else(|| geodb.lookup_addr(scope.addr()))
                    .map(|e| (e.coord, e.error_radius_km))
            };
            let Some((coord, err_km)) = geo else { continue };
            for b in &bound {
                let radius = radii.radius(b.pop, cfg.fallback_radius_km);
                if coord.distance_km(&pops[b.pop].coord) <= radius + err_km {
                    assigned.entry(b.pop).or_default().push((d, *scope));
                }
            }
        }
    }

    // 5. The probing loops: one work unit per ⟨PoP, domain⟩ stream,
    //    fanned out over the deterministic executor.
    let stage = Instant::now();
    let t0 = SimTime::from_hours(8);
    let metrics = Arc::clone(sim.metrics());
    metrics.counter("cacheprobe.runs").inc();
    metrics
        .counter("cacheprobe.pops_bound")
        .add(bound.len() as u64);
    metrics
        .counter("cacheprobe.domains_selected")
        .add(domains.len() as u64);
    let assignment_sizes = metrics.histogram("cacheprobe.assignment_size");
    let mut result = CacheProbeResult::new(domains.clone(), bound.clone(), radii, scan_result);

    // Telemetry handles (one table per bound PoP) and query templates
    // (one per domain), resolved/rendered once — nothing in the fan-out
    // formats a metric name or encodes a domain name again.
    let pop_metrics: Vec<ProbeMetrics> = bound
        .iter()
        .map(|b| ProbeMetrics::resolve(&metrics, pops[b.pop].code))
        .collect();
    let templates: Vec<wire::ProbeQueryTemplate> =
        domains.iter().map(wire::ProbeQueryTemplate::new).collect();
    let mut units: Vec<ProbeUnit> = Vec::new();
    for (bi, b) in bound.iter().enumerate() {
        let list = assigned.get(&b.pop).cloned().unwrap_or_default();
        let mut per_domain: Vec<Vec<Prefix>> = vec![Vec::new(); domains.len()];
        for (d, scope) in &list {
            per_domain[*d].push(*scope);
        }
        result.assigned_per_pop.insert(b.pop, list.len());
        assignment_sizes.record(list.len() as u64);
        pop_metrics[bi].assigned.add(list.len() as u64);
        for (d, scopes) in per_domain.into_iter().enumerate() {
            if !scopes.is_empty() {
                units.push(ProbeUnit {
                    bound_idx: bi,
                    domain: d,
                    scopes,
                });
            }
        }
    }

    // Planning: pick the [`ProbePlan`] for this sweep — warm starts
    // classify every assigned ⟨vantage, domain, scope⟩ instance against
    // the prior snapshot (probe again only when new, quarantine-dirty,
    // rescue-worthy, or expired under the rotating freshness budget);
    // cold runs take the exhaustive pass-through. Both ride the same
    // `plan_units` seam a future clustered planner plugs into.
    let digest = sweep::config_digest(sim, cfg, universe);
    let epoch = prior.map_or(1, |p| p.epoch + 1);
    let mut snapshot = SweepSnapshot::new(seed, digest);
    snapshot.epoch = epoch;
    // This sweep's calibration (captured live or replayed forward)
    // persists with the snapshot, so the next warm run can skip the
    // sample draw and the probing behind it.
    snapshot.calibration = calibration_records;
    snapshot.calibration_sample = calibration_sample;
    let warm_plan = WarmStartPlan {
        world_seed: seed,
        epoch,
        expiry_budget: cfg.expiry_budget,
    };
    let clustered = cfg
        .clustered_probing
        .then(|| ClusteredPlan::build(sim.world(), cfg, seed, epoch, &units, prior, &bound));
    let plan: &dyn ProbePlan = match &clustered {
        Some(c) => c,
        None if prior.is_some() => &warm_plan,
        None => &ExhaustivePlan,
    };
    let PlanOutcome {
        live_units: units,
        skipped,
        extrapolated,
        stats,
    } = plan_units(plan, units, prior, &bound);
    let mut warm_full_skip = false;
    if plan.records_stats() {
        // Planner accounting, warm runs only (cold runs register none
        // of these, keeping cold telemetry byte-identical to before
        // warm starts existed). The conservation laws — planned +
        // skipped_warm == universe, and the reasons sum to planned —
        // are re-checked by `clientmap-core`'s invariant layer.
        metrics
            .counter("cacheprobe.planner.universe")
            .add(stats.universe);
        metrics
            .counter("cacheprobe.planner.planned")
            .add(stats.planned);
        metrics
            .counter("cacheprobe.planner.skipped_warm")
            .add(stats.skipped_warm);
        metrics.counter("cacheprobe.planner.new").add(stats.new);
        metrics.counter("cacheprobe.planner.dirty").add(stats.dirty);
        metrics
            .counter("cacheprobe.planner.rescued")
            .add(stats.rescued);
        metrics
            .counter("cacheprobe.planner.expired")
            .add(stats.expired);
        metrics
            .counter("cacheprobe.planner.units")
            .add(units.len() as u64);
        warm_full_skip = stats.planned == 0;
    }
    if let Some(cs) = plan.cluster_stats() {
        // Cluster accounting, clustered sweeps only (exhaustive and
        // warm runs register none of these, keeping their telemetry
        // byte-identical). Like the planner counters this sits outside
        // the probing-window delta below: plan accounting describes
        // this run, never the window a snapshot replays. The
        // conservation law — representatives + extrapolated +
        // escalated == planned_universe — is re-checked by
        // `clientmap-core`'s invariant layer.
        metrics
            .counter("cacheprobe.cluster.planned_universe")
            .add(cs.planned_universe);
        metrics
            .counter("cacheprobe.cluster.representatives")
            .add(cs.representatives);
        metrics
            .counter("cacheprobe.cluster.extrapolated")
            .add(cs.extrapolated);
        metrics
            .counter("cacheprobe.cluster.escalated")
            .add(cs.escalated);
        metrics
            .counter("cacheprobe.cluster.clusters")
            .add(cs.clusters);
    }

    let full_skip_prior = if warm_full_skip {
        Some(prior.expect("full skip implies a prior snapshot").clone())
    } else {
        None
    };

    // The probing-window telemetry delta starts here. The preamble
    // (discovery through assignment) and the planner counters sit
    // outside the window — a warm run re-records them live — while
    // replayed records, live probing, and the rescue sweep all land
    // inside it, so absorbing a snapshot's delta reproduces exactly
    // the window a full skip elides.
    let pre = metrics.snapshot();
    let gpdns_pre = sim.gpdns_stats();

    SweepPrep {
        fc,
        bound,
        templates,
        pop_metrics,
        assigned,
        units,
        skipped,
        extrapolated,
        warm_full_skip,
        full_skip_prior,
        result,
        snapshot,
        t0,
        stage,
        pre,
        gpdns_pre,
    }
}

/// Runs the probing window (and, under fault injection, the rescue
/// sweep) for a prepared sweep in this process, then assembles the
/// sweep's snapshot — the tail of `run_technique_full`.
pub fn execute_sweep(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    prep: SweepPrep,
    timings: &mut Vec<(String, f64)>,
) -> (CacheProbeResult, SweepSnapshot) {
    let SweepPrep {
        fc,
        bound,
        templates,
        pop_metrics,
        assigned,
        units,
        skipped,
        extrapolated,
        warm_full_skip,
        full_skip_prior,
        mut result,
        mut snapshot,
        t0,
        stage,
        pre,
        gpdns_pre,
    } = prep;
    let metrics = Arc::clone(sim.metrics());

    if warm_full_skip {
        let prior = full_skip_prior.expect("full skip implies a prior snapshot");
        return finish_full_skip(
            sim, cfg, &metrics, &bound, result, snapshot, prior, stage, timings,
        );
    }

    // Warm-partial: the skipped share of the window replays with full
    // client-side telemetry — this run's counters still describe the
    // whole sweep — and only the planned share probes live.
    for (bi, d, scope, rec) in &skipped {
        replay_record(
            &mut result,
            bound[*bi].pop,
            *d,
            *scope,
            rec,
            cfg.redundancy,
            Some(&pop_metrics[*bi]),
        );
    }

    let view = sim.view();
    let tallies: Vec<UnitTally> = par_map(&units, |_, u| {
        // Fault-free streams ride the batch kernel when enabled; the
        // kernel refuses faulted cores, so the resilient scalar lane
        // keeps fault accounting untouched by construction.
        if cfg.batched_probing && fc.is_none() {
            if let Some(tally) = probe_unit_batched(
                &view,
                &bound[u.bound_idx],
                &templates[u.domain],
                &u.scopes,
                cfg,
                t0,
                &pop_metrics[u.bound_idx],
            ) {
                return tally;
            }
        }
        probe_unit(
            &view,
            &bound[u.bound_idx],
            &templates[u.domain],
            &u.scopes,
            cfg,
            t0,
            &pop_metrics[u.bound_idx],
            fc.as_ref(),
        )
    });

    // Ordered reduction: merge in unit order — a pure function of the
    // work list, never of the thread interleaving. Per-PoP health
    // (attempts, lost events, breaker trips) accumulates alongside for
    // the quarantine decision, and the per-scope sweep records for the
    // snapshot build alongside in the same deterministic order.
    let mut fresh: BTreeMap<RecordKey, ScopeRecord> = BTreeMap::new();
    let mut pop_health: HashMap<PopId, (u64, u64, bool)> = HashMap::new();
    for (u, tally) in units.iter().zip(tallies) {
        let pop = bound[u.bound_idx].pop;
        let health = pop_health.entry(pop).or_default();
        health.0 += tally.attempts;
        health.1 += tally.drops;
        health.2 |= tally.tripped;
        result.probes_sent += tally.probes_sent;
        result.scope0_hits += tally.scope0_hits;
        result.drops += tally.drops;
        for (query_scope, resp_scope, remaining) in tally.hits {
            result.record_hit(u.domain, pop, query_scope, resp_scope, remaining);
            fresh
                .entry(record_key(u.bound_idx, u.domain, query_scope))
                .or_default()
                .hit_events
                .push(HitEvent {
                    resp_addr: resp_scope.addr(),
                    resp_len: resp_scope.len(),
                    remaining_ttl: remaining,
                });
        }
        for (scope, (attempts, hits, scope0, drops)) in tally.counts {
            let c = result.probe_counts.entry((u.domain, scope)).or_default();
            c.attempts += attempts;
            c.hits += hits;
            c.scope0 += scope0;
            c.drops += drops;
            let rec = fresh
                .entry(record_key(u.bound_idx, u.domain, scope))
                .or_default();
            rec.attempts += attempts;
            rec.scope0 += scope0;
            rec.drops += drops;
        }
        sim.absorb_session(&tally.session);
    }
    fold_extrapolated(
        &mut result,
        &mut fresh,
        &mut snapshot.confidence,
        &extrapolated,
        &bound,
        &pop_metrics,
        cfg.redundancy,
    );
    timings.push(("probing".into(), stage.elapsed().as_secs_f64()));

    // 6. PoP quarantine + rescue sweep (fault injection only): PoPs
    //    whose streams tripped the circuit breaker or lost most probes
    //    are quarantined, and scopes they alone were meant to cover are
    //    re-probed once at the nearest healthy PoP within a relaxed
    //    (doubled) service radius. Whatever still has no probe event
    //    afterwards is reported as lost coverage, not silently absent.
    if let Some(fc) = &fc {
        let stage = Instant::now();
        let quarantined = quarantined_pops(&bound, &pop_health);
        fc.quarantined_pops.add(quarantined.len() as u64);
        let rescue_units = plan_rescue_units(sim, cfg, &bound, &assigned, &result, &quarantined);
        let view = sim.view();
        let rescue_tallies = run_rescue_tallies(
            &view,
            cfg,
            &bound,
            &templates,
            &pop_metrics,
            t0,
            fc,
            &rescue_units,
        );
        let mut rescued_scopes = 0u64;
        for (u, tally) in rescue_units.iter().zip(rescue_tallies) {
            let pop = bound[u.bound_idx].pop;
            rescued_scopes += tally.counts.len() as u64;
            result.probes_sent += tally.probes_sent;
            result.scope0_hits += tally.scope0_hits;
            result.drops += tally.drops;
            for (query_scope, resp_scope, remaining) in tally.hits {
                result.record_hit(u.domain, pop, query_scope, resp_scope, remaining);
                fresh
                    .entry(record_key(u.bound_idx, u.domain, query_scope))
                    .or_default()
                    .hit_events
                    .push(HitEvent {
                        resp_addr: resp_scope.addr(),
                        resp_len: resp_scope.len(),
                        remaining_ttl: remaining,
                    });
            }
            for (scope, (attempts, hits, scope0, drops)) in tally.counts {
                let c = result.probe_counts.entry((u.domain, scope)).or_default();
                c.attempts += attempts;
                c.hits += hits;
                c.scope0 += scope0;
                c.drops += drops;
                let rec = fresh
                    .entry(record_key(u.bound_idx, u.domain, scope))
                    .or_default();
                rec.attempts += attempts;
                rec.scope0 += scope0;
                rec.drops += drops;
            }
            sim.absorb_session(&tally.session);
        }
        fc.rescued.add(rescued_scopes);

        // Partial-result accounting: assigned pairs that never produced
        // a probe event are coverage the faults cost us.
        let mut all_assigned: std::collections::HashSet<(usize, Prefix)> =
            std::collections::HashSet::new();
        for list in assigned.values() {
            all_assigned.extend(list.iter().copied());
        }
        let unmeasured = all_assigned
            .iter()
            .filter(|key| !result.probe_counts.contains_key(key))
            .count() as u64;
        result.fault = Some(FaultSummary {
            profile: sim.fault_plan().profile().as_str().to_string(),
            observed: fc.observed_total(),
            retries: fc.retries.get(),
            recovered: fc.recovered.get(),
            degraded: fc.degraded.get(),
            lost: fc.lost.get(),
            quarantined_pops: quarantined,
            rescued_scopes,
            unmeasured_scopes: unmeasured,
            assigned_scopes: all_assigned.len() as u64,
        });
        timings.push(("rescue".into(), stage.elapsed().as_secs_f64()));
    }

    // Snapshot assembly. Warm-skipped scopes carry their prior records
    // forward (so the next planner still sees them as measured), and
    // every planned scope that produced no probe event — a
    // breaker-aborted stream — gets an explicit empty record, the
    // planner's rescue signal for the next sweep.
    for (bi, d, scope, rec) in skipped {
        fresh.entry(record_key(bi, d, scope)).or_insert(rec);
    }
    for u in &units {
        for &scope in &u.scopes {
            fresh
                .entry(record_key(u.bound_idx, u.domain, scope))
                .or_default();
        }
    }
    snapshot.records = fresh;
    snapshot.gpdns = sweep::gpdns_delta(gpdns_pre, sim.gpdns_stats());
    snapshot.metrics = metrics.snapshot().delta_from(&pre);
    snapshot.fault = result.fault.as_ref().map(sweep::to_fault_record);
    (result, snapshot)
}

/// Nothing to probe: replay the prior sweep wholesale — records into
/// the result, the stored metrics delta into the registry, the resolver
/// counter deltas into the session — and carry the snapshot forward
/// under the new epoch. Shared by [`execute_sweep`] and
/// [`merge_shards`], whose full-skip windows are the same.
#[allow(clippy::too_many_arguments)]
fn finish_full_skip(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    metrics: &MetricsRegistry,
    bound: &[BoundVantage],
    mut result: CacheProbeResult,
    mut snapshot: SweepSnapshot,
    prior: SweepSnapshot,
    stage: Instant,
    timings: &mut Vec<(String, f64)>,
) -> (CacheProbeResult, SweepSnapshot) {
    metrics.absorb_delta(&prior.metrics);
    for (&(bi, d, addr, len), rec) in &prior.records {
        let (Some(b), Ok(scope)) = (bound.get(bi as usize), Prefix::new(addr, len)) else {
            continue;
        };
        replay_record(
            &mut result,
            b.pop,
            d as usize,
            scope,
            rec,
            cfg.redundancy,
            None,
        );
    }
    let mut session = GpdnsSession::new();
    session.stats = sweep::gpdns_stats_from(prior.gpdns);
    sim.absorb_session(&session);
    result.fault = prior.fault.as_ref().map(sweep::from_fault_record);
    snapshot.gpdns = prior.gpdns;
    snapshot.fault = prior.fault;
    snapshot.metrics = prior.metrics;
    snapshot.records = prior.records;
    // Confidence tags ride through full skips too: the provenance of a
    // copied verdict (and its escalation trigger) must survive however
    // many all-replay epochs sit between clustered sweeps.
    snapshot.confidence = prior.confidence;
    timings.push(("probing".into(), stage.elapsed().as_secs_f64()));
    (result, snapshot)
}

/// The deterministic quarantine rule, shared by the single-process
/// sweep and the fleet driver's merged fault books: a PoP is
/// quarantined when any stream through it tripped the circuit breaker,
/// or when it lost most of a meaningful probe volume. Evaluated in
/// `bound` order so duplicate vantages quarantine identically
/// everywhere.
fn quarantined_pops(
    bound: &[BoundVantage],
    pop_health: &HashMap<PopId, (u64, u64, bool)>,
) -> Vec<PopId> {
    bound
        .iter()
        .map(|b| b.pop)
        .filter(|pop| {
            pop_health
                .get(pop)
                .is_some_and(|&(attempts, lost, tripped)| {
                    tripped || (attempts >= 20 && lost * 2 > attempts)
                })
        })
        .collect()
}

/// Plans the rescue phase for a quarantine set: scopes assigned to a
/// quarantined PoP and never measured anywhere are re-probed once at
/// the nearest healthy bound PoP whose doubled service radius (plus
/// the scope's geolocation error) still covers them. A pure function
/// of the probe result and the quarantine set, so the driver and a
/// single-process sweep plan byte-identical rescues.
fn plan_rescue_units(
    sim: &Sim,
    cfg: &ProbeConfig,
    bound: &[BoundVantage],
    assigned: &HashMap<PopId, Vec<(usize, Prefix)>>,
    result: &CacheProbeResult,
    quarantined: &[PopId],
) -> Vec<ProbeUnit> {
    let pops = clientmap_sim::pop_catalog();
    let q_set: std::collections::HashSet<PopId> = quarantined.iter().copied().collect();

    // Scopes needing rescue: assigned to at least one quarantined
    // PoP and never measured anywhere.
    let mut need: Vec<(usize, Prefix)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for pop in quarantined {
        for key in assigned.get(pop).into_iter().flatten() {
            if !result.probe_counts.contains_key(key) && seen.insert(*key) {
                need.push(*key);
            }
        }
    }
    need.sort();

    // Fallback: the nearest healthy bound PoP whose doubled service
    // radius (plus the scope's geolocation error) still covers it.
    let mut rescue: BTreeMap<(usize, usize), Vec<Prefix>> = BTreeMap::new();
    for (d, scope) in &need {
        let geo = {
            let geodb = &sim.world().geodb;
            geodb
                .lookup(*scope)
                .or_else(|| geodb.lookup_addr(scope.addr()))
                .map(|e| (e.coord, e.error_radius_km))
        };
        let Some((coord, err_km)) = geo else { continue };
        let mut fallback: Option<(f64, usize)> = None;
        for (bi, b) in bound.iter().enumerate() {
            if q_set.contains(&b.pop) {
                continue;
            }
            let dist = coord.distance_km(&pops[b.pop].coord);
            let radius = result.service_radii.radius(b.pop, cfg.fallback_radius_km);
            if dist <= 2.0 * radius + err_km && fallback.is_none_or(|(best, _)| dist < best) {
                fallback = Some((dist, bi));
            }
        }
        if let Some((_, bi)) = fallback {
            rescue.entry((bi, *d)).or_default().push(*scope);
        }
    }
    rescue
        .into_iter()
        .map(|((bi, d), scopes)| ProbeUnit {
            bound_idx: bi,
            domain: d,
            scopes,
        })
        .collect()
}

/// Probes a rescue unit list on the resilient scalar lane. Each unit
/// gets a one-pass window — its slot budget covers the scope list
/// exactly once — starting one minute after the main probing window
/// closes.
#[allow(clippy::too_many_arguments)]
fn run_rescue_tallies(
    view: &SimView<'_>,
    cfg: &ProbeConfig,
    bound: &[BoundVantage],
    templates: &[wire::ProbeQueryTemplate],
    pop_metrics: &[ProbeMetrics],
    t0: SimTime,
    fc: &FaultCounters,
    units: &[ProbeUnit],
) -> Vec<UnitTally> {
    let t_rescue =
        t0 + SimTime::from_secs_f64(cfg.duration_hours * 3600.0) + SimTime::from_secs(60);
    par_map(units, |_, u| {
        // One pass over the unit's scopes: shrink the window so the
        // slot budget covers the list exactly once.
        let mut one_pass = cfg.clone();
        one_pass.duration_hours = (u.scopes.len() as f64 / cfg.rate_per_domain) / 3600.0;
        probe_unit(
            view,
            &bound[u.bound_idx],
            &templates[u.domain],
            &u.scopes,
            &one_pass,
            t_rescue,
            &pop_metrics[u.bound_idx],
            Some(fc),
        )
    })
}

/// One PoP's entry in a shard's fault book — the per-PoP stream
/// accounting a faulted shard ships back to its driver so quarantine
/// can be decided globally. Canonical form is one entry per PoP,
/// sorted by PoP id (see [`merge_fault_books`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopHealth {
    /// PoP the entry describes.
    pub pop: PopId,
    /// Probe slots attempted through this PoP's streams.
    pub attempts: u64,
    /// Probe slots lost after all retries — the quarantine loss signal.
    pub drops: u64,
    /// Whether any stream through this PoP tripped its circuit breaker.
    pub tripped: bool,
}

/// Folds any number of (possibly partial, possibly unsorted) fault
/// books into canonical form: one entry per PoP sorted by PoP id,
/// attempts and drops summed, breaker trips OR-ed. The fold is
/// associative and order-invariant, so merging per-shard books in any
/// grouping yields the same global book — the driver's quarantine
/// decision cannot depend on delta arrival order.
pub fn merge_fault_books(books: &[PopHealth]) -> Vec<PopHealth> {
    let mut merged: BTreeMap<PopId, (u64, u64, bool)> = BTreeMap::new();
    for h in books {
        let e = merged.entry(h.pop).or_default();
        e.0 += h.attempts;
        e.1 += h.drops;
        e.2 |= h.tripped;
    }
    merged
        .into_iter()
        .map(|(pop, (attempts, drops, tripped))| PopHealth {
            pop,
            attempts,
            drops,
            tripped,
        })
        .collect()
}

/// Probes one contiguous shard of a prepared sweep's unit list and
/// returns the shard's delta as a [`SweepSnapshot`] — the payload a
/// fleet worker streams back to its driver, riding the snapshot byte
/// codec as the wire format. The shard id travels in the snapshot's
/// `epoch` field.
///
/// Record keys are disjoint across disjoint shards (units partition
/// the key space by ⟨vantage, domain⟩ and scopes never repeat within a
/// unit list), so a driver can merge any cover of the unit list with
/// no key conflicts. Under fault injection the shard also returns its
/// fault book — the per-PoP health its own units observed — which the
/// driver folds across shards ([`merge_fault_books`]) to take the
/// global quarantine decision; fault-free shards return an empty book.
pub fn probe_shard(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    prep: &SweepPrep,
    shard: std::ops::Range<usize>,
    shard_id: u32,
) -> (SweepSnapshot, Vec<PopHealth>) {
    let metrics = Arc::clone(sim.metrics());
    let hi = prep.units.len();
    let units = &prep.units[shard.start.min(hi)..shard.end.min(hi)];
    let pre = metrics.snapshot();
    let gpdns_pre = sim.gpdns_stats();

    let view = sim.view();
    let tallies: Vec<UnitTally> = par_map(units, |_, u| {
        // Fault-free streams ride the batch kernel when enabled; the
        // kernel refuses faulted cores, so the resilient scalar lane
        // keeps fault accounting untouched by construction.
        if cfg.batched_probing && prep.fc.is_none() {
            if let Some(tally) = probe_unit_batched(
                &view,
                &prep.bound[u.bound_idx],
                &prep.templates[u.domain],
                &u.scopes,
                cfg,
                prep.t0,
                &prep.pop_metrics[u.bound_idx],
            ) {
                return tally;
            }
        }
        probe_unit(
            &view,
            &prep.bound[u.bound_idx],
            &prep.templates[u.domain],
            &u.scopes,
            cfg,
            prep.t0,
            &prep.pop_metrics[u.bound_idx],
            prep.fc.as_ref(),
        )
    });

    // Shard-local ordered reduction mirroring `execute_sweep`'s merge
    // loop: per-record state is a pure function of the unit list, so
    // the driver's merge reproduces the single-process sweep exactly.
    // Per-PoP health accumulates alongside, exactly as the single-
    // process reduction accumulates it for the quarantine decision.
    let mut fresh: BTreeMap<RecordKey, ScopeRecord> = BTreeMap::new();
    let mut pop_health: HashMap<PopId, (u64, u64, bool)> = HashMap::new();
    for (u, tally) in units.iter().zip(tallies) {
        let health = pop_health.entry(prep.bound[u.bound_idx].pop).or_default();
        health.0 += tally.attempts;
        health.1 += tally.drops;
        health.2 |= tally.tripped;
        for (query_scope, resp_scope, remaining) in tally.hits {
            fresh
                .entry(record_key(u.bound_idx, u.domain, query_scope))
                .or_default()
                .hit_events
                .push(HitEvent {
                    resp_addr: resp_scope.addr(),
                    resp_len: resp_scope.len(),
                    remaining_ttl: remaining,
                });
        }
        for (scope, (attempts, _hits, scope0, drops)) in tally.counts {
            let rec = fresh
                .entry(record_key(u.bound_idx, u.domain, scope))
                .or_default();
            rec.attempts += attempts;
            rec.scope0 += scope0;
            rec.drops += drops;
        }
        sim.absorb_session(&tally.session);
    }
    // Planned scopes with no probe event still get explicit empty
    // records: the driver's completeness check (and the next warm
    // planner) must see them as measured-but-empty, not missing.
    for u in units {
        for &scope in &u.scopes {
            fresh
                .entry(record_key(u.bound_idx, u.domain, scope))
                .or_default();
        }
    }

    let mut delta = SweepSnapshot::new(prep.snapshot.world_seed, prep.snapshot.config_digest);
    delta.epoch = shard_id;
    delta.records = fresh;
    delta.gpdns = sweep::gpdns_delta(gpdns_pre, sim.gpdns_stats());
    delta.metrics = metrics.snapshot().delta_from(&pre);
    let book = if prep.fc.is_some() {
        let raw: Vec<PopHealth> = pop_health
            .into_iter()
            .map(|(pop, (attempts, drops, tripped))| PopHealth {
                pop,
                attempts,
                drops,
                tripped,
            })
            .collect();
        merge_fault_books(&raw)
    } else {
        Vec::new()
    };
    (delta, book)
}

/// Probes a driver-planned rescue shard — a slice of the global rescue
/// unit list — and returns its delta in the same snapshot codec as
/// [`probe_shard`], shard id in `epoch`. Rescue units target the
/// *fallback* vantage of scopes nothing measured, so their record keys
/// only ever collide with all-zero main-phase records and the driver
/// can fold rescue deltas additively. Unlike the main phase, unprobed
/// rescue scopes get no empty fill: the single-process rescue loop
/// records only what its tallies produced, and the merged snapshot
/// must match it byte-for-byte.
pub fn probe_rescue_shard(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    prep: &SweepPrep,
    units: &[ProbeUnit],
    shard_id: u32,
) -> SweepSnapshot {
    let fc = prep
        .fc
        .as_ref()
        .expect("rescue shards only exist under fault injection");
    let metrics = Arc::clone(sim.metrics());
    let pre = metrics.snapshot();
    let gpdns_pre = sim.gpdns_stats();
    let view = sim.view();
    let tallies = run_rescue_tallies(
        &view,
        cfg,
        &prep.bound,
        &prep.templates,
        &prep.pop_metrics,
        prep.t0,
        fc,
        units,
    );
    let mut fresh: BTreeMap<RecordKey, ScopeRecord> = BTreeMap::new();
    for (u, tally) in units.iter().zip(tallies) {
        for (query_scope, resp_scope, remaining) in tally.hits {
            fresh
                .entry(record_key(u.bound_idx, u.domain, query_scope))
                .or_default()
                .hit_events
                .push(HitEvent {
                    resp_addr: resp_scope.addr(),
                    resp_len: resp_scope.len(),
                    remaining_ttl: remaining,
                });
        }
        for (scope, (attempts, _hits, scope0, drops)) in tally.counts {
            let rec = fresh
                .entry(record_key(u.bound_idx, u.domain, scope))
                .or_default();
            rec.attempts += attempts;
            rec.scope0 += scope0;
            rec.drops += drops;
        }
        sim.absorb_session(&tally.session);
    }
    let mut delta = SweepSnapshot::new(prep.snapshot.world_seed, prep.snapshot.config_digest);
    delta.epoch = shard_id;
    delta.records = fresh;
    delta.gpdns = sweep::gpdns_delta(gpdns_pre, sim.gpdns_stats());
    delta.metrics = metrics.snapshot().delta_from(&pre);
    delta
}

/// Why a set of shard deltas could not be merged into a sweep. The
/// merge validates every delta before committing anything, so an `Err`
/// leaves no partial-merge corruption behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMergeError {
    /// A delta was produced against a different world seed or config
    /// digest than this driver's prep.
    ForeignDelta {
        /// Shard id the offending delta carried.
        shard: u32,
        /// World seed the delta was produced against.
        world_seed: u64,
        /// Config digest the delta was produced against.
        config_digest: u64,
    },
    /// Two deltas claimed the same record slot — shards overlapped, or
    /// one shard's delta was merged twice.
    OverlappingShards {
        /// Shard id of the second delta to claim the slot.
        shard: u32,
    },
    /// After staging every delta, this many planned scopes still had
    /// no record — a shard was never probed or its delta never arrived.
    MissingScopes {
        /// Number of planned scopes with no record.
        missing: u64,
    },
    /// The rescue dispatch failed: the driver could not get the
    /// planned rescue units probed (worker loss, transport failure).
    Rescue(String),
}

impl std::fmt::Display for ShardMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ForeignDelta {
                shard,
                world_seed,
                config_digest,
            } => write!(
                f,
                "shard {shard} delta was produced for a different sweep \
                 (world seed {world_seed:#x}, config digest {config_digest:#x})"
            ),
            Self::OverlappingShards { shard } => {
                write!(f, "shard {shard} delta overlaps records already staged")
            }
            Self::MissingScopes { missing } => {
                write!(f, "{missing} planned scopes missing from shard deltas")
            }
            Self::Rescue(msg) => write!(f, "rescue phase failed: {msg}"),
        }
    }
}

impl std::error::Error for ShardMergeError {}

/// Driver-side merge: folds checksummed per-shard deltas into the
/// prepared sweep, producing the same `(result, snapshot)` pair —
/// byte-for-byte — as a single-process [`execute_sweep`] at any
/// (worker, thread) combination.
///
/// Deltas are staged and fully validated (provenance, disjointness,
/// completeness) before anything commits, then folded in shard order:
/// telemetry and resolver deltas absorb additively, and the merged
/// record table replays into the result aggregates in record-key
/// order — the same replay the warm-start path already proves
/// byte-identical to a live run.
///
/// Under fault injection the workers' fault books fold into a global
/// book ([`merge_fault_books`]), the driver takes the same quarantine
/// decision the single-process sweep would, and — when any scope needs
/// rescuing — the `rescue` callback dispatches the planned rescue
/// units back to the fleet (returning one delta per rescue shard,
/// typically from [`probe_rescue_shard`]). Rescue deltas replay after
/// the main table, mirroring the single-process phase order, and the
/// PR 4 conservation laws hold on the merged result exactly as they do
/// in-process.
pub fn merge_shards(
    sim: &mut Sim,
    cfg: &ProbeConfig,
    prep: SweepPrep,
    deltas: Vec<SweepSnapshot>,
    books: Vec<PopHealth>,
    mut rescue: impl FnMut(Vec<ProbeUnit>) -> Result<Vec<SweepSnapshot>, String>,
    timings: &mut Vec<(String, f64)>,
) -> Result<(CacheProbeResult, SweepSnapshot), ShardMergeError> {
    let SweepPrep {
        fc,
        bound,
        pop_metrics,
        assigned,
        units,
        skipped,
        extrapolated,
        warm_full_skip,
        full_skip_prior,
        mut result,
        mut snapshot,
        stage,
        pre,
        gpdns_pre,
        ..
    } = prep;
    let metrics = Arc::clone(sim.metrics());

    if warm_full_skip {
        let prior = full_skip_prior.expect("full skip implies a prior snapshot");
        return Ok(finish_full_skip(
            sim, cfg, &metrics, &bound, result, snapshot, prior, stage, timings,
        ));
    }

    // Stage + validate. Shard order is canonical: sort by shard id so
    // the merge is a pure function of the delta *set*, not the arrival
    // order over the wire.
    let mut deltas = deltas;
    deltas.sort_by_key(|d| d.epoch);
    let mut fresh: BTreeMap<RecordKey, ScopeRecord> = BTreeMap::new();
    for delta in &deltas {
        if delta.world_seed != snapshot.world_seed || delta.config_digest != snapshot.config_digest
        {
            return Err(ShardMergeError::ForeignDelta {
                shard: delta.epoch,
                world_seed: delta.world_seed,
                config_digest: delta.config_digest,
            });
        }
        for (key, rec) in &delta.records {
            if fresh.insert(*key, rec.clone()).is_some() {
                return Err(ShardMergeError::OverlappingShards { shard: delta.epoch });
            }
        }
    }
    let missing = units
        .iter()
        .flat_map(|u| {
            u.scopes
                .iter()
                .map(move |s| record_key(u.bound_idx, u.domain, *s))
        })
        .filter(|k| !fresh.contains_key(k))
        .count() as u64;
    if missing > 0 {
        return Err(ShardMergeError::MissingScopes { missing });
    }

    // Warm-partial: the skipped share of the window replays with full
    // client-side telemetry on the driver, exactly as `execute_sweep`
    // does before its own probing loop.
    for (bi, d, scope, rec) in &skipped {
        replay_record(
            &mut result,
            bound[*bi].pop,
            *d,
            *scope,
            rec,
            cfg.redundancy,
            Some(&pop_metrics[*bi]),
        );
    }

    // Commit. Probe-side counters were bumped on the workers and ride
    // in each delta's metrics block, so records replay with `None`
    // here (the full-skip pattern); resolver counters absorb as one
    // session per shard.
    for delta in &deltas {
        metrics.absorb_delta(&delta.metrics);
        let mut session = GpdnsSession::new();
        session.stats = sweep::gpdns_stats_from(delta.gpdns);
        sim.absorb_session(&session);
    }
    for (&(bi, d, addr, len), rec) in &fresh {
        let (Some(b), Ok(scope)) = (bound.get(bi as usize), Prefix::new(addr, len)) else {
            continue;
        };
        replay_record(
            &mut result,
            b.pop,
            d as usize,
            scope,
            rec,
            cfg.redundancy,
            None,
        );
    }
    // Extrapolation fold, exactly as `execute_sweep` after its own
    // reduction. Members were never shipped to workers, so their
    // synthesized replays bump client telemetry here on the driver
    // (`Some`), keeping the merged counters byte-identical to the
    // single-process sweep.
    fold_extrapolated(
        &mut result,
        &mut fresh,
        &mut snapshot.confidence,
        &extrapolated,
        &bound,
        &pop_metrics,
        cfg.redundancy,
    );
    timings.push(("probing".into(), stage.elapsed().as_secs_f64()));

    // Distributed quarantine + rescue, mirroring `execute_sweep`'s
    // fault block: the global fault book decides quarantine exactly as
    // live per-PoP health would, the rescue plan is a pure function of
    // the merged result, and rescue deltas replay *after* the main
    // table — the same phase order as the single-process sweep.
    if let Some(fc) = &fc {
        let stage = Instant::now();
        let mut pop_health: HashMap<PopId, (u64, u64, bool)> = HashMap::new();
        for h in merge_fault_books(&books) {
            pop_health.insert(h.pop, (h.attempts, h.drops, h.tripped));
        }
        let quarantined = quarantined_pops(&bound, &pop_health);
        fc.quarantined_pops.add(quarantined.len() as u64);
        let rescue_units = plan_rescue_units(sim, cfg, &bound, &assigned, &result, &quarantined);
        let mut rescue_deltas = if rescue_units.is_empty() {
            Vec::new()
        } else {
            rescue(rescue_units).map_err(ShardMergeError::Rescue)?
        };
        rescue_deltas.sort_by_key(|d| d.epoch);
        let mut rescue_fresh: BTreeMap<RecordKey, ScopeRecord> = BTreeMap::new();
        for delta in &rescue_deltas {
            if delta.world_seed != snapshot.world_seed
                || delta.config_digest != snapshot.config_digest
            {
                return Err(ShardMergeError::ForeignDelta {
                    shard: delta.epoch,
                    world_seed: delta.world_seed,
                    config_digest: delta.config_digest,
                });
            }
            for (key, rec) in &delta.records {
                if rescue_fresh.insert(*key, rec.clone()).is_some() {
                    return Err(ShardMergeError::OverlappingShards { shard: delta.epoch });
                }
            }
        }
        for delta in &rescue_deltas {
            metrics.absorb_delta(&delta.metrics);
            let mut session = GpdnsSession::new();
            session.stats = sweep::gpdns_stats_from(delta.gpdns);
            sim.absorb_session(&session);
        }
        for (&(bi, d, addr, len), rec) in &rescue_fresh {
            let (Some(b), Ok(scope)) = (bound.get(bi as usize), Prefix::new(addr, len)) else {
                continue;
            };
            replay_record(
                &mut result,
                b.pop,
                d as usize,
                scope,
                rec,
                cfg.redundancy,
                None,
            );
        }
        // Every rescue record is one rescued scope: the workers record
        // exactly the scopes their rescue tallies touched, keyed by a
        // fallback vantage unique within the rescue plan.
        let rescued_scopes = rescue_fresh.len() as u64;
        fc.rescued.add(rescued_scopes);

        // Partial-result accounting: assigned pairs that never produced
        // a probe event are coverage the faults cost us.
        let mut all_assigned: std::collections::HashSet<(usize, Prefix)> =
            std::collections::HashSet::new();
        for list in assigned.values() {
            all_assigned.extend(list.iter().copied());
        }
        let unmeasured = all_assigned
            .iter()
            .filter(|key| !result.probe_counts.contains_key(key))
            .count() as u64;
        result.fault = Some(FaultSummary {
            profile: sim.fault_plan().profile().as_str().to_string(),
            observed: fc.observed_total(),
            retries: fc.retries.get(),
            recovered: fc.recovered.get(),
            degraded: fc.degraded.get(),
            lost: fc.lost.get(),
            quarantined_pops: quarantined,
            rescued_scopes,
            unmeasured_scopes: unmeasured,
            assigned_scopes: all_assigned.len() as u64,
        });
        timings.push(("rescue".into(), stage.elapsed().as_secs_f64()));

        // Fold rescue records into the snapshot table additively —
        // `execute_sweep` accumulates them into the same entries its
        // main loop built, and rescue keys only ever collide with
        // all-zero records (a rescued scope was measured nowhere, so
        // any planned record at its fallback vantage stayed empty).
        for (key, rec) in rescue_fresh {
            let slot = fresh.entry(key).or_default();
            slot.attempts += rec.attempts;
            slot.scope0 += rec.scope0;
            slot.drops += rec.drops;
            slot.hit_events.extend(rec.hit_events);
        }
    }

    // Snapshot assembly, mirroring `execute_sweep`: warm-skipped
    // scopes carry their prior records forward alongside the merged
    // fresh table.
    for (bi, d, scope, rec) in skipped {
        fresh.entry(record_key(bi, d, scope)).or_insert(rec);
    }
    snapshot.records = fresh;
    snapshot.gpdns = sweep::gpdns_delta(gpdns_pre, sim.gpdns_stats());
    snapshot.metrics = metrics.snapshot().delta_from(&pre);
    snapshot.fault = result.fault.as_ref().map(sweep::to_fault_record);
    Ok((result, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{World, WorldConfig};

    fn run_tiny(seed: u64) -> (Sim, CacheProbeResult) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::new(world);
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0; // ≈ one pass over each list
        cfg.calibration_sample = 250;
        let result = run_technique(&mut sim, &cfg, &universe);
        (sim, result)
    }

    /// One shared end-to-end run — the expensive part of this module's
    /// tests — reused by every read-only assertion below.
    fn shared_run() -> &'static (Sim, CacheProbeResult) {
        static RUN: std::sync::OnceLock<(Sim, CacheProbeResult)> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run_tiny(101))
    }

    #[test]
    fn technique_end_to_end_detects_activity() {
        let (sim, result) = shared_run();
        assert!(result.probes_sent > 0);
        let active = result.active_set();
        assert!(
            active.num_slash24s() > 0,
            "no active prefixes found ({} probes)",
            result.probes_sent
        );
        // Active space is a subset of the (routed) universe and every
        // detected /24 belongs to a prefix with real activity nearby —
        // precision is checked properly in the analysis crate.
        assert!(active.num_slash24s() <= sim.world().routed_slash24s() * 2);
    }

    #[test]
    fn probing_selects_paper_domains() {
        let world = World::generate(WorldConfig::tiny(102));
        let sim = Sim::new(world);
        let domains = select_domains(&sim, &ProbeConfig::default());
        let names: Vec<String> = domains.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "www.google.com",
                "www.youtube.com",
                "facebook.com",
                "www.wikipedia.org",
                "cdn.msvalidation.example",
            ]
        );
    }

    #[test]
    fn hits_record_scope_pairs_for_table2() {
        let (_, result) = shared_run();
        let total: u64 = result.scope_pairs.values().sum();
        assert!(total > 0, "no scope pairs recorded");
        // Most response scopes equal the query scope (Table 2: ~90%).
        let exact: u64 = result
            .scope_pairs
            .iter()
            .filter(|((_, q, r), _)| q == r)
            .map(|(_, c)| *c)
            .sum();
        let frac = exact as f64 / total as f64;
        assert!(frac > 0.75, "exact-scope fraction {frac}");
    }

    #[test]
    fn per_pop_density_populated() {
        let (_, result) = shared_run();
        let with_hits = result
            .pop_hit_prefixes
            .values()
            .filter(|s| s.num_slash24s() > 0)
            .count();
        assert!(with_hits >= 2, "only {with_hits} PoPs saw hits");
    }

    #[test]
    fn deterministic_run_even_across_thread_interleavings() {
        let (sim_a, a) = run_tiny(105);
        let (sim_b, b) = run_tiny(105);
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.active_set().num_slash24s(), b.active_set().num_slash24s());
        assert_eq!(a.scope0_hits, b.scope0_hits);
        assert_eq!(a.hits.len(), b.hits.len());
        // The telemetry snapshot — every counter and histogram in the
        // registry, gpdns and probe side alike — must also agree
        // byte-for-byte: all updates are commutative atomics, so thread
        // scheduling must not leak into totals.
        assert_eq!(
            sim_a.metrics().snapshot().to_json(),
            sim_b.metrics().snapshot().to_json()
        );
    }

    #[test]
    fn identical_results_at_one_two_and_eight_threads() {
        // The executor contract: worker count changes wall time only.
        // Results AND telemetry snapshots are byte-identical at 1, 2,
        // and 8 threads.
        let (sim_1, r_1) = clientmap_par::with_threads(1, || run_tiny(107));
        let snap_1 = sim_1.metrics().snapshot().to_json();
        for threads in [2usize, 8] {
            let (sim_n, r_n) = clientmap_par::with_threads(threads, || run_tiny(107));
            assert_eq!(r_1.probes_sent, r_n.probes_sent, "{threads} threads");
            assert_eq!(r_1.scope0_hits, r_n.scope0_hits, "{threads} threads");
            assert_eq!(r_1.drops, r_n.drops, "{threads} threads");
            assert_eq!(r_1.hits, r_n.hits, "{threads} threads");
            assert_eq!(r_1.probe_counts, r_n.probe_counts, "{threads} threads");
            assert_eq!(r_1.scope_pairs, r_n.scope_pairs, "{threads} threads");
            assert_eq!(
                r_1.active_set().num_slash24s(),
                r_n.active_set().num_slash24s(),
                "{threads} threads"
            );
            assert_eq!(
                snap_1,
                sim_n.metrics().snapshot().to_json(),
                "telemetry diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn probe_counters_reconcile_with_result() {
        let (sim, result) = shared_run();
        let snap = sim.metrics().snapshot();
        let attempts = snap.counter("cacheprobe.attempts");
        let redundancy = u64::from(ProbeConfig::test_scale().redundancy);
        assert_eq!(
            snap.counter("cacheprobe.probes_sent"),
            redundancy * attempts
        );
        assert_eq!(snap.counter("cacheprobe.probes_sent"), result.probes_sent);
        assert_eq!(
            snap.counter("cacheprobe.outcome.hit")
                + snap.counter("cacheprobe.outcome.scope0")
                + snap.counter("cacheprobe.outcome.miss")
                + snap.counter("cacheprobe.outcome.dropped"),
            attempts
        );
        assert_eq!(
            snap.counter("cacheprobe.outcome.scope0"),
            result.scope0_hits
        );
        assert_eq!(snap.counter("cacheprobe.outcome.dropped"), result.drops);
        // `result.hits` aggregates by (domain, scope); sum the per-key
        // event counts to compare against the per-event counter.
        let hit_events: u64 = result.hits.values().map(|h| h.hits).sum();
        assert_eq!(snap.counter("cacheprobe.outcome.hit"), hit_events);
        // Per-PoP families sum back to the global counters.
        let pops = clientmap_sim::pop_catalog();
        let pop_attempts: u64 = pops
            .iter()
            .map(|p| snap.counter(&format!("cacheprobe.pop.{}.attempts", p.code)))
            .sum();
        let pop_hits: u64 = pops
            .iter()
            .map(|p| snap.counter(&format!("cacheprobe.pop.{}.hits", p.code)))
            .sum();
        assert_eq!(pop_attempts, attempts);
        assert_eq!(pop_hits, snap.counter("cacheprobe.outcome.hit"));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

        /// Same seed ⇒ byte-identical metrics snapshots, for arbitrary
        /// seeds: the end-to-end determinism claim, stated as a property.
        #[test]
        fn metrics_snapshot_reproduces_for_any_seed(seed in 200u64..240) {
            let (sim_a, _) = run_tiny(seed);
            let (sim_b, _) = run_tiny(seed);
            proptest::prop_assert_eq!(
                sim_a.metrics().snapshot().to_json(),
                sim_b.metrics().snapshot().to_json()
            );
        }
    }

    fn outcome_strategy() -> impl proptest::strategy::Strategy<Value = ProbeOutcome> {
        use proptest::prelude::*;
        prop_oneof![
            Just(ProbeOutcome::Dropped),
            Just(ProbeOutcome::Miss),
            Just(ProbeOutcome::HitScopeZero),
            Just(ProbeOutcome::Hit {
                scope: "10.0.0.0/24".parse().unwrap(),
                remaining_ttl: 11,
            }),
            Just(ProbeOutcome::Hit {
                scope: "10.9.0.0/20".parse().unwrap(),
                remaining_ttl: 77,
            }),
        ]
    }

    proptest::proptest! {
        /// Best-of-redundancy merging respects
        /// `Hit > HitScopeZero > Miss > Dropped` for every sequence of
        /// outcomes, and the winning payload is the first occurrence of
        /// the winning rank — exactly what the probe loops implement.
        #[test]
        fn merge_respects_outcome_ranking(
            seq in proptest::collection::vec(outcome_strategy(), 1..12)
        ) {
            use proptest::prelude::*;
            fn rank(o: &ProbeOutcome) -> u8 {
                match o {
                    ProbeOutcome::Dropped => 0,
                    ProbeOutcome::Miss => 1,
                    ProbeOutcome::HitScopeZero => 2,
                    ProbeOutcome::Hit { .. } => 3,
                }
            }
            // Fold exactly as the probe loops do, early Hit return and
            // all.
            let mut best = ProbeOutcome::Dropped;
            for o in &seq {
                best = merge_outcome(best, o.clone());
                if matches!(best, ProbeOutcome::Hit { .. }) {
                    break;
                }
            }
            let max_rank = seq.iter().map(rank).max().unwrap();
            prop_assert_eq!(rank(&best), max_rank);
            let first = seq.iter().find(|o| rank(o) == max_rank).unwrap();
            prop_assert_eq!(&best, first);
        }
    }

    // ---- warm starts ---------------------------------------------

    fn run_tiny_full(
        seed: u64,
        prior: Option<&SweepSnapshot>,
    ) -> (Sim, CacheProbeResult, SweepSnapshot) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::new(world);
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0;
        cfg.calibration_sample = 250;
        let (result, snap) = run_technique_full(&mut sim, &cfg, &universe, &mut Vec::new(), prior);
        (sim, result, snap)
    }

    /// Drops the warm-only `cacheprobe.planner.*` lines so cold and
    /// warm registries can be compared byte-for-byte.
    fn without_planner_lines(json: &str) -> String {
        json.lines()
            .filter(|l| !l.contains("cacheprobe.planner."))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn warm_full_skip_reproduces_the_cold_run() {
        let (cold_sim, cold, snap) = run_tiny_full(103, None);
        assert_eq!(snap.epoch, 1);
        assert!(!snap.records.is_empty());
        assert!(snap.fault.is_none());

        let (warm_sim, warm, snap2) = run_tiny_full(103, Some(&snap));
        let warm_metrics = warm_sim.metrics().snapshot();
        // Nothing expired, nothing new, nothing dirty: zero probe work.
        assert_eq!(warm_metrics.counter("cacheprobe.planner.planned"), 0);
        assert_eq!(warm_metrics.counter("cacheprobe.planner.units"), 0);
        assert_eq!(
            warm_metrics.counter("cacheprobe.planner.skipped_warm"),
            warm_metrics.counter("cacheprobe.planner.universe")
        );

        // The replayed result is identical to the cold one.
        assert_eq!(warm.probes_sent, cold.probes_sent);
        assert_eq!(warm.scope0_hits, cold.scope0_hits);
        assert_eq!(warm.drops, cold.drops);
        assert_eq!(warm.hits, cold.hits);
        assert_eq!(warm.probe_counts, cold.probe_counts);
        assert_eq!(warm.scope_pairs, cold.scope_pairs);
        assert_eq!(warm.pop_hit_prefixes.len(), cold.pop_hit_prefixes.len());

        // So is the telemetry, modulo the warm-only planner family.
        assert_eq!(
            without_planner_lines(&warm_sim.metrics().snapshot().to_json()),
            without_planner_lines(&cold_sim.metrics().snapshot().to_json())
        );
        // And the resolver's session counters.
        assert_eq!(warm_sim.gpdns_stats(), cold_sim.gpdns_stats());

        // The carried snapshot is the prior one under the next epoch.
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.records, snap.records);
        assert_eq!(snap2.gpdns, snap.gpdns);
        assert_eq!(snap2.metrics, snap.metrics);
    }

    #[test]
    fn expiry_budget_replans_a_bounded_slice() {
        let (_, _, snap) = run_tiny_full(103, None);
        let world = World::generate(WorldConfig::tiny(103));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::new(world);
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0;
        cfg.calibration_sample = 250;
        cfg.expiry_budget = 0.1;
        let (result, snap2) =
            run_technique_full(&mut sim, &cfg, &universe, &mut Vec::new(), Some(&snap));
        let m = sim.metrics().snapshot();
        let universe_count = m.counter("cacheprobe.planner.universe");
        let planned = m.counter("cacheprobe.planner.planned");
        let expired = m.counter("cacheprobe.planner.expired");
        assert!(planned > 0, "10% budget must expire something");
        assert_eq!(planned, expired, "only expiry replans here");
        assert!(
            planned * 5 <= universe_count,
            "10% budget must replan ≤ 20% of the universe (got {planned}/{universe_count})"
        );
        // Conservation, as the invariant layer states it.
        assert_eq!(
            m.counter("cacheprobe.planner.skipped_warm") + planned,
            universe_count
        );
        // The re-swept result still measures the full universe: every
        // measured record in the new snapshot has a probe count.
        let measured: std::collections::HashSet<(usize, Prefix)> = snap2
            .records
            .iter()
            .filter(|(_, r)| r.attempts > 0)
            .map(|(&(_, d, addr, len), _)| (d as usize, Prefix::new(addr, len).unwrap()))
            .collect();
        assert_eq!(result.probe_counts.len(), measured.len());
    }

    // ---- fault-injected runs -------------------------------------

    use clientmap_faults::{FaultConfig, FaultProfile};

    fn run_tiny_faulted(
        seed: u64,
        profile: FaultProfile,
        fault_seed: u64,
    ) -> (Sim, CacheProbeResult) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::with_faults(
            world,
            Arc::new(MetricsRegistry::new()),
            &FaultConfig::profile(profile, fault_seed),
        );
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0;
        cfg.calibration_sample = 250;
        let result = run_technique(&mut sim, &cfg, &universe);
        (sim, result)
    }

    fn shared_lossy_run() -> &'static (Sim, CacheProbeResult) {
        static RUN: std::sync::OnceLock<(Sim, CacheProbeResult)> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run_tiny_faulted(101, FaultProfile::Lossy, 5))
    }

    #[test]
    fn faulted_run_reconciles_client_and_server_counters() {
        let (sim, result) = shared_lossy_run();
        let summary = result.fault.as_ref().expect("fault summary present");
        assert_eq!(summary.profile, "lossy");
        assert!(summary.observed > 0, "lossy must inject something");
        assert!(summary.retries > 0, "failures must be retried");
        assert!(summary.recovered > 0, "retries must recover something");
        // Client conservation: every observed failure settles exactly
        // once.
        assert_eq!(
            summary.observed,
            summary.recovered + summary.degraded + summary.lost
        );
        let snap = sim.metrics().snapshot();
        assert_eq!(
            snap.sum_counters("cacheprobe.fault.observed."),
            summary.observed
        );
        // Client/server reconciliation: every server-injected fault is
        // observed exactly once client-side (plus any rate-limiter
        // drops — none over TCP).
        assert_eq!(
            summary.observed,
            snap.sum_counters("faults.injected.") + snap.sum_counters("gpdns.rate_limited.")
        );
        // The run still produces a usable headline.
        assert!(result.probes_sent > 0);
        assert!(result.active_set().num_slash24s() > 0);
    }

    #[test]
    fn faulted_headline_within_tolerance_of_fault_free() {
        let (_, clean) = shared_run();
        let (_, faulted) = shared_lossy_run();
        let clean_active = clean.active_set().num_slash24s() as f64;
        let faulted_active = faulted.active_set().num_slash24s() as f64;
        let ratio = faulted_active / clean_active;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "lossy active-set {faulted_active} vs clean {clean_active} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn faulted_runs_are_byte_identical_across_threads() {
        let (sim_1, r_1) =
            clientmap_par::with_threads(1, || run_tiny_faulted(107, FaultProfile::Lossy, 9));
        let snap_1 = sim_1.metrics().snapshot().to_json();
        let (sim_4, r_4) =
            clientmap_par::with_threads(4, || run_tiny_faulted(107, FaultProfile::Lossy, 9));
        assert_eq!(r_1.probes_sent, r_4.probes_sent);
        assert_eq!(r_1.drops, r_4.drops);
        assert_eq!(r_1.hits, r_4.hits);
        assert_eq!(r_1.probe_counts, r_4.probe_counts);
        assert_eq!(r_1.fault, r_4.fault, "fault summaries must agree");
        assert_eq!(
            snap_1,
            sim_4.metrics().snapshot().to_json(),
            "faulted telemetry diverged across thread counts"
        );
    }

    #[test]
    fn pop_churn_quarantines_and_accounts_for_coverage() {
        let (sim, result) = run_tiny_faulted(101, FaultProfile::PopChurn, 3);
        let summary = result.fault.as_ref().expect("fault summary present");
        assert_eq!(summary.profile, "pop-churn");
        assert!(
            !summary.quarantined_pops.is_empty(),
            "pop-churn at this seed must trip the breaker somewhere"
        );
        assert_eq!(
            summary.observed,
            summary.recovered + summary.degraded + summary.lost
        );
        let snap = sim.metrics().snapshot();
        assert_eq!(
            snap.counter("cacheprobe.quarantine.pops"),
            summary.quarantined_pops.len() as u64
        );
        assert_eq!(
            snap.counter("cacheprobe.quarantine.rescued"),
            summary.rescued_scopes
        );
        // Accounting closes: every assigned ⟨domain, scope⟩ pair is
        // either measured (has a probe count) or reported unmeasured.
        assert!(summary.assigned_scopes > 0);
        assert_eq!(
            result.probe_counts.len() as u64 + summary.unmeasured_scopes,
            summary.assigned_scopes
        );
    }

    /// Shared config for the sharded-equivalence tests.
    fn fleet_cfg() -> ProbeConfig {
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0;
        cfg.calibration_sample = 250;
        cfg
    }

    fn fleet_sim(seed: u64) -> (Sim, Vec<Prefix>) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        (Sim::new(world), universe)
    }

    /// The fleet contract in miniature, no sockets: preparing the same
    /// sweep in three sims (one driver, two workers), probing half the
    /// unit list in each worker, and merging the deltas on the driver
    /// must reproduce the single-process run exactly — result
    /// aggregates, telemetry, and the stored snapshot.
    #[test]
    fn sharded_sweep_matches_single_process() {
        let cfg = fleet_cfg();
        let (mut sim_ref, universe) = fleet_sim(77);
        let (res_ref, snap_ref) =
            run_technique_full(&mut sim_ref, &cfg, &universe, &mut Vec::new(), None);

        let (mut driver, _) = fleet_sim(77);
        let prep = prepare_sweep(&mut driver, &cfg, &universe, &mut Vec::new(), None);
        let n = prep.num_units();
        assert!(n >= 2, "need at least two units to shard");
        let mid = n / 2;
        let mut deltas = Vec::new();
        for (id, range) in [(0u32, 0..mid), (1u32, mid..n)] {
            let (mut worker, w_universe) = fleet_sim(77);
            let w_prep = prepare_sweep(&mut worker, &cfg, &w_universe, &mut Vec::new(), None);
            assert_eq!(w_prep.num_units(), n, "worker prep diverged from driver");
            assert_eq!(w_prep.config_digest(), prep.config_digest());
            let (delta, book) = probe_shard(&mut worker, &cfg, &w_prep, range, id);
            assert!(book.is_empty(), "fault-free shards carry no fault book");
            deltas.push(delta);
        }
        // Merge in reverse arrival order on purpose: the merge must be
        // a function of the delta set, not the wire order.
        deltas.reverse();
        let (res, snap) = merge_shards(
            &mut driver,
            &cfg,
            prep,
            deltas,
            Vec::new(),
            |_| Ok(Vec::new()),
            &mut Vec::new(),
        )
        .expect("merge");

        assert_eq!(snap, snap_ref, "merged snapshot diverged");
        assert_eq!(res.probes_sent, res_ref.probes_sent);
        assert_eq!(res.scope0_hits, res_ref.scope0_hits);
        assert_eq!(res.drops, res_ref.drops);
        assert_eq!(res.hits, res_ref.hits);
        assert_eq!(res.probe_counts, res_ref.probe_counts);
        assert_eq!(res.scope_pairs, res_ref.scope_pairs);
        let pop_sets = |r: &CacheProbeResult| -> BTreeMap<PopId, Vec<Prefix>> {
            r.pop_hit_prefixes
                .iter()
                .map(|(pop, set)| (*pop, set.prefixes()))
                .collect()
        };
        assert_eq!(pop_sets(&res), pop_sets(&res_ref));
        assert_eq!(res.fault, res_ref.fault);
        assert_eq!(
            driver.metrics().snapshot().to_json(),
            sim_ref.metrics().snapshot().to_json(),
            "driver telemetry diverged from the single-process run"
        );
        assert_eq!(driver.gpdns_stats(), sim_ref.gpdns_stats());
    }

    /// A duplicated shard delta or a hole in the cover must be rejected
    /// before anything commits — no partial-merge corruption.
    #[test]
    fn merge_rejects_overlapping_and_incomplete_covers() {
        let cfg = fleet_cfg();
        let (_, universe) = fleet_sim(77);

        let shard_delta = |range: std::ops::Range<usize>, id: u32| {
            let (mut worker, w_universe) = fleet_sim(77);
            let w_prep = prepare_sweep(&mut worker, &cfg, &w_universe, &mut Vec::new(), None);
            probe_shard(&mut worker, &cfg, &w_prep, range, id).0
        };

        let (mut driver, _) = fleet_sim(77);
        let prep = prepare_sweep(&mut driver, &cfg, &universe, &mut Vec::new(), None);
        let n = prep.num_units();
        let d0 = shard_delta(0..n, 0);
        let mut dup = d0.clone();
        dup.epoch = 1;
        let no_rescue = |_: Vec<ProbeUnit>| Ok(Vec::new());
        assert_eq!(
            merge_shards(
                &mut driver,
                &cfg,
                prep,
                vec![d0.clone(), dup],
                Vec::new(),
                no_rescue,
                &mut Vec::new()
            )
            .err(),
            Some(ShardMergeError::OverlappingShards { shard: 1 })
        );

        let (mut driver, _) = fleet_sim(77);
        let prep = prepare_sweep(&mut driver, &cfg, &universe, &mut Vec::new(), None);
        let err = merge_shards(
            &mut driver,
            &cfg,
            prep,
            vec![shard_delta(0..n / 2, 0)],
            Vec::new(),
            no_rescue,
            &mut Vec::new(),
        )
        .err();
        assert!(
            matches!(err, Some(ShardMergeError::MissingScopes { missing }) if missing > 0),
            "incomplete cover accepted: {err:?}"
        );

        let (mut driver, _) = fleet_sim(77);
        let prep = prepare_sweep(&mut driver, &cfg, &universe, &mut Vec::new(), None);
        let mut foreign = d0;
        foreign.world_seed ^= 1;
        assert!(matches!(
            merge_shards(
                &mut driver,
                &cfg,
                prep,
                vec![foreign],
                Vec::new(),
                no_rescue,
                &mut Vec::new()
            )
            .err(),
            Some(ShardMergeError::ForeignDelta { shard: 0, .. })
        ));
    }

    /// The lifted fault gate in miniature, no sockets: a faulted sweep
    /// probed in two worker shards, per-shard fault books folded on the
    /// driver, and the rescue phase dispatched back to a surviving
    /// worker must reproduce the single-process faulted run exactly —
    /// result aggregates, fault summary, telemetry, and snapshot.
    #[test]
    fn faulted_sharded_sweep_matches_single_process() {
        for (profile, fault_seed) in [(FaultProfile::Lossy, 5), (FaultProfile::PopChurn, 3)] {
            let cfg = fleet_cfg();
            let faulted = |seed: u64| {
                let world = World::generate(WorldConfig::tiny(seed));
                let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
                let sim = Sim::with_faults(
                    world,
                    Arc::new(MetricsRegistry::new()),
                    &FaultConfig::profile(profile, fault_seed),
                );
                (sim, universe)
            };
            let (mut sim_ref, universe) = faulted(101);
            let (res_ref, snap_ref) =
                run_technique_full(&mut sim_ref, &cfg, &universe, &mut Vec::new(), None);
            let summary_ref = res_ref
                .fault
                .clone()
                .expect("faulted run carries a summary");
            assert_eq!(
                summary_ref.observed,
                summary_ref.recovered + summary_ref.degraded + summary_ref.lost,
                "single-process conservation violated at {profile}"
            );

            let (mut driver, _) = faulted(101);
            let prep = prepare_sweep(&mut driver, &cfg, &universe, &mut Vec::new(), None);
            assert!(prep.faulted(), "driver prep must carry the fault plan");
            let n = prep.num_units();
            let mid = n / 2;
            let mut workers = Vec::new();
            let mut deltas = Vec::new();
            let mut books = Vec::new();
            for (id, range) in [(0u32, 0..mid), (1u32, mid..n)] {
                let (mut worker, w_universe) = faulted(101);
                let w_prep = prepare_sweep(&mut worker, &cfg, &w_universe, &mut Vec::new(), None);
                let (delta, book) = probe_shard(&mut worker, &cfg, &w_prep, range, id);
                deltas.push(delta);
                books.extend(book);
                workers.push((worker, w_prep));
            }
            // Merge in reverse arrival order on purpose: neither the
            // delta set nor the fault-book fold may depend on wire
            // order.
            deltas.reverse();
            books.reverse();
            let (res, snap) = merge_shards(
                &mut driver,
                &cfg,
                prep,
                deltas,
                books,
                |units| {
                    // The whole rescue phase lands on one surviving
                    // worker, exactly as a driver with one live peer
                    // would dispatch it.
                    let (worker, w_prep) = &mut workers[0];
                    Ok(vec![probe_rescue_shard(worker, &cfg, w_prep, &units, 0)])
                },
                &mut Vec::new(),
            )
            .expect("faulted merge");

            assert_eq!(
                snap, snap_ref,
                "merged faulted snapshot diverged at {profile}"
            );
            assert_eq!(
                res.fault, res_ref.fault,
                "fault summaries diverged at {profile}"
            );
            assert_eq!(res.probes_sent, res_ref.probes_sent);
            assert_eq!(res.drops, res_ref.drops);
            assert_eq!(res.hits, res_ref.hits);
            assert_eq!(res.probe_counts, res_ref.probe_counts);
            assert_eq!(res.scope_pairs, res_ref.scope_pairs);
            assert_eq!(
                driver.metrics().snapshot().to_json(),
                sim_ref.metrics().snapshot().to_json(),
                "driver telemetry diverged from the single-process faulted run at {profile}"
            );
            assert_eq!(driver.gpdns_stats(), sim_ref.gpdns_stats());
        }
    }

    /// Fault-book folding is associative and order-invariant: any
    /// grouping of any permutation reaches the same canonical book.
    #[test]
    fn fault_book_merge_is_order_invariant() {
        let books = [
            PopHealth {
                pop: 3,
                attempts: 40,
                drops: 25,
                tripped: false,
            },
            PopHealth {
                pop: 1,
                attempts: 10,
                drops: 0,
                tripped: true,
            },
            PopHealth {
                pop: 3,
                attempts: 5,
                drops: 1,
                tripped: true,
            },
            PopHealth {
                pop: 1,
                attempts: 7,
                drops: 2,
                tripped: false,
            },
        ];
        let canonical = merge_fault_books(&books);
        assert_eq!(
            canonical,
            vec![
                PopHealth {
                    pop: 1,
                    attempts: 17,
                    drops: 2,
                    tripped: true,
                },
                PopHealth {
                    pop: 3,
                    attempts: 45,
                    drops: 26,
                    tripped: true,
                },
            ]
        );
        // Reversed input, and a fold of partial folds, agree.
        let mut rev = books;
        rev.reverse();
        assert_eq!(merge_fault_books(&rev), canonical);
        let left = merge_fault_books(&books[..2]);
        let right = merge_fault_books(&books[2..]);
        let refold: Vec<PopHealth> = left.into_iter().chain(right).collect();
        assert_eq!(merge_fault_books(&refold), canonical);
        // Canonical form is a fixed point.
        assert_eq!(merge_fault_books(&canonical), canonical);
    }
}
