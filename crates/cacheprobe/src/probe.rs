//! The probing loop (§3.1.1, "probing details") and the end-to-end
//! technique runner.
//!
//! Probing is embarrassingly parallel across PoPs — each bound vantage
//! point is an independent VM with its own connection state — so the
//! runner fans the per-PoP streams out over threads (crossbeam scoped),
//! sharing the immutable simulation core. Results merge in PoP order,
//! keeping the whole run deterministic.

use std::collections::HashMap;
use std::sync::Arc;

use clientmap_dns::{wire, DomainName, Message, Question};
use clientmap_net::Prefix;
use clientmap_sim::{GpdnsSession, PopId, ProbeOutcome, Sim, SimTime, SimView};
use clientmap_telemetry::{Counter, Histogram, MetricsRegistry};

use crate::calibrate::{calibrate, sample_prefixes};
use crate::results::CacheProbeResult;
use crate::scopescan::scan;
use crate::vantage::{discover, BoundVantage};
use crate::ProbeConfig;

/// Sends `cfg.redundancy` identical non-recursive ECS queries for
/// ⟨PoP, prefix, domain⟩ (covering multiple cache pools) and returns
/// the best outcome. Hit > HitScopeZero > Miss > Dropped.
#[allow(clippy::too_many_arguments)]
pub fn probe_scope_with(
    view: &SimView<'_>,
    session: &mut GpdnsSession,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
) -> ProbeOutcome {
    let q = Message::query(
        (t.as_millis() as u16) ^ (scope.addr() >> 8) as u16,
        Question {
            name: domain.clone(),
            rtype: clientmap_dns::RrType::A,
            class: clientmap_dns::RrClass::In,
        },
    )
    .with_recursion_desired(false)
    .with_ecs(scope);
    let Ok(packet) = wire::encode(&q) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let resp = view.gpdns_query(
            session,
            bound.prober_key(),
            bound.coord(),
            &packet,
            cfg.transport,
            rt,
        );
        let outcome = clientmap_sim::GooglePublicDns::classify_response(resp.as_deref());
        best = match (&best, &outcome) {
            (_, ProbeOutcome::Hit { .. }) => return outcome,
            (ProbeOutcome::Dropped, _) => outcome,
            (ProbeOutcome::Miss, ProbeOutcome::HitScopeZero) => outcome,
            _ => best,
        };
    }
    best
}

/// Convenience wrapper over [`probe_scope_with`] driving the [`Sim`]'s
/// built-in session (single-threaded callers: examples, ablations).
/// Rate-limiter state persists across calls, as it must for UDP
/// throttling to be observable.
pub fn probe_scope(
    sim: &mut Sim,
    bound: &BoundVantage,
    domain: &DomainName,
    scope: Prefix,
    cfg: &ProbeConfig,
    t: SimTime,
) -> ProbeOutcome {
    let q = Message::query(
        (t.as_millis() as u16) ^ (scope.addr() >> 8) as u16,
        Question {
            name: domain.clone(),
            rtype: clientmap_dns::RrType::A,
            class: clientmap_dns::RrClass::In,
        },
    )
    .with_recursion_desired(false)
    .with_ecs(scope);
    let Ok(packet) = wire::encode(&q) else {
        return ProbeOutcome::Dropped;
    };
    let mut best = ProbeOutcome::Dropped;
    for r in 0..cfg.redundancy {
        let rt = t + SimTime::from_millis(u64::from(r));
        let resp = sim.gpdns_query(
            bound.prober_key(),
            bound.coord(),
            &packet,
            cfg.transport,
            rt,
        );
        let outcome = clientmap_sim::GooglePublicDns::classify_response(resp.as_deref());
        best = match (&best, &outcome) {
            (_, ProbeOutcome::Hit { .. }) => return outcome,
            (ProbeOutcome::Dropped, _) => outcome,
            (ProbeOutcome::Miss, ProbeOutcome::HitScopeZero) => outcome,
            _ => best,
        };
    }
    best
}

/// Selects the probing domains: the `num_alexa_domains` most popular
/// ECS+TTL-qualified catalog domains, plus the Microsoft validation
/// domain if configured.
pub fn select_domains(sim: &Sim, cfg: &ProbeConfig) -> Vec<DomainName> {
    let catalog = &sim.world().domains;
    let mut domains: Vec<DomainName> = catalog
        .top_probeable(cfg.num_alexa_domains)
        .iter()
        .map(|s| s.name.clone())
        .collect();
    if cfg.include_microsoft_domain {
        let ms = catalog.microsoft_cdn().name.clone();
        if !domains.contains(&ms) {
            domains.push(ms);
        }
    }
    domains
}

/// Telemetry handles for one PoP worker: the workspace-wide probe
/// counters (shared `Arc`s — concurrent workers bump the same atomics)
/// plus this worker's per-PoP family. Resolved once per worker so the
/// probing loop itself never touches the registry lock.
///
/// The outcome counters satisfy two reconciliation invariants checked
/// after every end-to-end run: `probes_sent == redundancy × attempts`
/// and `hit + scope0 + miss + dropped == attempts`.
struct ProbeMetrics {
    attempts: Arc<Counter>,
    probes_sent: Arc<Counter>,
    hit: Arc<Counter>,
    scope0: Arc<Counter>,
    miss: Arc<Counter>,
    dropped: Arc<Counter>,
    hit_ttl_secs: Arc<Histogram>,
    pop_attempts: Arc<Counter>,
    pop_hits: Arc<Counter>,
}

impl ProbeMetrics {
    fn resolve(m: &MetricsRegistry, pop_code: &str) -> ProbeMetrics {
        ProbeMetrics {
            attempts: m.counter("cacheprobe.attempts"),
            probes_sent: m.counter("cacheprobe.probes_sent"),
            hit: m.counter("cacheprobe.outcome.hit"),
            scope0: m.counter("cacheprobe.outcome.scope0"),
            miss: m.counter("cacheprobe.outcome.miss"),
            dropped: m.counter("cacheprobe.outcome.dropped"),
            hit_ttl_secs: m.histogram("cacheprobe.hit.remaining_ttl_secs"),
            pop_attempts: m.counter(&format!("cacheprobe.pop.{pop_code}.attempts")),
            pop_hits: m.counter(&format!("cacheprobe.pop.{pop_code}.hits")),
        }
    }
}

/// What one PoP's worker produced.
struct PopTally {
    pop: PopId,
    /// (domain, query scope, response scope, remaining TTL) per hit.
    hits: Vec<(usize, Prefix, Prefix, u32)>,
    /// (domain, query scope) → (attempts, hits) for activity ranking.
    counts: HashMap<(usize, Prefix), (u64, u64)>,
    probes_sent: u64,
    scope0_hits: u64,
    drops: u64,
    session: GpdnsSession,
}

/// Probes every assigned scope at one PoP for the whole window.
fn probe_pop(
    view: &SimView<'_>,
    bound: &BoundVantage,
    domains: &[DomainName],
    per_domain: &[Vec<Prefix>],
    cfg: &ProbeConfig,
    t0: SimTime,
    metrics: &ProbeMetrics,
) -> PopTally {
    let mut tally = PopTally {
        pop: bound.pop,
        hits: Vec::new(),
        counts: HashMap::new(),
        probes_sent: 0,
        scope0_hits: 0,
        drops: 0,
        session: GpdnsSession::new(),
    };
    let window_secs = cfg.duration_hours * 3600.0;
    let slot_secs = 1.0 / cfg.rate_per_domain;
    let total_slots = (window_secs * cfg.rate_per_domain) as u64;

    // The five per-domain probe streams run concurrently on the VM and
    // share one TCP connection's pacing, so their queries must reach the
    // PoP in true time order (the rate limiter is stateful). An event
    // queue k-way merges the streams: one pending event per stream,
    // re-armed with the stream's next slot after each probe.
    struct Slot {
        domain: usize,
        index: usize,
        pass: u64,
        loops: u64,
    }
    let mut queue: clientmap_sim::EventQueue<Slot> = clientmap_sim::EventQueue::new();
    for (d, scopes) in per_domain.iter().enumerate() {
        if scopes.is_empty() {
            continue;
        }
        // The paper's 120 h at 50/s over ~2.4M prefixes ≈ 9 passes.
        let loops = (total_slots / scopes.len() as u64).clamp(1, 9);
        queue.push(
            t0,
            Slot {
                domain: d,
                index: 0,
                pass: 0,
                loops,
            },
        );
    }
    while let Some((t, slot)) = queue.pop() {
        let scopes = &per_domain[slot.domain];
        let scope = scopes[slot.index];
        tally.probes_sent += u64::from(cfg.redundancy);
        metrics.attempts.inc();
        metrics.pop_attempts.inc();
        metrics.probes_sent.add(u64::from(cfg.redundancy));
        let count = tally.counts.entry((slot.domain, scope)).or_insert((0, 0));
        count.0 += 1;
        match probe_scope_with(
            view,
            &mut tally.session,
            bound,
            &domains[slot.domain],
            scope,
            cfg,
            t,
        ) {
            ProbeOutcome::Hit {
                scope: resp_scope,
                remaining_ttl,
            } => {
                count.1 += 1;
                metrics.hit.inc();
                metrics.pop_hits.inc();
                metrics.hit_ttl_secs.record(u64::from(remaining_ttl));
                tally
                    .hits
                    .push((slot.domain, scope, resp_scope, remaining_ttl));
            }
            ProbeOutcome::HitScopeZero => {
                metrics.scope0.inc();
                tally.scope0_hits += 1;
            }
            ProbeOutcome::Miss => metrics.miss.inc(),
            ProbeOutcome::Dropped => {
                metrics.dropped.inc();
                tally.drops += 1;
            }
        }
        // Arm the stream's next slot.
        let (next_index, next_pass) = if slot.index + 1 < scopes.len() {
            (slot.index + 1, slot.pass)
        } else {
            (0, slot.pass + 1)
        };
        if next_pass < slot.loops {
            let offset_secs =
                (next_pass as f64 * scopes.len() as f64 + next_index as f64) * slot_secs;
            if offset_secs < window_secs {
                queue.push(
                    t0 + SimTime::from_secs_f64(offset_secs),
                    Slot {
                        domain: slot.domain,
                        index: next_index,
                        pass: next_pass,
                        loops: slot.loops,
                    },
                );
            }
        }
    }
    tally
}

/// Runs the full cache-probing technique.
///
/// `universe` is the public probe universe (RIR allocations /
/// Routeviews blocks). Returns everything downstream analysis needs.
pub fn run_technique(sim: &mut Sim, cfg: &ProbeConfig, universe: &[Prefix]) -> CacheProbeResult {
    let seed = sim.world().config.seed;

    // 1. Vantage discovery (optionally capped for ablations).
    let mut bound = discover(sim, SimTime::ZERO);
    if let Some(cap) = cfg.max_pops {
        bound.truncate(cap);
    }

    // 2. Domain selection + authoritative scope pre-scan.
    let domains = select_domains(sim, cfg);
    let scan_result = scan(sim, &domains, universe, SimTime::ZERO);

    // 3. Service-radius calibration (start a few hours in, so caches
    //    reflect steady-state client activity).
    let sample = sample_prefixes(
        sim,
        universe,
        cfg.calibration_sample,
        cfg.calibration_max_error_km,
        seed ^ 0xCA11,
    );
    let t_cal = SimTime::from_hours(6);
    let radii = calibrate(sim, &bound, &domains, &sample, cfg, t_cal);

    // 4. Scope → PoP assignment by service radius (MaxMind location +
    //    error radius possibly within the radius).
    let pops = clientmap_sim::pop_catalog();
    let mut assigned: HashMap<PopId, Vec<(usize, Prefix)>> = HashMap::new();
    for (d, plan) in scan_result.domains.iter().enumerate() {
        for scope in &plan.scopes {
            let geo = {
                let geodb = &sim.world().geodb;
                geodb
                    .lookup(*scope)
                    .or_else(|| geodb.lookup_addr(scope.addr()))
                    .map(|e| (e.coord, e.error_radius_km))
            };
            let Some((coord, err_km)) = geo else { continue };
            for b in &bound {
                let radius = radii.radius(b.pop, cfg.fallback_radius_km);
                if coord.distance_km(&pops[b.pop].coord) <= radius + err_km {
                    assigned.entry(b.pop).or_default().push((d, *scope));
                }
            }
        }
    }

    // 5. The probing loops, one worker per PoP over the shared core.
    let t0 = SimTime::from_hours(8);
    let metrics = Arc::clone(sim.metrics());
    metrics.counter("cacheprobe.runs").inc();
    metrics
        .counter("cacheprobe.pops_bound")
        .add(bound.len() as u64);
    metrics
        .counter("cacheprobe.domains_selected")
        .add(domains.len() as u64);
    let assignment_sizes = metrics.histogram("cacheprobe.assignment_size");
    let mut result = CacheProbeResult::new(domains.clone(), bound.clone(), radii, scan_result);
    let view = sim.view();
    let mut tallies: Vec<PopTally> = Vec::with_capacity(bound.len());
    crossbeam::thread::scope(|scope_| {
        let mut handles = Vec::with_capacity(bound.len());
        for b in &bound {
            let list = assigned.get(&b.pop).cloned().unwrap_or_default();
            let mut per_domain: Vec<Vec<Prefix>> = vec![Vec::new(); domains.len()];
            for (d, scope) in &list {
                per_domain[*d].push(*scope);
            }
            result.assigned_per_pop.insert(b.pop, list.len());
            assignment_sizes.record(list.len() as u64);
            metrics
                .counter(&format!("cacheprobe.pop.{}.assigned", pops[b.pop].code))
                .add(list.len() as u64);
            let pm = ProbeMetrics::resolve(&metrics, pops[b.pop].code);
            let domains = &domains;
            let cfg_ref = cfg;
            let view_ref = &view;
            handles
                .push(scope_.spawn(move |_| {
                    probe_pop(view_ref, b, domains, &per_domain, cfg_ref, t0, &pm)
                }));
        }
        for h in handles {
            tallies.push(h.join().expect("probe worker panicked"));
        }
    })
    .expect("probe scope");
    let _ = &view;

    // Merge in PoP order for determinism.
    tallies.sort_by_key(|t| t.pop);
    for tally in tallies {
        result.probes_sent += tally.probes_sent;
        result.scope0_hits += tally.scope0_hits;
        result.drops += tally.drops;
        for (d, query_scope, resp_scope, remaining) in tally.hits {
            result.record_hit(d, tally.pop, query_scope, resp_scope, remaining);
        }
        for ((d, scope), (attempts, hits)) in tally.counts {
            let c = result.probe_counts.entry((d, scope)).or_default();
            c.attempts += attempts;
            c.hits += hits;
        }
        sim.absorb_session(&tally.session);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{World, WorldConfig};

    fn run_tiny(seed: u64) -> (Sim, CacheProbeResult) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::new(world);
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0; // ≈ one pass over each list
        cfg.calibration_sample = 250;
        let result = run_technique(&mut sim, &cfg, &universe);
        (sim, result)
    }

    /// One shared end-to-end run — the expensive part of this module's
    /// tests — reused by every read-only assertion below.
    fn shared_run() -> &'static (Sim, CacheProbeResult) {
        static RUN: std::sync::OnceLock<(Sim, CacheProbeResult)> = std::sync::OnceLock::new();
        RUN.get_or_init(|| run_tiny(101))
    }

    #[test]
    fn technique_end_to_end_detects_activity() {
        let (sim, result) = shared_run();
        assert!(result.probes_sent > 0);
        let active = result.active_set();
        assert!(
            active.num_slash24s() > 0,
            "no active prefixes found ({} probes)",
            result.probes_sent
        );
        // Active space is a subset of the (routed) universe and every
        // detected /24 belongs to a prefix with real activity nearby —
        // precision is checked properly in the analysis crate.
        assert!(active.num_slash24s() <= sim.world().routed_slash24s() * 2);
    }

    #[test]
    fn probing_selects_paper_domains() {
        let world = World::generate(WorldConfig::tiny(102));
        let sim = Sim::new(world);
        let domains = select_domains(&sim, &ProbeConfig::default());
        let names: Vec<String> = domains.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "www.google.com",
                "www.youtube.com",
                "facebook.com",
                "www.wikipedia.org",
                "cdn.msvalidation.example",
            ]
        );
    }

    #[test]
    fn hits_record_scope_pairs_for_table2() {
        let (_, result) = shared_run();
        let total: u64 = result.scope_pairs.values().sum();
        assert!(total > 0, "no scope pairs recorded");
        // Most response scopes equal the query scope (Table 2: ~90%).
        let exact: u64 = result
            .scope_pairs
            .iter()
            .filter(|((_, q, r), _)| q == r)
            .map(|(_, c)| *c)
            .sum();
        let frac = exact as f64 / total as f64;
        assert!(frac > 0.75, "exact-scope fraction {frac}");
    }

    #[test]
    fn per_pop_density_populated() {
        let (_, result) = shared_run();
        let with_hits = result
            .pop_hit_prefixes
            .values()
            .filter(|s| s.num_slash24s() > 0)
            .count();
        assert!(with_hits >= 2, "only {with_hits} PoPs saw hits");
    }

    #[test]
    fn deterministic_run_even_across_thread_interleavings() {
        let (sim_a, a) = run_tiny(105);
        let (sim_b, b) = run_tiny(105);
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.active_set().num_slash24s(), b.active_set().num_slash24s());
        assert_eq!(a.scope0_hits, b.scope0_hits);
        assert_eq!(a.hits.len(), b.hits.len());
        // The telemetry snapshot — every counter and histogram in the
        // registry, gpdns and probe side alike — must also agree
        // byte-for-byte: all updates are commutative atomics, so thread
        // scheduling must not leak into totals.
        assert_eq!(
            sim_a.metrics().snapshot().to_json(),
            sim_b.metrics().snapshot().to_json()
        );
    }

    #[test]
    fn probe_counters_reconcile_with_result() {
        let (sim, result) = shared_run();
        let snap = sim.metrics().snapshot();
        let attempts = snap.counter("cacheprobe.attempts");
        let redundancy = u64::from(ProbeConfig::test_scale().redundancy);
        assert_eq!(
            snap.counter("cacheprobe.probes_sent"),
            redundancy * attempts
        );
        assert_eq!(snap.counter("cacheprobe.probes_sent"), result.probes_sent);
        assert_eq!(
            snap.counter("cacheprobe.outcome.hit")
                + snap.counter("cacheprobe.outcome.scope0")
                + snap.counter("cacheprobe.outcome.miss")
                + snap.counter("cacheprobe.outcome.dropped"),
            attempts
        );
        assert_eq!(
            snap.counter("cacheprobe.outcome.scope0"),
            result.scope0_hits
        );
        assert_eq!(snap.counter("cacheprobe.outcome.dropped"), result.drops);
        // `result.hits` aggregates by (domain, scope); sum the per-key
        // event counts to compare against the per-event counter.
        let hit_events: u64 = result.hits.values().map(|h| h.hits).sum();
        assert_eq!(snap.counter("cacheprobe.outcome.hit"), hit_events);
        // Per-PoP families sum back to the global counters.
        let pops = clientmap_sim::pop_catalog();
        let pop_attempts: u64 = pops
            .iter()
            .map(|p| snap.counter(&format!("cacheprobe.pop.{}.attempts", p.code)))
            .sum();
        let pop_hits: u64 = pops
            .iter()
            .map(|p| snap.counter(&format!("cacheprobe.pop.{}.hits", p.code)))
            .sum();
        assert_eq!(pop_attempts, attempts);
        assert_eq!(pop_hits, snap.counter("cacheprobe.outcome.hit"));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

        /// Same seed ⇒ byte-identical metrics snapshots, for arbitrary
        /// seeds: the end-to-end determinism claim, stated as a property.
        #[test]
        fn metrics_snapshot_reproduces_for_any_seed(seed in 200u64..240) {
            let (sim_a, _) = run_tiny(seed);
            let (sim_b, _) = run_tiny(seed);
            proptest::prop_assert_eq!(
                sim_a.metrics().snapshot().to_json(),
                sim_b.metrics().snapshot().to_json()
            );
        }
    }
}
