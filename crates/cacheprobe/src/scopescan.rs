//! The authoritative scope pre-scan (§3.1.1, "identifying candidate
//! prefixes for ECS queries").
//!
//! Authoritatives often answer with a scope *less specific* than the
//! /24 in the query; Google then caches (and answers) for the whole
//! scope. So instead of probing Google for every /24, the prober first
//! queries each domain's authoritative across the address space,
//! skipping ahead by each returned scope, and later probes Google once
//! per learned scope. The paper saves ~an order of magnitude of probes
//! this way; Table 2 validates that scopes are stable enough for the
//! reduction to be safe.
//!
//! The scan universe is built from public data — RIR allocation files /
//! Routeviews dumps — passed in by the caller as a list of blocks.

use clientmap_dns::DomainName;
use clientmap_net::Prefix;
use clientmap_sim::{Sim, SimTime};
use clientmap_store::{slash24_index, Slash24Table};

/// The learned query plan for one domain: the distinct scopes to probe
/// Google with, each covering one or more universe /24s.
#[derive(Debug, Clone)]
pub struct DomainScopes {
    /// The domain.
    pub domain: DomainName,
    /// Learned scopes, disjoint within a block walk, address order.
    pub scopes: Vec<Prefix>,
    /// Authoritative queries the scan spent.
    pub queries_spent: u64,
}

/// The result of scanning all probing domains.
#[derive(Debug, Clone, Default)]
pub struct ScopeScan {
    /// Per-domain plans.
    pub domains: Vec<DomainScopes>,
}

impl ScopeScan {
    /// The plan for a domain.
    pub fn for_domain(&self, domain: &DomainName) -> Option<&DomainScopes> {
        self.domains.iter().find(|d| &d.domain == domain)
    }

    /// Total scopes across domains.
    pub fn total_scopes(&self) -> usize {
        self.domains.iter().map(|d| d.scopes.len()).sum()
    }

    /// Total authoritative queries spent.
    pub fn total_queries(&self) -> u64 {
        self.domains.iter().map(|d| d.queries_spent).sum()
    }
}

/// Scope dedup over the full /24 space: a dense [`Slash24Table`] tags
/// the /24 holding each scope's network address with `scope length +
/// 1` (0 = unseen), so membership is one page-indexed byte load
/// instead of a hash probe. Scopes longer than /24 or colliding inside
/// one /24 slot — both rare, since authoritatives answer at /24 or
/// coarser — fall back to a small linear spill list, preserving exact
/// set semantics.
#[derive(Debug, Default)]
struct SeenScopes {
    dense: Slash24Table,
    spill: Vec<Prefix>,
}

impl SeenScopes {
    /// Records `s`; returns `true` the first time it is seen.
    fn insert(&mut self, s: Prefix) -> bool {
        if s.len() <= 24 {
            let idx = slash24_index(s.addr());
            let tag = s.len() + 1;
            match self.dense.get(idx) {
                0 => {
                    self.dense.set(idx, tag);
                    return true;
                }
                t if t == tag => return false,
                _ => {} // different-length scope shares the /24 slot
            }
        }
        if self.spill.contains(&s) {
            false
        } else {
            self.spill.push(s);
            true
        }
    }
}

/// Scans one domain's authoritative over `universe` blocks, walking
/// each block /24-by-/24 but skipping ahead over each returned scope.
pub fn scan_domain(
    sim: &Sim,
    domain: &DomainName,
    universe: &[Prefix],
    t: SimTime,
) -> DomainScopes {
    let mut scopes: Vec<Prefix> = Vec::new();
    let mut seen = SeenScopes::default();
    let mut queries = 0u64;
    for block in universe {
        let mut addr = u64::from(block.first_addr());
        let end = u64::from(block.last_addr());
        while addr <= end {
            let query = Prefix::new(addr as u32, 24).expect("24 is valid");
            queries += 1;
            let answer = sim.authoritative_scan(domain, query, t);
            let scope = answer.and_then(|a| a.scope);
            match scope {
                Some(s) if !s.is_default() => {
                    // Record the scope once; skip the rest of it.
                    if seen.insert(s) {
                        scopes.push(s);
                    }
                    addr = u64::from(s.last_addr()) + 1;
                }
                Some(_) | None => {
                    // Scope 0 (global) or no ECS: nothing cacheable per
                    // prefix here; move to the next /24.
                    addr += 256;
                }
            }
        }
    }
    scopes.sort();
    DomainScopes {
        domain: domain.clone(),
        scopes,
        queries_spent: queries,
    }
}

/// Scans all `domains` over the universe.
pub fn scan(sim: &Sim, domains: &[DomainName], universe: &[Prefix], t: SimTime) -> ScopeScan {
    ScopeScan {
        domains: domains
            .iter()
            .map(|d| scan_domain(sim, d, universe, t))
            .collect(),
    }
}

/// The /24 probing cost a scan avoided: universe /24 count minus the
/// number of learned scopes (per domain).
pub fn probes_saved(universe: &[Prefix], plan: &DomainScopes) -> i64 {
    let total: u64 = universe.iter().map(|b| b.num_slash24s()).sum();
    total as i64 - plan.scopes.len() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{World, WorldConfig};

    fn setup() -> (Sim, Vec<Prefix>) {
        let world = World::generate(WorldConfig::tiny(81));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        (Sim::new(world), universe)
    }

    #[test]
    fn scopes_cover_universe_and_save_probes() {
        let (sim, universe) = setup();
        let domain: DomainName = "www.google.com".parse().unwrap();
        let plan = scan_domain(&sim, &domain, &universe, SimTime::ZERO);
        assert!(!plan.scopes.is_empty());
        // Every universe /24 is inside some scope or a scope-0 region.
        let total_24s: u64 = universe.iter().map(|b| b.num_slash24s()).sum();
        let covered: u64 = plan.scopes.iter().map(|s| s.num_slash24s()).sum();
        assert!(
            covered as f64 > 0.8 * total_24s as f64,
            "{covered}/{total_24s}"
        );
        // The scan spends far fewer queries than one per /24 would.
        assert!(plan.queries_spent < total_24s, "no skipping happened");
        assert!(probes_saved(&universe, &plan) > 0);
    }

    #[test]
    fn wikipedia_scopes_coarser_than_google() {
        let (sim, universe) = setup();
        let g = scan_domain(
            &sim,
            &"www.google.com".parse().unwrap(),
            &universe,
            SimTime::ZERO,
        );
        let w = scan_domain(
            &sim,
            &"www.wikipedia.org".parse().unwrap(),
            &universe,
            SimTime::ZERO,
        );
        // Wikipedia's /16–/18 scopes ⇒ far fewer scopes than Google's /20–/24.
        assert!(
            w.scopes.len() * 2 < g.scopes.len(),
            "wikipedia {} vs google {}",
            w.scopes.len(),
            g.scopes.len()
        );
        let avg_len = |p: &DomainScopes| {
            p.scopes.iter().map(|s| f64::from(s.len())).sum::<f64>() / p.scopes.len() as f64
        };
        assert!(avg_len(&w) < avg_len(&g));
    }

    #[test]
    fn non_ecs_domain_yields_no_scopes() {
        let (sim, universe) = setup();
        let plan = scan_domain(
            &sim,
            &"www.amazon.com".parse().unwrap(),
            &universe,
            SimTime::ZERO,
        );
        assert!(plan.scopes.is_empty());
    }

    #[test]
    fn scan_multi_domain() {
        let (sim, universe) = setup();
        let domains: Vec<DomainName> = vec![
            "www.google.com".parse().unwrap(),
            "www.wikipedia.org".parse().unwrap(),
        ];
        let s = scan(&sim, &domains, &universe, SimTime::ZERO);
        assert_eq!(s.domains.len(), 2);
        assert!(s.total_scopes() > 0);
        assert!(s.total_queries() > 0);
        assert!(s.for_domain(&domains[0]).is_some());
        assert!(s.for_domain(&"missing.example".parse().unwrap()).is_none());
    }

    #[test]
    fn seen_scopes_match_a_set_even_under_slot_collisions() {
        use std::collections::HashSet;
        let mut seen = SeenScopes::default();
        let mut reference: HashSet<Prefix> = HashSet::new();
        // Same /24 slot under three different lengths, a /25 (spill),
        // and a distinct /24 — inserted twice each.
        let scopes = [
            Prefix::new(0x0A000000, 24).unwrap(),
            Prefix::new(0x0A000000, 20).unwrap(),
            Prefix::new(0x0A000000, 16).unwrap(),
            Prefix::new(0x0A000000, 25).unwrap(),
            Prefix::new(0x0A000100, 24).unwrap(),
        ];
        for _ in 0..2 {
            for s in scopes {
                assert_eq!(seen.insert(s), reference.insert(s), "{s}");
            }
        }
    }

    #[test]
    fn scopes_deterministic_and_sorted() {
        let (sim, universe) = setup();
        let domain: DomainName = "facebook.com".parse().unwrap();
        let a = scan_domain(&sim, &domain, &universe, SimTime::ZERO);
        let b = scan_domain(&sim, &domain, &universe, SimTime::ZERO);
        assert_eq!(a.scopes, b.scopes);
        let mut sorted = a.scopes.clone();
        sorted.sort();
        assert_eq!(sorted, a.scopes);
    }
}
