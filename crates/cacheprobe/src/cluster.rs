//! Cluster-based predictive probing: the greedy representative planner
//! (ROADMAP item 3).
//!
//! Scope discovery already prunes the probe universe; this planner goes
//! further by not probing look-alike scopes at all. Every slot the
//! inner plan (exhaustive cold, warm-start warm) would probe live is a
//! *cluster candidate*; candidates of one ⟨vantage, domain⟩ unit are
//! greedily epsilon-clustered on a cheap feature distance (origin AS,
//! AS category, home metro, scope length, last-sweep verdict), only the
//! first candidate of each cluster — the **representative** — is probed
//! live, and after the probing window every member inherits a copy of
//! its representative's record tagged with a confidence derived from
//! the feature distance ([`clientmap_store::ConfidenceRecord`]).
//!
//! Escalation closes the loop: the *next* clustered sweep probes a
//! tagged slot live (instead of replaying or re-extrapolating it) when
//! its stored confidence falls below the configured floor or its
//! extrapolated verdict flipped away from what the slot last held —
//! so wrong copies are self-correcting within one warm sweep.
//!
//! Everything is a pure function of ⟨world seed, config, universe,
//! prior snapshot⟩: candidate visit order is a seeded stable hash and
//! clusters grow greedily in that order, so driver, workers, and any
//! thread count plan byte-identically. Conservation law, checked by
//! `clientmap-core`'s invariant layer:
//! `representatives + extrapolated + escalated == planned_universe`.

use std::collections::BTreeMap;

use clientmap_net::{Prefix, SeedMixer};
use clientmap_store::{
    HitEvent, PlanReason, RecordKey, ScopeRecord, SweepSnapshot, CONFIDENCE_MAX,
};
use clientmap_world::World;

use crate::plan::{ExhaustivePlan, PlanDecision, PlanSlot, ProbePlan, WarmStartPlan};
use crate::probe::{record_key, ProbeUnit};
use crate::vantage::BoundVantage;
use crate::ProbeConfig;

/// Verdict rank of a stored record, mirroring the derivation
/// `CacheProbeResult::verdict_table` applies to probe counts:
/// `Hit(4) > HitScopeZero(3) > Miss(2) > Dropped(1) > Unmeasured(0)`.
pub fn verdict_rank(rec: &ScopeRecord) -> u8 {
    if rec.hits() > 0 {
        4
    } else if rec.scope0 > 0 {
        3
    } else if rec.attempts > rec.drops {
        2
    } else if rec.attempts > 0 {
        1
    } else {
        0
    }
}

/// The cheap per-slot feature vector the clustering distance compares.
/// Everything here is public-data derived (RIB origin, ASdb category,
/// geolocation metro) or planner state (scope length, prior verdict) —
/// never the world's ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterFeatures {
    /// Origin AS of the scope per the RIB (`None` = unrouted).
    pub as_id: Option<usize>,
    /// ASdb category discriminant of the origin AS.
    pub category: u8,
    /// Home-metro index of the origin AS.
    pub metro: usize,
    /// Scope prefix length (scope class).
    pub scope_len: u8,
    /// Verdict rank the slot held last sweep (0 = unmeasured).
    pub prior_verdict: u8,
}

impl ClusterFeatures {
    /// Features of one scope under a prior record.
    pub fn of(world: &World, scope: Prefix, prior: Option<&ScopeRecord>) -> ClusterFeatures {
        let as_id = world
            .as_of_prefix(scope)
            .or_else(|| world.as_of_addr(scope.addr()));
        let (category, metro) = as_id.map_or((u8::MAX, usize::MAX), |id| {
            let info = &world.ases[id];
            (info.category as u8, info.home_metro)
        });
        ClusterFeatures {
            as_id,
            category,
            metro,
            scope_len: scope.len(),
            prior_verdict: prior.map_or(0, verdict_rank),
        }
    }
}

/// Weighted feature distance in `[0, 1.1]`. The AS and prior-verdict
/// terms dominate by design: at the default epsilon (0.25) a cluster
/// never spans two ASes or two different verdict histories, while
/// same-AS scopes of different lengths still merge (the length term
/// tops out at 0.10).
pub fn feature_distance(a: &ClusterFeatures, b: &ClusterFeatures) -> f64 {
    let mut d = 0.0;
    if a.as_id != b.as_id {
        d += 0.40;
    }
    if a.category != b.category {
        d += 0.15;
    }
    if a.metro != b.metro {
        d += 0.15;
    }
    d += 0.10 * f64::from(a.scope_len.abs_diff(b.scope_len)) / 32.0;
    if a.prior_verdict != b.prior_verdict {
        d += 0.30;
    }
    d
}

/// Confidence tag for a member joined at feature distance `d`: linear
/// in closeness, clamped into `1..=255` (0 is the table's "untagged").
fn confidence_of(d: f64) -> u8 {
    1 + ((1.0 - d).clamp(0.0, 1.0) * f64::from(CONFIDENCE_MAX - 1)).round() as u8
}

/// The clustered plan's accounting. Registered as
/// `cacheprobe.cluster.*` counters and pinned by the invariant layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Slots the inner plan wanted probed live (the clustering input),
    /// plus prior-tag escalations.
    pub planned_universe: u64,
    /// Cluster representatives probed live.
    pub representatives: u64,
    /// Members skipped and copied from their representative.
    pub extrapolated: u64,
    /// Slots escalated to live probing: low or flipped prior tags, and
    /// members whose would-be confidence fell below the floor.
    pub escalated: u64,
    /// Clusters formed (== representatives; kept for the report).
    pub clusters: u64,
}

impl ClusterStats {
    /// The conservation law the invariant layer re-checks.
    pub fn conserved(&self) -> bool {
        self.representatives + self.extrapolated + self.escalated == self.planned_universe
    }
}

/// The cluster-based predictive plan. Built once per sweep by a
/// deterministic greedy pass over the assigned units; [`ProbePlan`]
/// decisions are then pure map lookups, so the plan composes with
/// `plan_units` exactly like the exhaustive and warm-start planners.
#[derive(Debug)]
pub struct ClusteredPlan {
    decisions: BTreeMap<RecordKey, PlanDecision>,
    stats: ClusterStats,
}

impl ClusteredPlan {
    /// Plans a clustered sweep over `units`. Cold runs (`prior` =
    /// `None`) cluster everything; warm runs cluster only the slots the
    /// warm-start plan would re-probe, escalate low-confidence or
    /// verdict-flipped prior extrapolations, and replay the rest.
    pub fn build(
        world: &World,
        cfg: &ProbeConfig,
        world_seed: u64,
        epoch: u32,
        units: &[ProbeUnit],
        prior: Option<&SweepSnapshot>,
        bound: &[BoundVantage],
    ) -> ClusteredPlan {
        let inner_warm = prior.map(|_| WarmStartPlan {
            world_seed,
            epoch,
            expiry_budget: cfg.expiry_budget,
        });
        let mut decisions = BTreeMap::new();
        let mut stats = ClusterStats::default();
        for u in units {
            let dirty = prior.is_some_and(|p| {
                p.quarantined_pops()
                    .contains(&(bound[u.bound_idx].pop as u64))
            });
            // Collect this unit's cluster candidates (records are keyed
            // per ⟨vantage, domain⟩, so copies never cross units).
            let mut candidates: Vec<(u64, RecordKey, ClusterFeatures, PlanReason)> = Vec::new();
            for &scope in &u.scopes {
                let key = record_key(u.bound_idx, u.domain, scope);
                let prior_rec = prior.and_then(|p| p.records.get(&key));
                // Escalation: a slot whose record was extrapolated last
                // sweep is probed live — inner plan regardless — when
                // the copy was weak or its verdict flipped away from
                // what the slot last held.
                if let Some(tag) = prior.and_then(|p| p.confidence.get(&key)) {
                    let flipped = tag.prior_verdict != 0
                        && prior_rec.map_or(0, verdict_rank) != tag.prior_verdict;
                    let weak = f64::from(tag.confidence) / f64::from(CONFIDENCE_MAX)
                        < cfg.cluster_escalate_below;
                    if flipped || weak {
                        decisions.insert(key, PlanDecision::Probe(PlanReason::Dirty));
                        stats.planned_universe += 1;
                        stats.escalated += 1;
                        continue;
                    }
                }
                let slot = PlanSlot {
                    bound_idx: u.bound_idx,
                    domain: u.domain,
                    scope,
                    prior: prior_rec,
                    dirty,
                };
                let reason = match inner_warm
                    .as_ref()
                    .map_or_else(|| ExhaustivePlan.decide(&slot), |w| w.decide(&slot))
                {
                    PlanDecision::Probe(reason) => reason,
                    PlanDecision::Replay => {
                        decisions.insert(key, PlanDecision::Replay);
                        continue;
                    }
                    PlanDecision::Extrapolate { .. } => {
                        unreachable!("inner plans never extrapolate")
                    }
                };
                let order = SeedMixer::new(world_seed)
                    .mix_str("cluster-order")
                    .mix(key.0 as u64)
                    .mix(key.1 as u64)
                    .mix(u64::from(key.2))
                    .mix(u64::from(key.3))
                    .finish();
                candidates.push((order, key, ClusterFeatures::of(world, scope, prior_rec), reason));
                stats.planned_universe += 1;
            }
            // Seeded greedy epsilon-clustering: visit candidates in
            // stable hashed order; each joins the first existing
            // cluster (creation order) whose representative sits within
            // epsilon, else opens its own.
            candidates.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            let mut reps: Vec<(RecordKey, ClusterFeatures)> = Vec::new();
            for (_, key, feats, reason) in candidates {
                let joined = (cfg.cluster_epsilon > 0.0)
                    .then(|| {
                        reps.iter().find_map(|(rep_key, rep_feats)| {
                            let d = feature_distance(&feats, rep_feats);
                            (d <= cfg.cluster_epsilon).then_some((*rep_key, d))
                        })
                    })
                    .flatten();
                match joined {
                    Some((rep, d)) => {
                        let confidence = confidence_of(d);
                        if f64::from(confidence) / f64::from(CONFIDENCE_MAX)
                            < cfg.cluster_escalate_below
                        {
                            // Too far to trust the copy: probe it live.
                            decisions.insert(key, PlanDecision::Probe(reason));
                            stats.escalated += 1;
                        } else {
                            decisions.insert(key, PlanDecision::Extrapolate { rep, confidence });
                            stats.extrapolated += 1;
                        }
                    }
                    None => {
                        reps.push((key, feats));
                        decisions.insert(key, PlanDecision::Probe(reason));
                        stats.representatives += 1;
                        stats.clusters += 1;
                    }
                }
            }
        }
        ClusteredPlan { decisions, stats }
    }
}

impl ProbePlan for ClusteredPlan {
    fn name(&self) -> &'static str {
        "clustered"
    }

    fn decide(&self, slot: &PlanSlot<'_>) -> PlanDecision {
        self.decisions
            .get(&record_key(slot.bound_idx, slot.domain, slot.scope))
            .copied()
            // A slot the build pass never saw (impossible through
            // `prepare_sweep`, which plans the same unit list) is
            // probed live — the conservative answer.
            .unwrap_or(PlanDecision::Probe(PlanReason::New))
    }

    fn records_stats(&self) -> bool {
        false
    }

    fn cluster_stats(&self) -> Option<ClusterStats> {
        Some(self.stats)
    }
}

/// The member's synthetic record under extrapolation: the
/// representative's outcome counts with every hit rewritten to the
/// member's own scope (a copied hit is evidence about the *member's*
/// address space, and downstream response-scope accounting must not
/// credit the representative's /24 twice).
pub fn synthesize_member_record(rep: &ScopeRecord, member: Prefix) -> ScopeRecord {
    ScopeRecord {
        attempts: rep.attempts,
        scope0: rep.scope0,
        drops: rep.drops,
        hit_events: rep
            .hit_events
            .iter()
            .map(|e| HitEvent {
                resp_addr: member.addr(),
                resp_len: member.len(),
                remaining_ttl: e.remaining_ttl,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_units;
    use crate::probe::ProbeUnit;
    use clientmap_store::ConfidenceRecord;
    use clientmap_world::WorldConfig;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::generate(WorldConfig::tiny(11)))
    }

    fn cfg(epsilon: f64, escalate_below: f64) -> ProbeConfig {
        ProbeConfig {
            clustered_probing: true,
            cluster_epsilon: epsilon,
            cluster_escalate_below: escalate_below,
            // Everything measured expires each epoch, so warm inner
            // plans feed every slot back through the clustering.
            expiry_budget: 1.0,
            ..ProbeConfig::test_scale()
        }
    }

    fn block_units(n: usize) -> (Vec<ProbeUnit>, Vec<BoundVantage>) {
        let scopes: Vec<Prefix> = world().blocks.iter().map(|b| b.prefix).take(n).collect();
        assert_eq!(scopes.len(), n, "tiny world has fewer blocks than the test wants");
        (
            vec![ProbeUnit {
                bound_idx: 0,
                domain: 0,
                scopes,
            }],
            vec![BoundVantage { vp: 0, pop: 0 }],
        )
    }

    #[test]
    fn epsilon_zero_degenerates_to_the_exhaustive_plan() {
        let (units, bound) = block_units(40);
        let plan = ClusteredPlan::build(world(), &cfg(0.0, 0.5), 7, 1, &units, None, &bound);
        let stats = plan.cluster_stats().unwrap();
        assert_eq!(stats.planned_universe, 40);
        assert_eq!(stats.representatives, 40);
        assert_eq!(stats.extrapolated, 0);
        assert_eq!(stats.escalated, 0);
        assert!(stats.conserved());
        let out = plan_units(&plan, units.clone(), None, &bound);
        let exhaustive = plan_units(&ExhaustivePlan, units, None, &bound);
        assert_eq!(out.live_units, exhaustive.live_units);
        assert!(out.extrapolated.is_empty());
        assert!(!plan.records_stats());
    }

    #[test]
    fn default_epsilon_merges_lookalike_scopes() {
        let (units, bound) = block_units(40);
        let plan = ClusteredPlan::build(world(), &cfg(0.25, 0.5), 7, 1, &units, None, &bound);
        let stats = plan.cluster_stats().unwrap();
        assert!(stats.conserved());
        assert!(
            stats.extrapolated > 0,
            "no clusters formed over {} routed blocks: {stats:?}",
            40
        );
        assert_eq!(stats.representatives, stats.clusters);
        // Every extrapolated member points at a slot the plan probes
        // live, and the member's own slot is not probed.
        let out = plan_units(&plan, units, None, &bound);
        let live: std::collections::BTreeSet<RecordKey> = out
            .live_units
            .iter()
            .flat_map(|u| {
                u.scopes
                    .iter()
                    .map(move |s| crate::probe::record_key(u.bound_idx, u.domain, *s))
            })
            .collect();
        assert_eq!(out.extrapolated.len() as u64, stats.extrapolated);
        for e in &out.extrapolated {
            assert!(live.contains(&e.rep), "rep of {e:?} is not probed live");
            let member = crate::probe::record_key(e.bound_idx, e.domain, e.scope);
            assert!(!live.contains(&member), "member {e:?} probed despite extrapolation");
            assert!((1..=CONFIDENCE_MAX).contains(&e.confidence));
        }
    }

    #[test]
    fn weak_or_flipped_prior_tags_escalate_to_live_probing() {
        let (units, bound) = block_units(3);
        let scopes = units[0].scopes.clone();
        let mut prior = SweepSnapshot::new(7, 1);
        prior.epoch = 1;
        for &s in &scopes {
            let key = crate::probe::record_key(0, 0, s);
            prior.records.insert(
                key,
                ScopeRecord {
                    attempts: 4,
                    ..ScopeRecord::default()
                },
            );
        }
        let keys: Vec<RecordKey> = scopes
            .iter()
            .map(|&s| crate::probe::record_key(0, 0, s))
            .collect();
        // keys[0]: verdict flip — tagged as Hit(4) last sweep, but the
        // stored record now ranks Miss(2). keys[1]: weak confidence.
        // keys[2]: strong, consistent tag — no escalation.
        prior.confidence.insert(
            keys[0],
            ConfidenceRecord {
                rep: keys[2],
                confidence: 250,
                prior_verdict: 4,
            },
        );
        prior.confidence.insert(
            keys[1],
            ConfidenceRecord {
                rep: keys[2],
                confidence: 10,
                prior_verdict: 2,
            },
        );
        prior.confidence.insert(
            keys[2],
            ConfidenceRecord {
                rep: keys[0],
                confidence: 250,
                prior_verdict: 2,
            },
        );
        let plan =
            ClusteredPlan::build(world(), &cfg(0.25, 0.5), 7, 2, &units, Some(&prior), &bound);
        let stats = plan.cluster_stats().unwrap();
        assert!(stats.conserved());
        assert_eq!(stats.escalated, 2);
        let out = plan_units(&plan, units, Some(&prior), &bound);
        let live: Vec<Prefix> = out.live_units.iter().flat_map(|u| u.scopes.clone()).collect();
        assert!(live.contains(&scopes[0]), "flipped tag must re-probe");
        assert!(live.contains(&scopes[1]), "weak tag must re-probe");
    }

    #[test]
    fn confidence_spans_the_full_scale() {
        assert_eq!(confidence_of(0.0), CONFIDENCE_MAX);
        assert_eq!(confidence_of(1.0), 1);
        assert_eq!(confidence_of(2.0), 1); // clamped, never wraps to 0
        let mid = confidence_of(0.5);
        assert!(mid > confidence_of(0.75) && mid < confidence_of(0.25));
    }

    #[test]
    fn synthesized_member_records_rewrite_hits_to_the_member_scope() {
        let rep = ScopeRecord {
            attempts: 6,
            scope0: 1,
            drops: 2,
            hit_events: vec![HitEvent {
                resp_addr: 0x01020300,
                resp_len: 24,
                remaining_ttl: 99,
            }],
        };
        let member: Prefix = "10.0.0.0/20".parse().unwrap();
        let synth = synthesize_member_record(&rep, member);
        assert_eq!(synth.attempts, 6);
        assert_eq!(synth.scope0, 1);
        assert_eq!(synth.drops, 2);
        assert_eq!(
            synth.hit_events,
            vec![HitEvent {
                resp_addr: 0x0A000000,
                resp_len: 20,
                remaining_ttl: 99,
            }]
        );
    }

    /// Arbitrary slot state for the planner properties: a scope plus
    /// optional prior record / confidence tag.
    fn slot_strategy() -> impl Strategy<Value = (Prefix, Option<(u64, bool)>, Option<(u8, u8)>)> {
        (
            (any::<u32>(), 12u8..=24).prop_map(|(addr, len)| {
                let mask = u32::MAX << (32 - len);
                Prefix::new(addr & mask, len).unwrap()
            }),
            proptest::option::of((0u64..6, any::<bool>())),
            proptest::option::of((1u8..=255, 0u8..=4)),
        )
    }

    proptest::proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The clustered plan is a partition with a conservation law:
        /// every slot gets exactly one decision, extrapolated members
        /// reference a live representative, and `representatives +
        /// extrapolated + escalated == planned_universe` — for
        /// arbitrary scopes, prior records, confidence tags, epsilons,
        /// and thresholds.
        #[test]
        fn clustering_partitions_and_conserves(
            slots in proptest::collection::vec(slot_strategy(), 1..24),
            epsilon in 0.0f64..0.7,
            escalate_below in 0.0f64..1.0,
            seed in any::<u64>(),
            warm in any::<bool>(),
        ) {
            // Dedup scopes (prepare_sweep never repeats a scope within
            // a unit) and split them across two units.
            let mut seen = std::collections::BTreeSet::new();
            let slots: Vec<_> = slots
                .into_iter()
                .filter(|(s, _, _)| seen.insert(*s))
                .collect();
            let bound = vec![
                BoundVantage { vp: 0, pop: 0 },
                BoundVantage { vp: 1, pop: 1 },
            ];
            let mut units = vec![
                ProbeUnit { bound_idx: 0, domain: 0, scopes: Vec::new() },
                ProbeUnit { bound_idx: 1, domain: 0, scopes: Vec::new() },
            ];
            let mut prior = SweepSnapshot::new(seed, 1);
            prior.epoch = 1;
            for (i, (scope, rec, tag)) in slots.iter().enumerate() {
                let bi = i % 2;
                units[bi].scopes.push(*scope);
                let key = crate::probe::record_key(bi, 0, *scope);
                if let Some((attempts, with_hit)) = rec {
                    let mut r = ScopeRecord { attempts: *attempts, ..ScopeRecord::default() };
                    if *with_hit && *attempts > 0 {
                        r.hit_events.push(HitEvent {
                            resp_addr: scope.addr(),
                            resp_len: scope.len(),
                            remaining_ttl: 30,
                        });
                    }
                    prior.records.insert(key, r);
                }
                if let Some((confidence, prior_verdict)) = tag {
                    prior.confidence.insert(key, ConfidenceRecord {
                        rep: key,
                        confidence: *confidence,
                        prior_verdict: *prior_verdict,
                    });
                }
            }
            let units: Vec<ProbeUnit> =
                units.into_iter().filter(|u| !u.scopes.is_empty()).collect();
            let prior_opt = warm.then_some(&prior);
            let c = cfg(epsilon, escalate_below);
            let plan = ClusteredPlan::build(
                world(), &c, seed, 2, &units, prior_opt, &bound,
            );
            let stats = plan.cluster_stats().unwrap();
            prop_assert!(stats.conserved(), "not conserved: {stats:?}");
            let out = plan_units(&plan, units.clone(), prior_opt, &bound);
            let live: std::collections::BTreeSet<RecordKey> = out
                .live_units
                .iter()
                .flat_map(|u| {
                    u.scopes
                        .iter()
                        .map(move |s| crate::probe::record_key(u.bound_idx, u.domain, *s))
                })
                .collect();
            // Partition: live + replayed + extrapolated covers every
            // slot exactly once.
            let total: usize = units.iter().map(|u| u.scopes.len()).sum();
            prop_assert_eq!(
                live.len() + out.skipped.len() + out.extrapolated.len(),
                total
            );
            prop_assert_eq!(
                stats.planned_universe,
                (live.len() + out.extrapolated.len()) as u64
            );
            prop_assert_eq!(out.extrapolated.len() as u64, stats.extrapolated);
            for e in &out.extrapolated {
                prop_assert!(live.contains(&e.rep));
                prop_assert!((1..=CONFIDENCE_MAX).contains(&e.confidence));
            }
            if epsilon == 0.0 {
                prop_assert_eq!(stats.extrapolated, 0);
            }
            // Determinism: rebuilding the plan yields identical stats
            // and identical planning output.
            let again = ClusteredPlan::build(
                world(), &c, seed, 2, &units, prior_opt, &bound,
            );
            prop_assert_eq!(again.cluster_stats().unwrap(), stats);
            let out2 = plan_units(&again, units, prior_opt, &bound);
            prop_assert_eq!(out2.live_units, out.live_units);
            prop_assert_eq!(out2.extrapolated, out.extrapolated);
        }
    }
}
