//! Probing configuration.

use clientmap_sim::Transport;

/// Client-side retry / backoff / circuit-breaker policy for resilient
/// probing. Only consulted when fault injection is enabled — fault-free
/// runs take the plain single-send path, byte-identical to the
/// pre-fault pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per probe query beyond the first send.
    pub max_retries: u32,
    /// First backoff step in milliseconds; retry `k` waits
    /// `backoff_base_ms << (k-1)` plus seeded jitter in `[0, step)`.
    pub backoff_base_ms: u64,
    /// Total extra-delay budget per probe, ms; a retry whose cumulative
    /// backoff would exceed it is abandoned and the probe counted lost.
    pub deadline_ms: u64,
    /// Consecutive lost probes at one PoP that trip its circuit
    /// breaker, quarantining the PoP for the rest of the sweep.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 40,
            deadline_ms: 400,
            breaker_threshold: 25,
        }
    }
}

/// All dials of the cache-probing measurement, with the paper's values
/// as defaults (scaled variants for tests).
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Queries per second per domain per PoP (paper: 50).
    pub rate_per_domain: f64,
    /// Measurement window in hours (paper: 120).
    pub duration_hours: f64,
    /// Redundant queries per ⟨PoP, prefix, domain⟩ to cover the
    /// independent cache pools (paper: 5).
    pub redundancy: u32,
    /// Transport (paper: TCP, to dodge the UDP rate limit).
    pub transport: Transport,
    /// How many probeable domains to take from the popularity filter
    /// (paper: 4 from Alexa + the Microsoft validation domain).
    pub num_alexa_domains: usize,
    /// Include the Microsoft CDN validation domain.
    pub include_microsoft_domain: bool,
    /// Random prefixes used for service-radius calibration
    /// (paper: 78,637).
    pub calibration_sample: usize,
    /// MaxMind error-radius filter for the calibration sample, km
    /// (paper: 200).
    pub calibration_max_error_km: f64,
    /// Percentile of hit distances defining the service radius
    /// (paper: 90th).
    pub radius_percentile: f64,
    /// Fallback service radius when a PoP sees no calibration hits, km.
    pub fallback_radius_km: f64,
    /// Cap on the number of PoPs probed (ablation: a single vantage
    /// point vs the full geo-distributed deployment). `None` = all.
    pub max_pops: Option<usize>,
    /// Retry / backoff / breaker policy under fault injection.
    pub retry: RetryPolicy,
    /// Warm re-sweep freshness budget: the fraction of previously
    /// measured scopes whose records lapse per epoch (0 disables
    /// expiry). Deliberately **excluded** from the sweep config digest —
    /// re-sweeping the same world under a different freshness budget is
    /// the point of warm starts.
    pub expiry_budget: f64,
    /// Probe fault-free streams on the batched serve lane (scope lanes
    /// precomputed per unit, probes resolved batch-wise, telemetry
    /// flushed in bulk). Proven byte-identical to the scalar lane by
    /// the differential test suite, so it is **excluded** from the
    /// sweep config digest — flipping it never invalidates a snapshot.
    /// Faulted streams always take the scalar resilient lane.
    pub batched_probing: bool,
    /// Probes per [`clientmap_dns::wire::ProbeBatch`] on the batched
    /// lane; `0` batches a whole unit pass at once. Also
    /// digest-excluded: chunking changes execution, never results.
    pub batch_size: usize,
    /// Cluster-based predictive probing: greedily epsilon-cluster the
    /// planned slots on cheap features, probe one representative per
    /// cluster live, and extrapolate its record to the members under a
    /// confidence tag. **Excluded** from the sweep config digest so
    /// exhaustive and clustered sweeps can warm-start each other — the
    /// ablation the report's precision/recall section depends on.
    pub clustered_probing: bool,
    /// Greedy clustering radius in feature-distance units; a candidate
    /// joins the first cluster whose representative sits within this
    /// distance. `0` degenerates to the inner (exhaustive/warm) plan.
    /// Digest-excluded alongside `clustered_probing`.
    pub cluster_epsilon: f64,
    /// Escalation floor on the `0..=1` confidence scale: members whose
    /// copy confidence would fall below it are probed live instead, and
    /// previously tagged slots below it (or whose verdict flipped) are
    /// re-probed next warm sweep. Digest-excluded alongside
    /// `clustered_probing`.
    pub cluster_escalate_below: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            rate_per_domain: 50.0,
            duration_hours: 120.0,
            redundancy: 5,
            transport: Transport::Tcp,
            num_alexa_domains: 4,
            include_microsoft_domain: true,
            calibration_sample: 78_637,
            calibration_max_error_km: 200.0,
            radius_percentile: 0.90,
            fallback_radius_km: 2_000.0,
            max_pops: None,
            retry: RetryPolicy::default(),
            expiry_budget: 0.0,
            batched_probing: true,
            batch_size: 0,
            clustered_probing: false,
            cluster_epsilon: 0.25,
            cluster_escalate_below: 0.5,
        }
    }
}

impl ProbeConfig {
    /// A configuration scaled for unit tests: short window, small
    /// calibration sample, but the same structure.
    pub fn test_scale() -> Self {
        ProbeConfig {
            rate_per_domain: 50.0,
            duration_hours: 12.0,
            calibration_sample: 800,
            ..ProbeConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProbeConfig::default();
        assert_eq!(c.rate_per_domain, 50.0);
        assert_eq!(c.duration_hours, 120.0);
        assert_eq!(c.redundancy, 5);
        assert_eq!(c.transport, Transport::Tcp);
        assert_eq!(c.num_alexa_domains, 4);
        assert_eq!(c.calibration_sample, 78_637);
        assert_eq!(c.calibration_max_error_km, 200.0);
        assert_eq!(c.radius_percentile, 0.90);
        assert!(c.batched_probing);
        assert_eq!(c.batch_size, 0);
        assert!(!c.clustered_probing);
        assert_eq!(c.cluster_epsilon, 0.25);
        assert_eq!(c.cluster_escalate_below, 0.5);
    }
}
