//! The open-resolver cache-snooping **baseline** (§3.1's rejected
//! alternative), implemented for comparison.
//!
//! Method: scan the address space for resolvers that answer off-net
//! queries, then cache-snoop each open one with non-recursive queries
//! for the popular domains, marking the resolver's network active on a
//! hit. The paper rejects this approach because closed resolvers cap
//! coverage far below "global" — running the baseline quantifies that
//! gap against the Google-ECS technique (`repro baseline`).

use std::collections::HashSet;

use clientmap_dns::DomainName;
use clientmap_net::Asn;
use clientmap_sim::resolvers::SnoopOutcome;
use clientmap_sim::{Sim, SimTime};

/// Result of the baseline run.
#[derive(Debug, Default)]
pub struct OpenResolverResult {
    /// Resolver addresses that answered off-net queries at all.
    pub open_resolvers: Vec<u32>,
    /// Resolvers (addresses) with at least one cache hit.
    pub resolvers_with_hits: Vec<u32>,
    /// ASes inferred active (origin of a hit resolver's address).
    pub active_ases: Vec<Asn>,
    /// Snoop queries sent.
    pub queries_sent: u64,
}

impl OpenResolverResult {
    /// AS coverage of the baseline.
    pub fn num_ases(&self) -> usize {
        self.active_ases.len()
    }
}

/// Runs the baseline: `rounds` snoop passes over every open resolver,
/// spaced `spacing_secs` apart, for the given domains.
pub fn run_baseline(
    sim: &Sim,
    domains: &[DomainName],
    rounds: u32,
    spacing_secs: u64,
    t0: SimTime,
) -> OpenResolverResult {
    let world = sim.world();
    let mut result = OpenResolverResult::default();
    let mut hit_ases: HashSet<Asn> = HashSet::new();

    for rid in 0..world.resolvers.len() {
        // The port-53 scan: closed resolvers answer nothing.
        if !sim.resolver_is_open(rid) {
            continue;
        }
        let addr = world.resolvers[rid].addr;
        result.open_resolvers.push(addr);
        let mut any_hit = false;
        for round in 0..rounds {
            let t = t0 + SimTime::from_secs(u64::from(round) * spacing_secs);
            for domain in domains {
                result.queries_sent += 1;
                if let Some(SnoopOutcome::Hit { .. }) = sim.snoop_resolver(rid, domain, t) {
                    any_hit = true;
                }
            }
        }
        if any_hit {
            result.resolvers_with_hits.push(addr);
            if let Some(asn) = world.rib.origin_of_addr(addr) {
                hit_ases.insert(asn);
            }
        }
    }
    result.active_ases = hit_ases.into_iter().collect();
    result.active_ases.sort_unstable();
    result.open_resolvers.sort_unstable();
    result.resolvers_with_hits.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_technique, ProbeConfig};
    use clientmap_net::Prefix;
    use clientmap_world::{World, WorldConfig};

    fn setup() -> Sim {
        Sim::new(World::generate(WorldConfig::tiny(71)))
    }

    fn paper_domains(sim: &Sim) -> Vec<DomainName> {
        sim.world()
            .domains
            .top_probeable(4)
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    #[test]
    fn baseline_finds_some_but_few_ases() {
        let sim = setup();
        let domains = paper_domains(&sim);
        let result = run_baseline(&sim, &domains, 5, 600, SimTime::from_hours(10));
        // Some open resolvers exist and some hit…
        assert!(
            !result.open_resolvers.is_empty(),
            "no open resolvers at all"
        );
        assert!(result.queries_sent > 0);
        // …but coverage is a small fraction of the world's user ASes —
        // the paper's reason to reject the approach.
        let user_ases = sim.world().ases.iter().filter(|a| a.users > 0.0).count();
        assert!(
            result.num_ases() * 3 < user_ases,
            "baseline covered {}/{} ASes — implausibly global",
            result.num_ases(),
            user_ases
        );
    }

    #[test]
    fn baseline_far_below_google_ecs_technique() {
        let world = World::generate(WorldConfig::tiny(72));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        let mut sim = Sim::new(world);
        let mut cfg = ProbeConfig::test_scale();
        cfg.duration_hours = 2.0;
        cfg.calibration_sample = 200;
        let ecs = run_technique(&mut sim, &cfg, &universe);
        let domains = paper_domains(&sim);
        let baseline = run_baseline(&sim, &domains, 5, 600, SimTime::from_hours(10));
        let ecs_ases = ecs.active_ases(&sim.world().rib).len();
        assert!(
            baseline.num_ases() * 2 < ecs_ases.max(1),
            "baseline {} vs ECS technique {}",
            baseline.num_ases(),
            ecs_ases
        );
    }

    #[test]
    fn hits_subset_of_open() {
        let sim = setup();
        let domains = paper_domains(&sim);
        let result = run_baseline(&sim, &domains, 3, 600, SimTime::from_hours(9));
        for addr in &result.resolvers_with_hits {
            assert!(result.open_resolvers.contains(addr));
        }
    }

    #[test]
    fn deterministic() {
        let sim = setup();
        let domains = paper_domains(&sim);
        let a = run_baseline(&sim, &domains, 3, 600, SimTime::from_hours(9));
        let b = run_baseline(&sim, &domains, 3, 600, SimTime::from_hours(9));
        assert_eq!(a.open_resolvers, b.open_resolvers);
        assert_eq!(a.active_ases, b.active_ases);
        assert_eq!(a.queries_sent, b.queries_sent);
    }
}
