//! Warm-start sweep support: the config digest that scopes a
//! [`SweepSnapshot`](clientmap_store::SweepSnapshot)'s validity, the
//! stable expiry hash the re-sweep planner draws from, and the
//! conversions between this crate's [`FaultSummary`] and the store's
//! serializable `FaultRecord`.
//!
//! A snapshot may only warm-start a run whose world seed **and** config
//! digest both match — any probing-relevant dial (rate, window,
//! redundancy, transport, domain selection, calibration, retry policy,
//! PoP cap, fault plan) or a different probe universe invalidates it.
//! The deliberate exceptions are [`ProbeConfig::expiry_budget`] —
//! re-sweeping the same world under a different freshness budget is the
//! point of warm starts — the batched-lane knobs
//! ([`ProbeConfig::batched_probing`], [`ProbeConfig::batch_size`]),
//! whose scalar/batched equivalence the differential suite proves, and
//! the clustered-planner knobs ([`ProbeConfig::clustered_probing`],
//! [`ProbeConfig::cluster_epsilon`],
//! [`ProbeConfig::cluster_escalate_below`]) — the precision/recall
//! ablation warm-starts a clustered sweep from an exhaustive snapshot
//! and vice versa, which a digest-included knob would forbid.

use clientmap_net::{Prefix, SeedMixer};
use clientmap_sim::{GpdnsStats, PopId, Sim, Transport};
use clientmap_store::FaultRecord;

use crate::results::FaultSummary;
use crate::ProbeConfig;

/// Digest of every probing-relevant configuration field plus the probe
/// universe, rooted at the world seed. Stable across runs, platforms,
/// and thread counts.
pub fn config_digest(sim: &Sim, cfg: &ProbeConfig, universe: &[Prefix]) -> u64 {
    let plan = sim.fault_plan();
    let mut mixer = SeedMixer::new(sim.world().config.seed)
        .mix_str("sweep-config")
        .mix(cfg.rate_per_domain.to_bits())
        .mix(cfg.duration_hours.to_bits())
        .mix(u64::from(cfg.redundancy))
        .mix(match cfg.transport {
            Transport::Udp => 0,
            Transport::Tcp => 1,
        })
        .mix(cfg.num_alexa_domains as u64)
        .mix(u64::from(cfg.include_microsoft_domain))
        .mix(cfg.calibration_sample as u64)
        .mix(cfg.calibration_max_error_km.to_bits())
        .mix(cfg.radius_percentile.to_bits())
        .mix(cfg.fallback_radius_km.to_bits())
        .mix(cfg.max_pops.map_or(u64::MAX, |cap| cap as u64))
        .mix(u64::from(cfg.retry.max_retries))
        .mix(cfg.retry.backoff_base_ms)
        .mix(cfg.retry.deadline_ms)
        .mix(u64::from(cfg.retry.breaker_threshold))
        .mix_str(plan.profile().as_str());
    if plan.enabled() {
        // Off-profile plans carry whatever seed they were built with;
        // only an *active* plan's seed shapes the sweep.
        mixer = mixer.mix(plan.plan_seed());
    }
    mixer = mixer.mix(universe.len() as u64);
    for p in universe {
        mixer = mixer.mix(u64::from(p.addr()) << 8 | u64::from(p.len()));
    }
    mixer.finish()
}

/// The stable per-scope hash the planner's rotating expiry draw uses.
/// A function of the scope's *identity* (domain + prefix), never of
/// which vantage probes it or when — so the same scope expires in the
/// same epoch everywhere.
pub fn expiry_hash(world_seed: u64, domain: usize, scope: Prefix) -> u64 {
    SeedMixer::new(world_seed)
        .mix_str("resweep-expiry")
        .mix(domain as u64)
        .mix(u64::from(scope.addr()))
        .mix(u64::from(scope.len()))
        .finish()
}

/// [`FaultSummary`] → storable [`FaultRecord`].
pub fn to_fault_record(summary: &FaultSummary) -> FaultRecord {
    FaultRecord {
        profile: summary.profile.clone(),
        observed: summary.observed,
        retries: summary.retries,
        recovered: summary.recovered,
        degraded: summary.degraded,
        lost: summary.lost,
        quarantined_pops: summary.quarantined_pops.iter().map(|&p| p as u64).collect(),
        rescued_scopes: summary.rescued_scopes,
        unmeasured_scopes: summary.unmeasured_scopes,
        assigned_scopes: summary.assigned_scopes,
    }
}

/// Stored [`FaultRecord`] → this crate's [`FaultSummary`].
pub fn from_fault_record(record: &FaultRecord) -> FaultSummary {
    FaultSummary {
        profile: record.profile.clone(),
        observed: record.observed,
        retries: record.retries,
        recovered: record.recovered,
        degraded: record.degraded,
        lost: record.lost,
        quarantined_pops: record
            .quarantined_pops
            .iter()
            .map(|&p| p as PopId)
            .collect(),
        rescued_scopes: record.rescued_scopes,
        unmeasured_scopes: record.unmeasured_scopes,
        assigned_scopes: record.assigned_scopes,
    }
}

/// Flattens resolver session counters into the snapshot's fixed-order
/// array: queries, rate-limited, scoped hits, scope0 hits, misses,
/// recursive.
pub fn gpdns_array(stats: GpdnsStats) -> [u64; 6] {
    [
        stats.queries,
        stats.rate_limited,
        stats.scoped_hits,
        stats.scope0_hits,
        stats.misses,
        stats.recursive,
    ]
}

/// The per-field increment between two session counter states.
pub fn gpdns_delta(pre: GpdnsStats, post: GpdnsStats) -> [u64; 6] {
    let pre = gpdns_array(pre);
    let post = gpdns_array(post);
    std::array::from_fn(|i| post[i] - pre[i])
}

/// Rebuilds session counters from the snapshot array (the inverse of
/// [`gpdns_array`]), for replaying a skipped probing window.
pub fn gpdns_stats_from(array: [u64; 6]) -> GpdnsStats {
    GpdnsStats {
        queries: array[0],
        rate_limited: array[1],
        scoped_hits: array[2],
        scope0_hits: array[3],
        misses: array[4],
        recursive: array[5],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_sim::PopId;
    use clientmap_world::{World, WorldConfig};

    fn tiny_sim(seed: u64) -> (Sim, Vec<Prefix>) {
        let world = World::generate(WorldConfig::tiny(seed));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        (Sim::new(world), universe)
    }

    #[test]
    fn digest_is_stable_and_config_sensitive() {
        let (sim, universe) = tiny_sim(41);
        let cfg = ProbeConfig::test_scale();
        let base = config_digest(&sim, &cfg, &universe);
        assert_eq!(base, config_digest(&sim, &cfg, &universe));

        let mut redundancy = cfg.clone();
        redundancy.redundancy += 1;
        assert_ne!(base, config_digest(&sim, &redundancy, &universe));

        let mut capped = cfg.clone();
        capped.max_pops = Some(3);
        assert_ne!(base, config_digest(&sim, &capped, &universe));

        assert_ne!(
            base,
            config_digest(&sim, &cfg, &universe[..universe.len() - 1]),
            "universe is part of the digest"
        );

        // The freshness budget is deliberately NOT in the digest.
        let mut budgeted = cfg.clone();
        budgeted.expiry_budget = 0.1;
        assert_eq!(base, config_digest(&sim, &budgeted, &universe));

        // Neither are the batched-lane knobs: the differential suite
        // proves scalar and batched sweeps byte-identical, so flipping
        // them must not invalidate a snapshot.
        let mut scalar = cfg.clone();
        scalar.batched_probing = !scalar.batched_probing;
        assert_eq!(base, config_digest(&sim, &scalar, &universe));
        let mut chunked = cfg.clone();
        chunked.batch_size = 7;
        assert_eq!(base, config_digest(&sim, &chunked, &universe));

        // Nor the clustered-planner knobs: exhaustive and clustered
        // sweeps must be able to warm-start each other (the ablation's
        // whole premise), so flipping them keeps snapshots valid.
        let mut clustered = cfg.clone();
        clustered.clustered_probing = true;
        assert_eq!(base, config_digest(&sim, &clustered, &universe));
        let mut wide = cfg.clone();
        wide.cluster_epsilon = 0.6;
        assert_eq!(base, config_digest(&sim, &wide, &universe));
        let mut strict = cfg.clone();
        strict.cluster_escalate_below = 0.9;
        assert_eq!(base, config_digest(&sim, &strict, &universe));
    }

    #[test]
    fn expiry_hash_depends_on_identity_only() {
        let scope: Prefix = "10.1.0.0/20".parse().unwrap();
        let other: Prefix = "10.2.0.0/20".parse().unwrap();
        assert_eq!(expiry_hash(7, 0, scope), expiry_hash(7, 0, scope));
        assert_ne!(expiry_hash(7, 0, scope), expiry_hash(7, 1, scope));
        assert_ne!(expiry_hash(7, 0, scope), expiry_hash(7, 0, other));
        assert_ne!(expiry_hash(7, 0, scope), expiry_hash(8, 0, scope));
    }

    #[test]
    fn fault_record_round_trips() {
        let summary = FaultSummary {
            profile: "pop-churn".into(),
            observed: 11,
            retries: 14,
            recovered: 9,
            degraded: 1,
            lost: 1,
            quarantined_pops: vec![4 as PopId, 17],
            rescued_scopes: 3,
            unmeasured_scopes: 2,
            assigned_scopes: 40,
        };
        assert_eq!(from_fault_record(&to_fault_record(&summary)), summary);
    }

    #[test]
    fn gpdns_helpers_invert() {
        let pre = GpdnsStats {
            queries: 10,
            rate_limited: 1,
            scoped_hits: 4,
            scope0_hits: 1,
            misses: 4,
            recursive: 0,
        };
        let post = GpdnsStats {
            queries: 25,
            rate_limited: 1,
            scoped_hits: 11,
            scope0_hits: 2,
            misses: 11,
            recursive: 0,
        };
        let delta = gpdns_delta(pre, post);
        assert_eq!(delta, [15, 0, 7, 1, 7, 0]);
        assert_eq!(gpdns_array(gpdns_stats_from(delta)), delta);
    }
}
