//! The [`ProbePlan`] seam: how a sweep decides which assigned
//! ⟨vantage, domain, scope⟩ slots to probe live and which to replay
//! from a prior snapshot.
//!
//! `prepare_sweep` used to hard-code two planners — "probe everything"
//! for cold runs and an inline warm-start classification loop — which
//! coupled the planner to the runner and left no seam for the
//! cluster-based predictive planner on the roadmap. Now every planner
//! is a [`ProbePlan`]: [`plan_units`] walks the assigned unit list
//! once, asks the plan about each slot, and splits the work into live
//! probe units and replayable skips, tallying [`PlannerStats`] as it
//! goes. Plans are pure functions of the slot and the sweep's identity
//! (seed, epoch, budget), so any plan is byte-deterministic at any
//! thread count by construction.

use clientmap_net::Prefix;
use clientmap_store::{
    classify, PlanReason, PlannerStats, PriorScope, RecordKey, ScopeRecord, SweepSnapshot,
};

use crate::cluster::{verdict_rank, ClusterStats};
use crate::probe::{record_key, ProbeUnit};
use crate::sweep::expiry_hash;
use crate::vantage::BoundVantage;

/// One planning decision's input: an assigned ⟨vantage, domain, scope⟩
/// slot and what the prior sweep knew about it.
#[derive(Debug, Clone, Copy)]
pub struct PlanSlot<'a> {
    /// Index into the sweep's bound-vantage list.
    pub bound_idx: usize,
    /// Index into the sweep's selected-domain list.
    pub domain: usize,
    /// The query scope.
    pub scope: Prefix,
    /// The prior sweep's record for this slot, if any.
    pub prior: Option<&'a ScopeRecord>,
    /// Whether the slot's PoP was quarantined last sweep (its prior
    /// data is suspect regardless of the record).
    pub dirty: bool,
}

/// What a plan wants done with one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// Probe the slot live.
    Probe(PlanReason),
    /// Replay the slot's prior record (the caller guarantees
    /// `slot.prior` is `Some` before honouring a replay).
    Replay,
    /// Skip probing and copy the cluster representative's fresh record
    /// onto this slot after the probing window, tagged with the
    /// planner's confidence in the copy.
    Extrapolate {
        /// The representative slot whose record this slot inherits.
        rep: RecordKey,
        /// Feature-distance confidence, `1..=255`.
        confidence: u8,
    },
}

/// A sweep planner: decides, slot by slot, what to probe live.
///
/// Implementations must be pure functions of the slot and their own
/// configuration — never of execution order — so plans stay
/// byte-identical at any thread count and across driver/worker
/// processes (the fleet handshake depends on both sides planning
/// identically).
pub trait ProbePlan {
    /// The planner's name (telemetry and report labels).
    fn name(&self) -> &'static str;

    /// What to do with `slot`.
    fn decide(&self, slot: &PlanSlot<'_>) -> PlanDecision;

    /// Whether this plan's [`PlannerStats`] belong in the run's
    /// telemetry. Cold exhaustive sweeps return `false` so their
    /// metrics stay byte-identical to the pre-warm-start era. (The
    /// clustered plan also returns `false`: its accounting rides in
    /// [`ProbePlan::cluster_stats`] instead.)
    fn records_stats(&self) -> bool {
        true
    }

    /// Cluster accounting, for planners that extrapolate. `None` for
    /// plans that probe or replay everything.
    fn cluster_stats(&self) -> Option<ClusterStats> {
        None
    }
}

/// The cold-sweep plan: probe every assigned slot, replay nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustivePlan;

impl ProbePlan for ExhaustivePlan {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn decide(&self, _slot: &PlanSlot<'_>) -> PlanDecision {
        PlanDecision::Probe(PlanReason::New)
    }

    fn records_stats(&self) -> bool {
        false
    }
}

/// The warm-start plan: probe only slots that are new, quarantine-
/// dirty, in need of rescue, or expired under the rotating TTL budget;
/// replay everything else from the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct WarmStartPlan {
    /// The world seed (keys the stable expiry hash).
    pub world_seed: u64,
    /// The epoch being planned.
    pub epoch: u32,
    /// Fraction of measured slots refreshed per epoch (0 = none).
    pub expiry_budget: f64,
}

impl ProbePlan for WarmStartPlan {
    fn name(&self) -> &'static str {
        "warm-start"
    }

    fn decide(&self, slot: &PlanSlot<'_>) -> PlanDecision {
        match classify(
            slot.prior.map(|r| {
                (
                    PriorScope {
                        attempts: r.attempts,
                        drops: r.drops,
                    },
                    slot.dirty,
                )
            }),
            self.expiry_budget,
            self.epoch,
            expiry_hash(self.world_seed, slot.domain, slot.scope),
        ) {
            Some(reason) => PlanDecision::Probe(reason),
            None => PlanDecision::Replay,
        }
    }
}

/// One slot a plan extrapolates instead of probing: after the probing
/// window, the representative's fresh record is copied onto the slot
/// under the given confidence tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtrapolatedSlot {
    /// Index into the sweep's bound-vantage list.
    pub bound_idx: usize,
    /// Index into the sweep's selected-domain list.
    pub domain: usize,
    /// The member scope.
    pub scope: Prefix,
    /// The representative slot to copy from.
    pub rep: RecordKey,
    /// Planner confidence in the copy, `1..=255`.
    pub confidence: u8,
    /// Verdict rank the member held in the prior sweep (0 = none) —
    /// stored with the confidence tag so the *next* planner can detect
    /// verdict flips.
    pub prior_verdict: u8,
}

/// What [`plan_units`] produced from one assigned unit list.
#[derive(Debug, Default)]
pub struct PlanOutcome {
    /// Units (with only their live scopes) the sweep must probe.
    pub live_units: Vec<ProbeUnit>,
    /// `(bound_idx, domain, scope, prior record)` for every slot the
    /// plan replays instead of probing.
    pub skipped: Vec<(usize, usize, Prefix, ScopeRecord)>,
    /// Slots the plan extrapolates from a cluster representative after
    /// the probing window, in slot order.
    pub extrapolated: Vec<ExtrapolatedSlot>,
    /// The plan's accounting; conservation
    /// (`planned + skipped_warm == universe`) holds by construction
    /// (extrapolated slots count as warm skips here — their own
    /// accounting is [`ClusterStats`]).
    pub stats: PlannerStats,
}

/// Runs `plan` over every slot of `units`, splitting the work into
/// live probe units and replayable skips. Unit and scope order are
/// preserved, so the same plan over the same units yields the same
/// shardable work list everywhere.
pub fn plan_units(
    plan: &dyn ProbePlan,
    units: Vec<ProbeUnit>,
    prior: Option<&SweepSnapshot>,
    bound: &[BoundVantage],
) -> PlanOutcome {
    let mut outcome = PlanOutcome::default();
    for u in units {
        let dirty = prior.is_some_and(|p| {
            p.quarantined_pops()
                .contains(&(bound[u.bound_idx].pop as u64))
        });
        let mut live_scopes = Vec::new();
        for scope in u.scopes {
            let prior_rec =
                prior.and_then(|p| p.records.get(&record_key(u.bound_idx, u.domain, scope)));
            let decision = plan.decide(&PlanSlot {
                bound_idx: u.bound_idx,
                domain: u.domain,
                scope,
                prior: prior_rec,
                dirty,
            });
            match decision {
                PlanDecision::Probe(reason) => {
                    outcome.stats.count(Some(reason));
                    live_scopes.push(scope);
                }
                PlanDecision::Replay => {
                    outcome.stats.count(None);
                    outcome.skipped.push((
                        u.bound_idx,
                        u.domain,
                        scope,
                        prior_rec
                            .expect("a replay decision implies a prior record")
                            .clone(),
                    ));
                }
                PlanDecision::Extrapolate { rep, confidence } => {
                    outcome.stats.count(None);
                    outcome.extrapolated.push(ExtrapolatedSlot {
                        bound_idx: u.bound_idx,
                        domain: u.domain,
                        scope,
                        rep,
                        confidence,
                        prior_verdict: prior_rec.map_or(0, verdict_rank),
                    });
                }
            }
        }
        if !live_scopes.is_empty() {
            outcome.live_units.push(ProbeUnit {
                bound_idx: u.bound_idx,
                domain: u.domain,
                scopes: live_scopes,
            });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(bound_idx: usize, domain: usize, scopes: &[&str]) -> ProbeUnit {
        ProbeUnit {
            bound_idx,
            domain,
            scopes: scopes.iter().map(|s| s.parse().unwrap()).collect(),
        }
    }

    #[test]
    fn exhaustive_plan_passes_everything_through() {
        let units = vec![
            unit(0, 0, &["10.0.0.0/24", "10.0.1.0/24"]),
            unit(0, 1, &["10.0.2.0/24"]),
        ];
        let out = plan_units(&ExhaustivePlan, units.clone(), None, &[]);
        assert_eq!(out.live_units, units);
        assert!(out.skipped.is_empty());
        assert_eq!(out.stats.universe, 3);
        assert_eq!(out.stats.planned, 3);
        assert!(out.stats.conserved());
        assert!(!ExhaustivePlan.records_stats());
    }

    #[test]
    fn warm_plan_splits_live_and_replay() {
        // A prior snapshot covering one of two scopes: the covered one
        // replays, the uncovered one is planned as New.
        let mut prior = SweepSnapshot::new(7, 1);
        prior.records.insert(
            record_key(0, 0, "10.0.0.0/24".parse().unwrap()),
            ScopeRecord {
                attempts: 5,
                ..ScopeRecord::default()
            },
        );
        let bound = vec![BoundVantage { vp: 0, pop: 0 }];
        let plan = WarmStartPlan {
            world_seed: 7,
            epoch: 2,
            expiry_budget: 0.0,
        };
        let out = plan_units(
            &plan,
            vec![unit(0, 0, &["10.0.0.0/24", "10.0.1.0/24"])],
            Some(&prior),
            &bound,
        );
        assert_eq!(out.live_units.len(), 1);
        assert_eq!(
            out.live_units[0].scopes,
            vec!["10.0.1.0/24".parse().unwrap()]
        );
        assert_eq!(out.skipped.len(), 1);
        assert_eq!(out.stats.planned, 1);
        assert_eq!(out.stats.skipped_warm, 1);
        assert_eq!(out.stats.new, 1);
        assert!(out.stats.conserved());
        assert!(plan.records_stats());
    }
}
