//! Client-side resilience under fault injection: verified response
//! classification, bounded retries with seeded exponential backoff,
//! and the fault-observation counters the invariant layer reconciles.
//!
//! The server-side fault plan (`clientmap-faults`) decides *what goes
//! wrong*; this module decides *how the prober survives it*. Every
//! piece is deterministic: backoff jitter is a stable hash of the
//! probe's coordinates, transaction IDs are a stable hash of slot and
//! scope, and all counters are commutative atomics — so a faulted run
//! remains byte-identical at any thread count.
//!
//! Accounting model: each failed wire exchange is **observed** exactly
//! once (classified under `cacheprobe.fault.observed.*`) and later
//! settles into exactly one terminal bucket — **recovered** (a retry
//! succeeded unchanged), **degraded** (succeeded only after upgrading
//! a TC-truncated UDP exchange to TCP), or **lost** (retries or the
//! deadline budget exhausted). The conservation law
//! `observed == recovered + degraded + lost` holds at every quiescent
//! point and is checked by `clientmap-core`'s invariants.

use std::sync::Arc;

use clientmap_dns::wire;
use clientmap_net::{Prefix, SeedMixer};
use clientmap_sim::{GooglePublicDns, ProbeOutcome, SimTime, Transport};
use clientmap_telemetry::{Counter, MetricsRegistry};

use crate::config::RetryPolicy;

/// What one wire exchange looked like from the prober's side, after
/// verifying the transaction ID and the echoed question.
#[derive(Debug, Clone, PartialEq)]
pub enum WireObservation {
    /// No response arrived (loss, reset, latency timeout, outage, or a
    /// rate-limiter drop).
    Dropped,
    /// SERVFAIL — or any unexpected error rcode.
    ServFail,
    /// REFUSED.
    Refused,
    /// TC bit set: the response was truncated; retry over TCP.
    Truncated,
    /// The response failed verification: unparsable, wrong transaction
    /// ID, or a question echo that does not match what we sent.
    Mismatch,
    /// A verified, well-formed answer.
    Ok(ProbeOutcome),
}

/// Classifies a raw response against the query that elicited it.
///
/// Unlike the pre-resilience path — which trusted any bytes that came
/// back — this verifies the transaction ID and the echoed question
/// before believing the rcode, so a late or cross-wired answer can
/// never masquerade as a cache signal.
pub fn observe_response(query: &[u8], id: u16, resp: Option<&[u8]>) -> WireObservation {
    let Some(resp) = resp else {
        return WireObservation::Dropped;
    };
    let Ok(view) = wire::response_view(resp) else {
        return WireObservation::Mismatch;
    };
    if view.id != id || !wire::question_echo_matches(query, resp) {
        return WireObservation::Mismatch;
    }
    if view.flags & wire::FLAG_TC != 0 {
        return WireObservation::Truncated;
    }
    match (view.flags & wire::RCODE_MASK) as u8 {
        0 => WireObservation::Ok(GooglePublicDns::classify_view(&view)),
        5 => WireObservation::Refused,
        _ => WireObservation::ServFail,
    }
}

/// The DNS transaction ID for one probe attempt.
///
/// The base is a stable hash of the probe's slot time and query scope;
/// the redundancy index and retry number occupy disjoint XOR bits, so
/// every attempt of one probe event carries a distinct ID. (The
/// pre-fix scheme, `t ^ (addr >> 8)`, collided across the redundant
/// queries of a probe event — any stale answer verified against any
/// attempt.)
pub fn attempt_id(t: SimTime, scope: Prefix, redundancy: u32, retry: u32) -> u16 {
    let h = SeedMixer::new(0x1D5)
        .mix_str("attempt-id")
        .mix(t.as_millis())
        .mix(u64::from(scope.addr()))
        .mix(u64::from(scope.len()))
        .finish();
    (h as u16) ^ (((redundancy << 4) | (retry & 0xF)) as u16)
}

/// Backoff delay in milliseconds before retry `retry` (1-based) of a
/// probe sent by `prober` at `t_millis`: an exponential step
/// `base << (retry-1)` plus deterministic jitter in `[0, step)`.
pub fn backoff_delay_ms(prober: u64, t_millis: u64, retry: u32, base_ms: u64) -> u64 {
    let step = (base_ms << (retry - 1)).max(1);
    let h = SeedMixer::new(prober)
        .mix_str("backoff")
        .mix(t_millis)
        .mix(u64::from(retry))
        .finish();
    step + h % step
}

/// Client-side fault observation and recovery counters.
///
/// Resolved only when the run's fault plan is enabled, so fault-free
/// telemetry snapshots stay byte-identical to the pre-fault pipeline.
#[derive(Debug, Clone)]
pub struct FaultCounters {
    /// `cacheprobe.fault.observed.drop` — no response where one was due.
    pub observed_drop: Arc<Counter>,
    /// `cacheprobe.fault.observed.servfail`.
    pub observed_servfail: Arc<Counter>,
    /// `cacheprobe.fault.observed.refused`.
    pub observed_refused: Arc<Counter>,
    /// `cacheprobe.fault.observed.truncated` — TC bit on a UDP answer.
    pub observed_truncated: Arc<Counter>,
    /// `cacheprobe.fault.observed.mismatch` — failed ID/question echo
    /// verification.
    pub observed_mismatch: Arc<Counter>,
    /// `cacheprobe.fault.observed.discovery` — failed PoP-discovery
    /// (myaddr TXT) exchanges.
    pub observed_discovery: Arc<Counter>,
    /// `cacheprobe.fault.retries` — retry sends beyond each attempt's
    /// first query (not part of `cacheprobe.probes_sent`).
    pub retries: Arc<Counter>,
    /// `cacheprobe.fault.recovered` — observed failures on probes that
    /// later succeeded over the original transport.
    pub recovered: Arc<Counter>,
    /// `cacheprobe.fault.degraded` — observed failures on probes that
    /// succeeded only after the TC-forced upgrade to TCP.
    pub degraded: Arc<Counter>,
    /// `cacheprobe.fault.lost` — observed failures on probes that
    /// exhausted their retries or deadline budget.
    pub lost: Arc<Counter>,
    /// `cacheprobe.quarantine.pops` — PoPs quarantined by the breaker.
    pub quarantined_pops: Arc<Counter>,
    /// `cacheprobe.quarantine.rescued` — scopes re-probed at a fallback
    /// PoP after their home PoP was quarantined.
    pub rescued: Arc<Counter>,
}

impl FaultCounters {
    /// Resolves (or re-resolves) the counters on `m`.
    pub fn resolve(m: &MetricsRegistry) -> FaultCounters {
        FaultCounters {
            observed_drop: m.counter("cacheprobe.fault.observed.drop"),
            observed_servfail: m.counter("cacheprobe.fault.observed.servfail"),
            observed_refused: m.counter("cacheprobe.fault.observed.refused"),
            observed_truncated: m.counter("cacheprobe.fault.observed.truncated"),
            observed_mismatch: m.counter("cacheprobe.fault.observed.mismatch"),
            observed_discovery: m.counter("cacheprobe.fault.observed.discovery"),
            retries: m.counter("cacheprobe.fault.retries"),
            recovered: m.counter("cacheprobe.fault.recovered"),
            degraded: m.counter("cacheprobe.fault.degraded"),
            lost: m.counter("cacheprobe.fault.lost"),
            quarantined_pops: m.counter("cacheprobe.quarantine.pops"),
            rescued: m.counter("cacheprobe.quarantine.rescued"),
        }
    }

    /// Counts one failed observation (no-op for `Ok`).
    pub fn count_observed(&self, obs: WireObservation) {
        match obs {
            WireObservation::Dropped => self.observed_drop.inc(),
            WireObservation::ServFail => self.observed_servfail.inc(),
            WireObservation::Refused => self.observed_refused.inc(),
            WireObservation::Truncated => self.observed_truncated.inc(),
            WireObservation::Mismatch => self.observed_mismatch.inc(),
            WireObservation::Ok(_) => {}
        }
    }

    /// Total observed failures across all classes.
    pub fn observed_total(&self) -> u64 {
        self.observed_drop.get()
            + self.observed_servfail.get()
            + self.observed_refused.get()
            + self.observed_truncated.get()
            + self.observed_mismatch.get()
            + self.observed_discovery.get()
    }
}

/// Runs one probe attempt (one redundancy slot) with bounded retries,
/// seeded backoff, the deadline budget, and the TC → TCP transport
/// upgrade. `send` performs one wire exchange at the given retry
/// number, send time, and transport, returning its observation; the
/// caller owns ID generation and rendering inside it.
///
/// Returns the verified outcome, or [`ProbeOutcome::Dropped`] once the
/// retry/deadline budget is exhausted (the failures then count lost).
pub(crate) fn resilient_attempt<F>(
    prober: u64,
    base_t: SimTime,
    transport0: Transport,
    policy: &RetryPolicy,
    fc: &FaultCounters,
    mut send: F,
) -> ProbeOutcome
where
    F: FnMut(u32, SimTime, Transport) -> WireObservation,
{
    let mut transport = transport0;
    let mut delay = 0u64;
    let mut failures = 0u64;
    let mut upgraded = false;
    for retry in 0..=policy.max_retries {
        if retry > 0 {
            delay += backoff_delay_ms(prober, base_t.as_millis(), retry, policy.backoff_base_ms);
            if delay > policy.deadline_ms {
                break;
            }
            fc.retries.inc();
        }
        let obs = send(retry, base_t + SimTime::from_millis(delay), transport);
        match obs {
            WireObservation::Ok(outcome) => {
                if failures > 0 {
                    if upgraded {
                        fc.degraded.add(failures);
                    } else {
                        fc.recovered.add(failures);
                    }
                }
                return outcome;
            }
            other => {
                let truncated = matches!(other, WireObservation::Truncated);
                fc.count_observed(other);
                failures += 1;
                if truncated && transport == Transport::Udp {
                    transport = Transport::Tcp;
                    upgraded = true;
                }
            }
        }
    }
    fc.lost.add(failures);
    ProbeOutcome::Dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_dns::{Message, Question, RrClass, RrType};

    fn probe_query(id: u16) -> Vec<u8> {
        let name: clientmap_dns::DomainName = "www.example.com".parse().unwrap();
        let scope: Prefix = "10.1.2.0/24".parse().unwrap();
        let q = Message::query(
            id,
            Question {
                name,
                rtype: RrType::A,
                class: RrClass::In,
            },
        )
        .with_recursion_desired(false)
        .with_ecs(scope);
        wire::encode(&q).unwrap()
    }

    fn question_wire(query: &[u8]) -> &[u8] {
        // QNAME starts at 12; walk labels, then QTYPE + QCLASS.
        let mut pos = 12usize;
        while query[pos] != 0 {
            pos += 1 + query[pos] as usize;
        }
        &query[12..pos + 5]
    }

    #[test]
    fn observations_classify_the_full_matrix() {
        let query = probe_query(0x1234);
        let qw = question_wire(&query).to_vec();
        assert_eq!(
            observe_response(&query, 0x1234, None),
            WireObservation::Dropped
        );
        let mut resp = Vec::new();
        wire::write_probe_error_response(&mut resp, 0x1234, &qw, 2, false);
        assert_eq!(
            observe_response(&query, 0x1234, Some(&resp)),
            WireObservation::ServFail
        );
        wire::write_probe_error_response(&mut resp, 0x1234, &qw, 5, false);
        assert_eq!(
            observe_response(&query, 0x1234, Some(&resp)),
            WireObservation::Refused
        );
        wire::write_probe_error_response(&mut resp, 0x1234, &qw, 0, true);
        assert_eq!(
            observe_response(&query, 0x1234, Some(&resp)),
            WireObservation::Truncated
        );
        // rcode 0, no TC, no answers: a verified miss.
        wire::write_probe_error_response(&mut resp, 0x1234, &qw, 0, false);
        assert_eq!(
            observe_response(&query, 0x1234, Some(&resp)),
            WireObservation::Ok(ProbeOutcome::Miss)
        );
        // Wrong transaction ID.
        wire::write_probe_error_response(&mut resp, 0x9999, &qw, 0, false);
        assert_eq!(
            observe_response(&query, 0x1234, Some(&resp)),
            WireObservation::Mismatch
        );
        // Question echo for a different name.
        let other = probe_query(0x1234);
        let mut other_q = other.clone();
        other_q[13] ^= 0x01; // corrupt a label byte
        wire::write_probe_error_response(&mut resp, 0x1234, question_wire(&other_q), 0, false);
        assert_eq!(
            observe_response(&query, 0x1234, Some(&resp)),
            WireObservation::Mismatch
        );
        // Garbage bytes.
        assert_eq!(
            observe_response(&query, 0x1234, Some(&[0u8; 3])),
            WireObservation::Mismatch
        );
    }

    #[test]
    fn attempt_ids_are_distinct_across_attempts() {
        let t = SimTime::from_hours(8);
        let scope: Prefix = "100.64.8.0/24".parse().unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..8u32 {
            for retry in 0..8u32 {
                assert!(
                    seen.insert(attempt_id(t, scope, r, retry)),
                    "collision at redundancy {r} retry {retry}"
                );
            }
        }
        // And stable.
        assert_eq!(attempt_id(t, scope, 3, 2), attempt_id(t, scope, 3, 2));
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        for retry in 1..=4u32 {
            let step = 40u64 << (retry - 1);
            let d = backoff_delay_ms(7, 123_456, retry, 40);
            assert!((step..2 * step).contains(&d), "retry {retry}: {d}");
            assert_eq!(d, backoff_delay_ms(7, 123_456, retry, 40));
        }
        assert_ne!(
            backoff_delay_ms(7, 123_456, 1, 40),
            backoff_delay_ms(8, 123_456, 1, 40),
            "jitter must vary by prober"
        );
    }

    #[test]
    fn resilient_attempt_settles_every_failure_exactly_once() {
        let m = MetricsRegistry::new();
        let fc = FaultCounters::resolve(&m);
        let policy = RetryPolicy::default();
        // Fails twice, then succeeds: 2 observed, 2 recovered.
        let mut calls = 0;
        let out = resilient_attempt(
            1,
            SimTime::from_secs(10),
            Transport::Tcp,
            &policy,
            &fc,
            |_, _, _| {
                calls += 1;
                if calls < 3 {
                    WireObservation::Dropped
                } else {
                    WireObservation::Ok(ProbeOutcome::Miss)
                }
            },
        );
        assert_eq!(out, ProbeOutcome::Miss);
        // Truncated then success over TCP: 1 observed, 1 degraded.
        let out = resilient_attempt(
            1,
            SimTime::from_secs(20),
            Transport::Udp,
            &policy,
            &fc,
            |retry, _, transport| {
                if retry == 0 {
                    assert_eq!(transport, Transport::Udp);
                    WireObservation::Truncated
                } else {
                    assert_eq!(transport, Transport::Tcp, "TC must upgrade the retry");
                    WireObservation::Ok(ProbeOutcome::HitScopeZero)
                }
            },
        );
        assert_eq!(out, ProbeOutcome::HitScopeZero);
        // Never succeeds: every failure lost.
        let out = resilient_attempt(
            1,
            SimTime::from_secs(30),
            Transport::Tcp,
            &policy,
            &fc,
            |_, _, _| WireObservation::ServFail,
        );
        assert_eq!(out, ProbeOutcome::Dropped);
        assert_eq!(
            fc.observed_total(),
            fc.recovered.get() + fc.degraded.get() + fc.lost.get(),
            "conservation law"
        );
        assert_eq!(fc.degraded.get(), 1);
        assert_eq!(fc.recovered.get(), 2);
        assert!(fc.lost.get() >= 1);
    }
}
