//! Results of a cache-probing run and derived views.

use std::collections::HashMap;

use clientmap_dns::DomainName;
use clientmap_net::{Asn, Prefix, PrefixSet, Rib};
use clientmap_sim::PopId;
use clientmap_store::{Verdict, VerdictTable};

use crate::calibrate::ServiceRadii;
use crate::scopescan::ScopeScan;
use crate::vantage::BoundVantage;

/// Aggregated statistics for one ⟨domain, response-scope⟩ hit family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Number of probe events that hit.
    pub hits: u64,
    /// Smallest remaining TTL observed.
    pub min_remaining_ttl: u32,
}

/// Per-⟨domain, query-scope⟩ probe accounting: how often the scope was
/// probed and how often it hit. The hit *rate* is the paper's §6
/// future-work signal for relative activity levels ("we are developing
/// techniques to estimate a prefix's cache hit rates over time and
/// across domains, as a step towards a relative ranking").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCount {
    /// Probe events sent for this scope (each = `redundancy` queries).
    pub attempts: u64,
    /// Probe events that produced a scoped cache hit.
    pub hits: u64,
    /// Probe events answered only with a /0 scope.
    pub scope0: u64,
    /// Probe events lost entirely.
    pub drops: u64,
}

impl ProbeCount {
    /// The observed hit rate, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.hits as f64 / self.attempts as f64
        }
    }
}

/// Per-AS active-space bounds (Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AsBounds {
    /// Minimum activity consistent with the hits: one active /24 per
    /// disjoint hit prefix.
    pub lower_active_24s: u64,
    /// Maximum: every /24 inside every hit prefix is active.
    pub upper_active_24s: u64,
    /// The AS's announced /24 count (denominator).
    pub announced_24s: u64,
}

/// Partial-result accounting for a fault-injected run: what the
/// resilience layer observed, recovered, and had to give up on.
/// `None` on [`CacheProbeResult::fault`] when fault injection is off,
/// keeping fault-free reports byte-identical to the pre-fault pipeline.
///
/// Conservation: `observed == recovered + degraded + lost`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// The fault profile the run was injected with (`light`, `lossy`,
    /// `pop-churn`).
    pub profile: String,
    /// Failed wire exchanges observed by the prober, all classes.
    pub observed: u64,
    /// Retry sends beyond each probe's first query (not counted in
    /// [`CacheProbeResult::probes_sent`]).
    pub retries: u64,
    /// Observed failures on probes that a retry recovered unchanged.
    pub recovered: u64,
    /// Observed failures on probes recovered only by the TC-forced
    /// upgrade from UDP to TCP.
    pub degraded: u64,
    /// Observed failures on probes that exhausted retries or deadline.
    pub lost: u64,
    /// PoPs quarantined by the circuit breaker, in PoP order.
    pub quarantined_pops: Vec<PopId>,
    /// Scopes re-probed at a fallback PoP after quarantine.
    pub rescued_scopes: u64,
    /// Assigned ⟨domain, scope⟩ pairs that never produced a probe
    /// event — coverage the faults cost us.
    pub unmeasured_scopes: u64,
    /// Total distinct assigned ⟨domain, scope⟩ pairs (denominator for
    /// the unmeasured share).
    pub assigned_scopes: u64,
}

impl FaultSummary {
    /// Share of probe events that needed at least one retry-class send,
    /// as retries over first-try sends, in `[0, 1]`.
    pub fn retried_fraction(&self, probes_sent: u64) -> f64 {
        if probes_sent + self.retries == 0 {
            0.0
        } else {
            self.retries as f64 / (probes_sent + self.retries) as f64
        }
    }

    /// Share of assigned scopes left unmeasured, in `[0, 1]`.
    pub fn unmeasured_fraction(&self) -> f64 {
        if self.assigned_scopes == 0 {
            0.0
        } else {
            self.unmeasured_scopes as f64 / self.assigned_scopes as f64
        }
    }
}

/// The full output of [`crate::run_technique`].
#[derive(Debug)]
pub struct CacheProbeResult {
    /// Probing domains, index-aligned with hit records.
    pub domains: Vec<DomainName>,
    /// The vantage points that were bound to PoPs.
    pub bound_vantages: Vec<BoundVantage>,
    /// Calibrated service radii.
    pub service_radii: ServiceRadii,
    /// The authoritative scope pre-scan used for the query plan.
    pub scope_scan: ScopeScan,
    /// Hits: ⟨domain index, response scope⟩ → stats.
    pub hits: HashMap<(usize, Prefix), HitStats>,
    /// Active prefixes per PoP (Figure 1's density map).
    pub pop_hit_prefixes: HashMap<PopId, PrefixSet>,
    /// ⟨domain index, query scope len, response scope len⟩ → hit count
    /// (Table 2's stability data).
    pub scope_pairs: HashMap<(usize, u8, u8), u64>,
    /// ⟨domain index, query scope⟩ → attempts/hits (activity ranking).
    pub probe_counts: HashMap<(usize, Prefix), ProbeCount>,
    /// Scopes assigned per PoP after the service-radius cut.
    pub assigned_per_pop: HashMap<PopId, usize>,
    /// Probe queries sent (including redundancy).
    pub probes_sent: u64,
    /// Hits with return scope 0 (discarded per the methodology).
    pub scope0_hits: u64,
    /// Rate-limited / dropped queries.
    pub drops: u64,
    /// Partial-result accounting under fault injection (`None` when
    /// faults are off).
    pub fault: Option<FaultSummary>,
}

impl CacheProbeResult {
    /// Creates an empty result shell.
    pub fn new(
        domains: Vec<DomainName>,
        bound_vantages: Vec<BoundVantage>,
        service_radii: ServiceRadii,
        scope_scan: ScopeScan,
    ) -> Self {
        CacheProbeResult {
            domains,
            bound_vantages,
            service_radii,
            scope_scan,
            hits: HashMap::new(),
            pop_hit_prefixes: HashMap::new(),
            scope_pairs: HashMap::new(),
            probe_counts: HashMap::new(),
            assigned_per_pop: HashMap::new(),
            probes_sent: 0,
            scope0_hits: 0,
            drops: 0,
            fault: None,
        }
    }

    /// Records one cache hit.
    pub fn record_hit(
        &mut self,
        domain: usize,
        pop: PopId,
        query_scope: Prefix,
        response_scope: Prefix,
        remaining_ttl: u32,
    ) {
        let stats = self.hits.entry((domain, response_scope)).or_default();
        stats.hits += 1;
        stats.min_remaining_ttl = if stats.hits == 1 {
            remaining_ttl
        } else {
            stats.min_remaining_ttl.min(remaining_ttl)
        };
        self.pop_hit_prefixes
            .entry(pop)
            .or_default()
            .insert(response_scope);
        *self
            .scope_pairs
            .entry((domain, query_scope.len(), response_scope.len()))
            .or_insert(0) += 1;
    }

    /// The combined active-prefix set: every /24 inside any hit scope
    /// (the paper's upper-bound interpretation used for Table 1).
    pub fn active_set(&self) -> PrefixSet {
        PrefixSet::from_prefixes(self.hits.keys().map(|(_, p)| *p))
    }

    /// The active set detected via one domain only (Table 5).
    pub fn active_set_for_domain(&self, domain: usize) -> PrefixSet {
        PrefixSet::from_prefixes(
            self.hits
                .keys()
                .filter(|(d, _)| *d == domain)
                .map(|(_, p)| *p),
        )
    }

    /// The distinct hit scopes (disjoint after set-normalisation) —
    /// the lower-bound unit (each contains ≥ 1 active /24).
    pub fn hit_prefixes(&self) -> Vec<Prefix> {
        self.active_set().prefixes()
    }

    /// ASes with at least one hit prefix, resolved through the RIB.
    pub fn active_ases(&self, rib: &Rib) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .hit_prefixes()
            .iter()
            .flat_map(|p| rib.origins_within(*p))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-AS lower/upper active-/24 bounds (Figure 4). Hit prefixes
    /// spanning several ASes contribute to each AS they overlap.
    pub fn as_bounds(&self, rib: &Rib) -> HashMap<Asn, AsBounds> {
        let mut per_as_sets: HashMap<Asn, PrefixSet> = HashMap::new();
        for p in self.hit_prefixes() {
            for asn in rib.origins_within(p) {
                per_as_sets.entry(asn).or_default().insert(p);
            }
        }
        per_as_sets
            .into_iter()
            .map(|(asn, set)| {
                let announced = rib.announced_slash24s(asn);
                (
                    asn,
                    AsBounds {
                        lower_active_24s: set.num_prefixes() as u64,
                        upper_active_24s: set.num_slash24s().min(announced.max(1)),
                        announced_24s: announced,
                    },
                )
            })
            .collect()
    }

    /// Projects the per-scope probe accounting onto a dense per-/24
    /// [`VerdictTable`]: each query scope contributes its best evidence
    /// (`Hit > HitScopeZero > Miss > Dropped`) to every /24 it covers,
    /// merged by max rank — the store-backed view the set algebra and
    /// warm-start layers consume.
    pub fn verdict_table(&self) -> VerdictTable {
        let mut table = VerdictTable::new();
        let mut spread = |scope: &Prefix, v: Verdict| {
            let first = scope.first_addr() >> 8;
            for idx in first..first + scope.num_slash24s() as u32 {
                table.record(idx, v);
            }
        };
        for ((_, scope), c) in &self.probe_counts {
            let verdict = if c.hits > 0 {
                Verdict::Hit
            } else if c.scope0 > 0 {
                Verdict::HitScopeZero
            } else if c.attempts > c.drops {
                Verdict::Miss
            } else if c.attempts > 0 {
                Verdict::Dropped
            } else {
                continue;
            };
            spread(scope, verdict);
        }
        // Response scopes can be wider than the query scope; they are
        // hit evidence for every /24 they cover.
        for (_, scope) in self.hits.keys() {
            spread(scope, Verdict::Hit);
        }
        table
    }

    /// Table 2 rows: per domain, hits with |query − response| scope
    /// difference of exactly 0, ≤ 2, ≤ 4, and the total.
    pub fn scope_stability(&self, domain: usize) -> (u64, u64, u64, u64) {
        let mut exact = 0;
        let mut within2 = 0;
        let mut within4 = 0;
        let mut total = 0;
        for ((d, q, r), c) in &self.scope_pairs {
            if *d != domain {
                continue;
            }
            let diff = (i16::from(*q) - i16::from(*r)).unsigned_abs();
            total += c;
            if diff == 0 {
                exact += c;
            }
            if diff <= 2 {
                within2 += c;
            }
            if diff <= 4 {
                within4 += c;
            }
        }
        (exact, within2, within4, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn shell() -> CacheProbeResult {
        CacheProbeResult::new(
            vec![
                "www.google.com".parse().unwrap(),
                "facebook.com".parse().unwrap(),
            ],
            Vec::new(),
            ServiceRadii::default(),
            ScopeScan::default(),
        )
    }

    #[test]
    fn record_and_sets() {
        let mut r = shell();
        r.record_hit(0, 3, p("10.1.0.0/20"), p("10.1.0.0/20"), 100);
        r.record_hit(0, 3, p("10.1.0.0/20"), p("10.1.0.0/20"), 50);
        r.record_hit(1, 4, p("10.2.0.0/24"), p("10.2.0.0/22"), 10);
        assert_eq!(r.hits.len(), 2);
        assert_eq!(r.hits[&(0, p("10.1.0.0/20"))].hits, 2);
        assert_eq!(r.hits[&(0, p("10.1.0.0/20"))].min_remaining_ttl, 50);
        assert_eq!(r.active_set().num_slash24s(), 16 + 4);
        assert_eq!(r.active_set_for_domain(0).num_slash24s(), 16);
        assert_eq!(r.active_set_for_domain(1).num_slash24s(), 4);
        assert_eq!(r.pop_hit_prefixes[&3].num_slash24s(), 16);
    }

    #[test]
    fn scope_stability_buckets() {
        let mut r = shell();
        r.record_hit(0, 0, p("10.0.0.0/20"), p("10.0.0.0/20"), 1); // diff 0
        r.record_hit(0, 0, p("10.1.0.0/20"), p("10.1.0.0/22"), 1); // diff 2
        r.record_hit(0, 0, p("10.2.0.0/20"), p("10.2.0.0/24"), 1); // diff 4
        r.record_hit(0, 0, p("10.3.0.0/20"), p("10.3.0.0/14"), 1); // diff 6
        let (exact, w2, w4, total) = r.scope_stability(0);
        assert_eq!((exact, w2, w4, total), (1, 2, 3, 4));
        assert_eq!(r.scope_stability(1), (0, 0, 0, 0));
    }

    #[test]
    fn as_bounds_respect_rib() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(100));
        rib.announce(p("10.2.0.0/24"), Asn(200));
        let mut r = shell();
        r.record_hit(0, 0, p("10.1.0.0/20"), p("10.1.0.0/20"), 1);
        r.record_hit(0, 0, p("10.1.16.0/20"), p("10.1.16.0/20"), 1);
        r.record_hit(0, 0, p("10.2.0.0/24"), p("10.2.0.0/24"), 1);
        let bounds = r.as_bounds(&rib);
        let b100 = bounds[&Asn(100)];
        assert_eq!(b100.lower_active_24s, 2);
        assert_eq!(b100.upper_active_24s, 32);
        assert_eq!(b100.announced_24s, 256);
        let b200 = bounds[&Asn(200)];
        assert_eq!(b200.lower_active_24s, 1);
        assert_eq!(b200.upper_active_24s, 1);
        assert_eq!(b200.announced_24s, 1);
        assert_eq!(r.active_ases(&rib).len(), 2);
    }

    #[test]
    fn verdict_table_ranks_probe_evidence() {
        let mut r = shell();
        r.probe_counts.insert(
            (0, p("10.0.0.0/24")),
            ProbeCount {
                attempts: 4,
                hits: 1,
                scope0: 1,
                drops: 1,
            },
        );
        r.probe_counts.insert(
            (0, p("10.0.1.0/24")),
            ProbeCount {
                attempts: 3,
                hits: 0,
                scope0: 2,
                drops: 0,
            },
        );
        r.probe_counts.insert(
            (0, p("10.0.2.0/23")),
            ProbeCount {
                attempts: 3,
                hits: 0,
                scope0: 0,
                drops: 1,
            },
        );
        r.probe_counts.insert(
            (0, p("10.0.4.0/24")),
            ProbeCount {
                attempts: 2,
                hits: 0,
                scope0: 0,
                drops: 2,
            },
        );
        let t = r.verdict_table();
        assert_eq!(t.get(0x0A0000), Verdict::Hit);
        assert_eq!(t.get(0x0A0001), Verdict::HitScopeZero);
        assert_eq!(t.get(0x0A0002), Verdict::Miss);
        assert_eq!(t.get(0x0A0003), Verdict::Miss);
        assert_eq!(t.get(0x0A0004), Verdict::Dropped);
        assert_eq!(t.get(0x0A0005), Verdict::Unmeasured);
        assert_eq!(t.count_measured(), 5);
        // A wide response scope upgrades everything it covers to Hit.
        r.record_hit(0, 3, p("10.0.4.0/24"), p("10.0.4.0/23"), 60);
        let t = r.verdict_table();
        assert_eq!(t.get(0x0A0004), Verdict::Hit);
        assert_eq!(t.get(0x0A0005), Verdict::Hit);
    }

    #[test]
    fn upper_bound_capped_by_announced_space() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/24"), Asn(300));
        let mut r = shell();
        // A /16 hit scope overlapping a tiny AS must not claim 256 /24s
        // for it.
        r.record_hit(0, 0, p("10.1.0.0/16"), p("10.1.0.0/16"), 1);
        let bounds = r.as_bounds(&rib);
        assert_eq!(bounds[&Asn(300)].upper_active_24s, 1);
    }
}
