//! Per-PoP service-radius calibration (§3.1.1, Figure 2).
//!
//! Anycast mostly routes clients to nearby PoPs, so probing every
//! prefix at every PoP is wasteful. The paper samples 78,637 random
//! prefixes whose MaxMind error radius is under 200 km, probes each at
//! every PoP for the four Alexa domains, and takes the 90th percentile
//! of hit distances as each PoP's **service radius** — then probes a
//! prefix at a PoP only if MaxMind places it possibly within the
//! radius. This cut the per-PoP probe list from 4.4M to 2.4M prefixes.

use std::collections::HashMap;

use clientmap_dns::{wire, DomainName};
use clientmap_net::{Prefix, SeedMixer};
use clientmap_sim::{
    pop_catalog, BatchStats, GpdnsSession, PopId, ProbeOutcome, Sim, SimTime, Transport,
};
use clientmap_store::CalibrationRecord;

use crate::vantage::BoundVantage;
use crate::ProbeConfig;

/// Calibrated radii and the raw distance samples behind them.
#[derive(Debug, Clone, Default)]
pub struct ServiceRadii {
    /// 90th-percentile hit distance per PoP, km.
    pub radius_km: HashMap<PopId, f64>,
    /// All hit distances per PoP (for Figure 2's CDFs).
    pub hit_distances_km: HashMap<PopId, Vec<f64>>,
    /// Sampled prefixes that passed the error-radius filter.
    pub sample_size: usize,
}

impl ServiceRadii {
    /// The radius for a PoP (falls back to `fallback` if uncalibrated).
    pub fn radius(&self, pop: PopId, fallback: f64) -> f64 {
        self.radius_km.get(&pop).copied().unwrap_or(fallback)
    }

    /// The largest calibrated radius (the paper's Zurich anecdote:
    /// 5,524 km — using it everywhere nearly doubles probing).
    pub fn max_radius(&self) -> Option<f64> {
        self.radius_km.values().copied().max_by(f64::total_cmp)
    }
}

/// Draws `n` distinct random /24s from the universe blocks, weighted by
/// block size, keeping only prefixes whose (public) geolocation entry
/// reports an error radius under the filter.
pub fn sample_prefixes(
    sim: &Sim,
    universe: &[Prefix],
    n: usize,
    max_error_km: f64,
    seed: u64,
) -> Vec<Prefix> {
    let total_24s: u64 = universe.iter().map(|b| b.num_slash24s()).sum();
    if total_24s == 0 {
        return Vec::new();
    }
    // Cumulative index for weighted block selection.
    let mut cum: Vec<(u64, usize)> = Vec::with_capacity(universe.len());
    let mut acc = 0u64;
    for (i, b) in universe.iter().enumerate() {
        cum.push((acc, i));
        acc += b.num_slash24s();
    }
    let geodb = &sim.world().geodb;
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut state = SeedMixer::new(seed).mix_str("calibration-sample").finish();
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 50 {
        attempts += 1;
        state = clientmap_net::splitmix64(state);
        let pick = state % total_24s;
        let block_idx = match cum.binary_search_by(|(start, _)| start.cmp(&pick)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let block = universe[cum[block_idx].1];
        let offset = pick - cum[block_idx].0;
        let addr = block.first_addr().wrapping_add((offset as u32) << 8);
        let p = Prefix::new(addr, 24).expect("24 valid");
        if !seen.insert(p) {
            continue;
        }
        let entry = geodb.lookup(p).or_else(|| geodb.lookup_addr(p.addr()));
        if entry
            .map(|e| e.error_radius_km < max_error_km)
            .unwrap_or(false)
        {
            out.push(p);
        }
    }
    out.sort();
    out
}

/// Runs the calibration: probes the sample at every bound PoP for the
/// given domains and derives per-PoP radii. Each PoP is one work unit
/// on the deterministic executor, with its own connection session (like
/// independent VMs); results merge in PoP order, so the radii are
/// identical at any thread count.
pub fn calibrate(
    sim: &mut Sim,
    bound: &[BoundVantage],
    domains: &[DomainName],
    sample: &[Prefix],
    cfg: &ProbeConfig,
    t: SimTime,
) -> ServiceRadii {
    let pops = pop_catalog();
    let mut radii = ServiceRadii {
        sample_size: sample.len(),
        ..ServiceRadii::default()
    };
    // Under fault injection, calibration probes ride the resilient
    // path too — a lost calibration probe must be observed, retried,
    // and accounted like any other, or the radii skew dark.
    let fc = sim
        .fault_plan()
        .enabled()
        .then(|| crate::resilience::FaultCounters::resolve(sim.metrics()));
    let view = sim.view();
    let mut per_pop: Vec<(usize, Vec<f64>, clientmap_sim::GpdnsSession)> =
        clientmap_par::par_map(bound, |_, b| {
            let mut session = clientmap_sim::GpdnsSession::new();
            let mut distances: Vec<f64> = Vec::new();
            for (i, prefix) in sample.iter().enumerate() {
                // Stagger probe times so the rate limiter behaves.
                let pt = t + SimTime::from_millis(i as u64 * 20);
                let hit = domains.iter().any(|d| {
                    let outcome = match &fc {
                        Some(fc) => crate::probe::probe_scope_resilient_with(
                            &view,
                            &mut session,
                            b,
                            d,
                            *prefix,
                            cfg,
                            pt,
                            fc,
                        ),
                        None => crate::probe::probe_scope_with(
                            &view,
                            &mut session,
                            b,
                            d,
                            *prefix,
                            cfg,
                            pt,
                        ),
                    };
                    matches!(outcome, ProbeOutcome::Hit { .. })
                });
                if hit {
                    let geodb = &view.world.geodb;
                    let geo = geodb
                        .lookup(*prefix)
                        .or_else(|| geodb.lookup_addr(prefix.addr()))
                        .map(|e| e.coord);
                    if let Some(coord) = geo {
                        distances.push(coord.distance_km(&pops[b.pop].coord));
                    }
                }
            }
            (b.pop, distances, session)
        });

    per_pop.sort_by_key(|(pop, _, _)| *pop);
    for (pop, mut distances, session) in per_pop {
        sim.absorb_session(&session);
        if let Some(r) = percentile_radius(&mut distances, cfg.radius_percentile) {
            radii.radius_km.insert(pop, r);
        }
        radii.hit_distances_km.insert(pop, distances);
    }
    radii
}

/// Everything one calibration pass produced: the derived radii plus the
/// per-PoP storable records that let a warm re-sweep replay the pass
/// instead of re-probing the whole sample.
#[derive(Debug, Clone, Default)]
pub(crate) struct CalibrationOutcome {
    pub radii: ServiceRadii,
    /// Per-PoP records, sorted by PoP id (the snapshot codec's order).
    pub records: Vec<CalibrationRecord>,
}

/// Derives the percentile radius from a PoP's hit distances, sorting
/// them in place (the order [`ServiceRadii`] stores). `None` when the
/// PoP saw no hits.
fn percentile_radius(distances: &mut [f64], percentile: f64) -> Option<f64> {
    if distances.is_empty() {
        return None;
    }
    distances.sort_by(f64::total_cmp);
    let idx = ((distances.len() as f64 - 1.0) * percentile).round() as usize;
    Some(distances[idx.min(distances.len() - 1)])
}

/// Batched sibling of [`calibrate`]: each PoP worker opens one batch
/// connection, hoists routing and per-domain scope tables out of the
/// probe loop, and serves every sample probe through the batch kernel —
/// capturing the per-PoP [`CalibrationRecord`]s a later warm sweep can
/// replay. Byte-identical to the scalar lane in radii, session stats,
/// and resolver telemetry. Returns `None` under fault injection (the
/// core refuses batch connections), where the scalar resilient lane
/// must run instead.
pub(crate) fn calibrate_batched(
    sim: &mut Sim,
    bound: &[BoundVantage],
    domains: &[DomainName],
    sample: &[Prefix],
    cfg: &ProbeConfig,
    t: SimTime,
) -> Option<CalibrationOutcome> {
    if sim.fault_plan().enabled() {
        return None;
    }
    let pops = pop_catalog();
    let templates: Vec<wire::ProbeQueryTemplate> =
        domains.iter().map(wire::ProbeQueryTemplate::new).collect();
    let view = sim.view();
    let mut per_pop: Vec<(PopId, Vec<f64>, GpdnsSession, BatchStats)> =
        clientmap_par::par_map(bound, |_, b| {
            let mut session = GpdnsSession::new();
            let mut conn = view
                .gpdns
                .open_batch(
                    view.catchments,
                    &session,
                    b.prober_key(),
                    b.coord(),
                    cfg.transport,
                )
                .expect("fault-free cores always open batch connections");
            let doms: Vec<_> = templates
                .iter()
                .map(|tm| {
                    view.gpdns
                        .batch_domain(&conn, tm.qname_wire())
                        .expect("selected domains are probeable")
                })
                .collect();
            let mut batch = wire::ProbeBatch::new();
            let mut out: Vec<ProbeOutcome> = Vec::with_capacity(1);
            let mut distances: Vec<f64> = Vec::new();
            for (i, prefix) in sample.iter().enumerate() {
                // Stagger probe times so the rate limiter behaves.
                let pt = t + SimTime::from_millis(i as u64 * 20);
                // Same short-circuit as the scalar lane: stop at the
                // first domain whose caches hold the prefix. The
                // outcome gates the next serve, so probes go one event
                // at a time — the win here is the hoisted connection
                // and scope-table state, not arena size.
                let mut hit = false;
                for (d, dom) in doms.iter().enumerate() {
                    let lane = view.gpdns.scope_lane(view.auth, dom, *prefix);
                    batch.clear();
                    batch.push(
                        &templates[d],
                        crate::resilience::attempt_id(pt, *prefix, 0, 0),
                        *prefix,
                    );
                    out.clear();
                    let ok = view.gpdns.serve_batch(
                        &mut conn,
                        dom,
                        view.auth,
                        std::slice::from_ref(&lane),
                        &batch,
                        &[(0, pt)],
                        cfg.redundancy,
                        &mut out,
                    );
                    debug_assert!(ok, "template-rendered batches always validate");
                    if ok && matches!(out.first(), Some(ProbeOutcome::Hit { .. })) {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    let geodb = &view.world.geodb;
                    let geo = geodb
                        .lookup(*prefix)
                        .or_else(|| geodb.lookup_addr(prefix.addr()))
                        .map(|e| e.coord);
                    if let Some(coord) = geo {
                        distances.push(coord.distance_km(&pops[b.pop].coord));
                    }
                }
            }
            let stats = view.gpdns.close_batch(conn, &mut session);
            (b.pop, distances, session, stats)
        });

    per_pop.sort_by_key(|(pop, ..)| *pop);
    let mut outcome = CalibrationOutcome {
        radii: ServiceRadii {
            sample_size: sample.len(),
            ..ServiceRadii::default()
        },
        records: Vec::with_capacity(per_pop.len()),
    };
    for (pop, mut distances, session, stats) in per_pop {
        sim.absorb_session(&session);
        let radius = percentile_radius(&mut distances, cfg.radius_percentile);
        if let Some(r) = radius {
            outcome.radii.radius_km.insert(pop, r);
        }
        outcome
            .radii
            .hit_distances_km
            .insert(pop, distances.clone());
        // Duplicate-bound PoPs (not expected from discovery, but the
        // codec requires strictly ascending records): stats accumulate,
        // the later worker's distances win — matching the map inserts.
        match outcome.records.last_mut() {
            Some(last) if last.pop == pop as u64 => {
                last.radius_km = radius;
                last.hit_distances_km = distances;
                last.queries += stats.queries;
                last.rate_limited += stats.rate_limited;
                for p in 0..4 {
                    last.pool_hits[p] += stats.pool_hits[p];
                    last.pool_scope0[p] += stats.pool_scope0[p];
                    last.pool_misses[p] += stats.pool_misses[p];
                }
            }
            _ => outcome.records.push(CalibrationRecord {
                pop: pop as u64,
                radius_km: radius,
                hit_distances_km: distances,
                queries: stats.queries,
                rate_limited: stats.rate_limited,
                pool_hits: stats.pool_hits,
                pool_scope0: stats.pool_scope0,
                pool_misses: stats.pool_misses,
            }),
        }
    }
    Some(outcome)
}

/// Replays stored [`CalibrationRecord`]s as if their probes had run
/// this sweep: rebuilds the [`ServiceRadii`] and re-applies each PoP's
/// captured resolver tallies to the session counters and the metrics
/// registry — leaving both exactly where a live calibration pass would
/// have left them, without serving a single probe.
pub(crate) fn replay_calibration(
    sim: &mut Sim,
    records: &[CalibrationRecord],
    sample_size: u64,
    transport: Transport,
) -> ServiceRadii {
    let mut radii = ServiceRadii {
        sample_size: sample_size as usize,
        ..ServiceRadii::default()
    };
    let mut session = GpdnsSession::new();
    {
        let view = sim.view();
        for rec in records {
            let stats = BatchStats {
                queries: rec.queries,
                rate_limited: rec.rate_limited,
                pool_hits: rec.pool_hits,
                pool_scope0: rec.pool_scope0,
                pool_misses: rec.pool_misses,
            };
            view.gpdns
                .replay_batch_stats(&mut session, &stats, transport);
            let pop = rec.pop as PopId;
            if let Some(r) = rec.radius_km {
                radii.radius_km.insert(pop, r);
            }
            radii
                .hit_distances_km
                .insert(pop, rec.hit_distances_km.clone());
        }
    }
    sim.absorb_session(&session);
    radii
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vantage::discover;
    use clientmap_world::{World, WorldConfig};

    fn setup() -> (Sim, Vec<Prefix>) {
        let world = World::generate(WorldConfig::tiny(91));
        let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
        (Sim::new(world), universe)
    }

    #[test]
    fn sampling_respects_filter_and_universe() {
        let (sim, universe) = setup();
        let sample = sample_prefixes(&sim, &universe, 200, 200.0, 5);
        assert!(sample.len() >= 100, "sample too small: {}", sample.len());
        for p in &sample {
            assert!(
                universe.iter().any(|b| b.contains(*p)),
                "{p} outside universe"
            );
            let geodb = &sim.world().geodb;
            let e = geodb
                .lookup(*p)
                .or_else(|| geodb.lookup_addr(p.addr()))
                .unwrap();
            assert!(e.error_radius_km < 200.0);
        }
        // No duplicates.
        let mut dedup = sample.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), sample.len());
    }

    #[test]
    fn sampling_deterministic() {
        let (sim, universe) = setup();
        let a = sample_prefixes(&sim, &universe, 100, 200.0, 5);
        let b = sample_prefixes(&sim, &universe, 100, 200.0, 5);
        assert_eq!(a, b);
        let c = sample_prefixes(&sim, &universe, 100, 200.0, 6);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn calibration_yields_finite_radii() {
        let (mut sim, universe) = setup();
        let bound = discover(&mut sim, SimTime::ZERO);
        // Limit to a handful of PoPs for test speed.
        let bound = &bound[..bound.len().min(4)];
        let domains: Vec<DomainName> = sim
            .world()
            .domains
            .top_probeable(4)
            .iter()
            .map(|s| s.name.clone())
            .collect();
        let cfg = ProbeConfig::test_scale();
        let sample = sample_prefixes(&sim, &universe, 400, 200.0, 7);
        let radii = calibrate(
            &mut sim,
            bound,
            &domains,
            &sample,
            &cfg,
            SimTime::from_hours(6),
        );
        assert_eq!(radii.sample_size, sample.len());
        let mut calibrated = 0;
        for b in bound {
            if let Some(r) = radii.radius_km.get(&b.pop) {
                assert!(r.is_finite() && *r >= 0.0);
                calibrated += 1;
                // Distances list is consistent with the radius.
                let d = &radii.hit_distances_km[&b.pop];
                assert!(!d.is_empty());
                assert!(d.iter().all(|x| *x >= 0.0));
            }
        }
        assert!(calibrated >= 1, "no PoP calibrated");
        assert!(radii.max_radius().is_some());
        assert_eq!(radii.radius(9999, 1234.5), 1234.5, "fallback radius");
    }
}
