//! # clientmap-faults — seeded, deterministic fault injection
//!
//! The measurement environment the paper survives is hostile: Google
//! Public DNS rate-limits UDP, PoPs go dark for maintenance, anycast
//! catchments shift mid-sweep, and queries are silently lost. This
//! crate turns that hostility into a *plan*: a pure function of
//! `(world_seed, fault_seed)` that every service consults at
//! well-defined injection points. Because each decision is a stable
//! hash of *where and when* the query happens — never of execution
//! order — a faulted run is byte-identical at any thread count.
//!
//! The plan answers three questions:
//!
//! * [`FaultPlan::query_fault`] — does *this* wire query suffer a
//!   fault, and which [`QueryFault`] class?
//! * [`FaultPlan::pop_in_outage`] — is a PoP inside its seeded
//!   maintenance window at time `t`?
//! * [`FaultPlan::flap`] — does a vantage's anycast catchment flap to
//!   a neighbouring PoP during this window?
//!
//! ```
//! use clientmap_faults::{FaultConfig, FaultPlan, FaultProfile};
//!
//! let plan = FaultPlan::new(2021, &FaultConfig::profile(FaultProfile::Lossy, 7));
//! // Same coordinates, same answer — forever.
//! let a = plan.query_fault(3, 1, false, 1_000, 0x4242);
//! let b = plan.query_fault(3, 1, false, 1_000, 0x4242);
//! assert_eq!(a, b);
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use clientmap_net::SeedMixer;
use clientmap_telemetry::{Counter, MetricsRegistry};

/// Named fault profiles — the "standard chaos levels" used by the CLI
/// (`--faults PROFILE`), CI, and the chaos test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultProfile {
    /// No faults; the plan is inert and injection points short-circuit.
    #[default]
    Off,
    /// Background noise: sub-percent loss and error rates, no outages.
    Light,
    /// A bad day on the Internet: ~11% of attempts fail somehow, a
    /// tenth of PoPs take a maintenance window, catchments twitch.
    Lossy,
    /// PoP churn: modest per-query faults but a third of PoPs go dark
    /// for 1–3 h mid-sweep and catchments flap often.
    PopChurn,
}

impl FaultProfile {
    /// The canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultProfile::Off => "off",
            FaultProfile::Light => "light",
            FaultProfile::Lossy => "lossy",
            FaultProfile::PopChurn => "pop-churn",
        }
    }

    /// All profiles, in severity order.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::Off,
        FaultProfile::Light,
        FaultProfile::Lossy,
        FaultProfile::PopChurn,
    ];
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "none" => Ok(FaultProfile::Off),
            "light" => Ok(FaultProfile::Light),
            "lossy" => Ok(FaultProfile::Lossy),
            "pop-churn" | "popchurn" | "pop_churn" => Ok(FaultProfile::PopChurn),
            other => Err(format!(
                "unknown fault profile {other:?} (expected off|light|lossy|pop-churn)"
            )),
        }
    }
}

/// Which faults to inject: a profile plus the fault half of the
/// `(world_seed, fault_seed)` pair. The default is fully off, so every
/// existing entry point keeps its exact pre-fault behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Fault intensity profile.
    pub profile: FaultProfile,
    /// Seed for the fault plan, mixed with the world seed. Two runs of
    /// the same world with different fault seeds see different faults.
    pub fault_seed: u64,
}

impl FaultConfig {
    /// Shorthand constructor.
    pub fn profile(profile: FaultProfile, fault_seed: u64) -> FaultConfig {
        FaultConfig {
            profile,
            fault_seed,
        }
    }
}

/// The fault classes a single wire query can suffer. The server-side
/// injection point maps each to an observable behaviour: `Loss`,
/// `Latency` (a spike past any client deadline), `TcpReset`, and
/// `Outage` all surface as a dropped query; `ServFail` / `Refused`
/// surface as an error rcode; `Truncate` sets the TC bit on a UDP
/// response, forcing the client to retry over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFault {
    /// The packet never arrives (either direction).
    Loss,
    /// The resolver answers SERVFAIL.
    ServFail,
    /// The resolver answers REFUSED.
    Refused,
    /// UDP response truncated (TC bit, no answers) — retry over TCP.
    Truncate,
    /// Response latency blows the deadline budget; the client times out.
    Latency,
    /// The TCP connection is reset mid-exchange.
    TcpReset,
    /// The PoP is inside a maintenance window; nothing answers.
    Outage,
}

impl QueryFault {
    /// Stable telemetry suffix (`faults.injected.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            QueryFault::Loss => "loss",
            QueryFault::ServFail => "servfail",
            QueryFault::Refused => "refused",
            QueryFault::Truncate => "truncate",
            QueryFault::Latency => "latency",
            QueryFault::TcpReset => "tcp_reset",
            QueryFault::Outage => "outage",
        }
    }
}

/// Per-profile fault intensities. All probabilities are per-query (or
/// per-PoP for `outage_prob`, per-window for `flap`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rates {
    loss: f64,
    servfail: f64,
    refused: f64,
    /// UDP only — a truncated TCP response makes no sense.
    truncate: f64,
    latency: f64,
    /// TCP only.
    tcp_reset: f64,
    /// Probability a given PoP has a maintenance window at all.
    outage_prob: f64,
    /// Probability a vantage's catchment flaps in a given 10-minute
    /// window.
    flap: f64,
}

const NO_FAULTS: Rates = Rates {
    loss: 0.0,
    servfail: 0.0,
    refused: 0.0,
    truncate: 0.0,
    latency: 0.0,
    tcp_reset: 0.0,
    outage_prob: 0.0,
    flap: 0.0,
};

impl FaultProfile {
    fn rates(self) -> Rates {
        match self {
            FaultProfile::Off => NO_FAULTS,
            FaultProfile::Light => Rates {
                loss: 0.005,
                servfail: 0.002,
                refused: 0.001,
                truncate: 0.05,
                latency: 0.003,
                tcp_reset: 0.002,
                outage_prob: 0.0,
                flap: 0.0,
            },
            FaultProfile::Lossy => Rates {
                loss: 0.05,
                servfail: 0.02,
                refused: 0.005,
                truncate: 0.25,
                latency: 0.02,
                tcp_reset: 0.02,
                outage_prob: 0.10,
                flap: 0.02,
            },
            FaultProfile::PopChurn => Rates {
                loss: 0.01,
                servfail: 0.005,
                refused: 0.002,
                truncate: 0.08,
                latency: 0.005,
                tcp_reset: 0.01,
                outage_prob: 0.35,
                flap: 0.08,
            },
        }
    }
}

/// Maintenance windows open between 6 h and 16 h into a run — inside
/// the probing sweep even at the tiny scale (calibration at 6 h, a
/// 12 h sweep after) — and last 1–3 h.
const OUTAGE_EARLIEST_MS: u64 = 6 * 3_600_000;
const OUTAGE_SPREAD_MS: u64 = 10 * 3_600_000;
const OUTAGE_MIN_MS: u64 = 3_600_000;
const OUTAGE_VAR_MS: u64 = 2 * 3_600_000;

/// Catchment flap decisions are stable within 10-minute windows, so a
/// flap looks like a routing change, not per-packet jitter.
const FLAP_WINDOW_MS: u64 = 600_000;

/// Maps a stable hash to `[0, 1)` — the same construction the
/// simulator uses everywhere randomness is needed.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// An immutable, seeded fault plan. Cheap to share ([`Arc`]); every
/// decision method is a pure function of its arguments.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    fault_seed: u64,
    profile: FaultProfile,
    rates: Rates,
}

impl FaultPlan {
    /// Derives the plan from the world seed and the fault config.
    pub fn new(world_seed: u64, config: &FaultConfig) -> FaultPlan {
        let seed = SeedMixer::new(world_seed)
            .mix_str("faults")
            .mix(config.fault_seed)
            .finish();
        FaultPlan {
            seed,
            fault_seed: config.fault_seed,
            profile: config.profile,
            rates: config.profile.rates(),
        }
    }

    /// The inert plan (profile [`FaultProfile::Off`]).
    pub fn off() -> FaultPlan {
        FaultPlan::new(0, &FaultConfig::default())
    }

    /// Whether the plan injects nothing — injection points
    /// short-circuit on this, keeping the fault-free fast path intact.
    pub fn is_off(&self) -> bool {
        self.profile == FaultProfile::Off
    }

    /// Whether any faults are injected.
    pub fn enabled(&self) -> bool {
        !self.is_off()
    }

    /// The profile this plan was built from.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// The raw fault seed this plan was built from — what a fleet
    /// driver ships to workers so they derive the *same* plan from the
    /// same `(world_seed, fault_seed)` pair.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// The `(profile, fault_seed)` config this plan was built from.
    pub fn config(&self) -> FaultConfig {
        FaultConfig::profile(self.profile, self.fault_seed)
    }

    /// The derived plan seed — a stable function of
    /// `(world_seed, fault_seed)`. Sweep snapshots mix it into their
    /// config digest so a warm start never replays state recorded
    /// under a different fault plan.
    pub fn plan_seed(&self) -> u64 {
        self.seed
    }

    /// The fault (if any) suffered by one wire query, identified by
    /// its stable coordinates: prober key, serving PoP, transport
    /// (`udp`), send time in sim-milliseconds, and DNS query ID.
    /// Outage windows dominate — during one, *every* query to the PoP
    /// is lost.
    pub fn query_fault(
        &self,
        prober: u64,
        pop: usize,
        udp: bool,
        t_millis: u64,
        id: u16,
    ) -> Option<QueryFault> {
        if self.is_off() {
            return None;
        }
        if self.pop_in_outage(pop, t_millis) {
            return Some(QueryFault::Outage);
        }
        let r = &self.rates;
        let u = unit(
            SeedMixer::new(self.seed)
                .mix_str("query")
                .mix(prober)
                .mix(pop as u64)
                .mix(t_millis)
                .mix(u64::from(id))
                .mix(u64::from(udp))
                .finish(),
        );
        let mut edge = r.loss;
        if u < edge {
            return Some(QueryFault::Loss);
        }
        edge += r.servfail;
        if u < edge {
            return Some(QueryFault::ServFail);
        }
        edge += r.refused;
        if u < edge {
            return Some(QueryFault::Refused);
        }
        edge += r.latency;
        if u < edge {
            return Some(QueryFault::Latency);
        }
        edge += if udp { r.truncate } else { r.tcp_reset };
        if u < edge {
            return Some(if udp {
                QueryFault::Truncate
            } else {
                QueryFault::TcpReset
            });
        }
        None
    }

    /// Whether `pop` sits inside its seeded maintenance window at
    /// `t_millis`. A PoP either has one window per run or none.
    pub fn pop_in_outage(&self, pop: usize, t_millis: u64) -> bool {
        if self.rates.outage_prob == 0.0 {
            return false;
        }
        let h = SeedMixer::new(self.seed).mix_str("outage").mix(pop as u64);
        if unit(h.finish()) >= self.rates.outage_prob {
            return false;
        }
        let start = OUTAGE_EARLIEST_MS
            + (unit(h.mix_str("start").finish()) * OUTAGE_SPREAD_MS as f64) as u64;
        let dur = OUTAGE_MIN_MS + (unit(h.mix_str("dur").finish()) * OUTAGE_VAR_MS as f64) as u64;
        (start..start + dur).contains(&t_millis)
    }

    /// The maintenance window for `pop`, if the plan gives it one —
    /// `(start_ms, end_ms)` in sim time.
    pub fn outage_window(&self, pop: usize) -> Option<(u64, u64)> {
        if self.rates.outage_prob == 0.0 {
            return None;
        }
        let h = SeedMixer::new(self.seed).mix_str("outage").mix(pop as u64);
        if unit(h.finish()) >= self.rates.outage_prob {
            return None;
        }
        let start = OUTAGE_EARLIEST_MS
            + (unit(h.mix_str("start").finish()) * OUTAGE_SPREAD_MS as f64) as u64;
        let dur = OUTAGE_MIN_MS + (unit(h.mix_str("dur").finish()) * OUTAGE_VAR_MS as f64) as u64;
        Some((start, start + dur))
    }

    /// Whether the anycast catchment for vantage `key` flaps away from
    /// its home PoP during the 10-minute window containing `t_millis`.
    pub fn flap(&self, key: u64, t_millis: u64) -> bool {
        if self.rates.flap == 0.0 {
            return false;
        }
        let window = t_millis / FLAP_WINDOW_MS;
        let u = unit(
            SeedMixer::new(self.seed)
                .mix_str("flap")
                .mix(key)
                .mix(window)
                .finish(),
        );
        u < self.rates.flap
    }
}

/// Server-side injection counters, registered only when a plan is
/// enabled so fault-free metrics snapshots stay byte-identical to the
/// pre-fault pipeline. One counter per [`QueryFault`] class under
/// `faults.injected.*`, plus the routing-level `faults.flaps`.
#[derive(Debug, Clone)]
pub struct FaultMetrics {
    loss: Arc<Counter>,
    servfail: Arc<Counter>,
    refused: Arc<Counter>,
    truncate: Arc<Counter>,
    latency: Arc<Counter>,
    tcp_reset: Arc<Counter>,
    outage: Arc<Counter>,
    /// Catchment flaps are routing events, not query faults — they are
    /// deliberately outside the `faults.injected.` conservation sum.
    pub flaps: Arc<Counter>,
}

impl FaultMetrics {
    /// Creates (or re-resolves) the counters on `m`.
    pub fn register(m: &MetricsRegistry) -> FaultMetrics {
        FaultMetrics {
            loss: m.counter("faults.injected.loss"),
            servfail: m.counter("faults.injected.servfail"),
            refused: m.counter("faults.injected.refused"),
            truncate: m.counter("faults.injected.truncate"),
            latency: m.counter("faults.injected.latency"),
            tcp_reset: m.counter("faults.injected.tcp_reset"),
            outage: m.counter("faults.injected.outage"),
            flaps: m.counter("faults.flaps"),
        }
    }

    /// Bumps the counter for one injected fault.
    pub fn count_injected(&self, fault: QueryFault) {
        match fault {
            QueryFault::Loss => self.loss.inc(),
            QueryFault::ServFail => self.servfail.inc(),
            QueryFault::Refused => self.refused.inc(),
            QueryFault::Truncate => self.truncate.inc(),
            QueryFault::Latency => self.latency.inc(),
            QueryFault::TcpReset => self.tcp_reset.inc(),
            QueryFault::Outage => self.outage.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parse_round_trips() {
        for p in FaultProfile::ALL {
            assert_eq!(p.as_str().parse::<FaultProfile>().unwrap(), p);
        }
        assert!("chaotic-evil".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn off_plan_injects_nothing() {
        let plan = FaultPlan::off();
        assert!(plan.is_off());
        for t in [0u64, 1_000, 3_600_000, 40 * 3_600_000] {
            for id in [0u16, 1, 0xFFFF] {
                assert_eq!(plan.query_fault(1, 0, true, t, id), None);
                assert_eq!(plan.query_fault(1, 0, false, t, id), None);
            }
            assert!(!plan.pop_in_outage(3, t));
            assert!(!plan.flap(9, t));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(2021, &FaultConfig::profile(FaultProfile::Lossy, 7));
        let b = FaultPlan::new(2021, &FaultConfig::profile(FaultProfile::Lossy, 7));
        let c = FaultPlan::new(2021, &FaultConfig::profile(FaultProfile::Lossy, 8));
        let mut differs = false;
        for q in 0..5_000u64 {
            let (prober, pop, t, id) = (q % 31, (q % 9) as usize, q * 137, (q % 65_536) as u16);
            let fa = a.query_fault(prober, pop, q % 2 == 0, t, id);
            assert_eq!(fa, b.query_fault(prober, pop, q % 2 == 0, t, id));
            differs |= fa != c.query_fault(prober, pop, q % 2 == 0, t, id);
        }
        assert!(differs, "fault seed must matter");
    }

    #[test]
    fn lossy_rates_are_roughly_calibrated() {
        let plan = FaultPlan::new(11, &FaultConfig::profile(FaultProfile::Lossy, 1));
        let n = 40_000u64;
        let mut faulted = 0u64;
        let mut truncated = 0u64;
        let mut resets = 0u64;
        for q in 0..n {
            // PoP 0 may be in outage for some t; use t before any window.
            match plan.query_fault(q, 0, q % 2 == 0, 1_000 + q, (q % 65_536) as u16) {
                Some(QueryFault::Truncate) => {
                    faulted += 1;
                    truncated += 1;
                }
                Some(QueryFault::TcpReset) => {
                    faulted += 1;
                    resets += 1;
                }
                Some(_) => faulted += 1,
                None => {}
            }
        }
        let rate = faulted as f64 / n as f64;
        // Half the draws are UDP (~34.5% fault rate incl. truncation),
        // half TCP (~11.5%); overall ~23%.
        assert!((0.15..0.32).contains(&rate), "overall fault rate {rate}");
        assert!(truncated > 0, "UDP truncation must occur");
        assert!(resets > 0, "TCP resets must occur");
    }

    #[test]
    fn truncation_is_udp_only_and_resets_tcp_only() {
        let plan = FaultPlan::new(5, &FaultConfig::profile(FaultProfile::Lossy, 2));
        for q in 0..20_000u64 {
            let udp = plan.query_fault(q, 1, true, 2_000 + q, (q % 65_536) as u16);
            let tcp = plan.query_fault(q, 1, false, 2_000 + q, (q % 65_536) as u16);
            assert_ne!(udp, Some(QueryFault::TcpReset));
            assert_ne!(tcp, Some(QueryFault::Truncate));
        }
    }

    #[test]
    fn outage_windows_fall_inside_probing_and_dominate() {
        let plan = FaultPlan::new(3, &FaultConfig::profile(FaultProfile::PopChurn, 4));
        let mut any = false;
        for pop in 0..45usize {
            if let Some((start, end)) = plan.outage_window(pop) {
                any = true;
                assert!(start >= OUTAGE_EARLIEST_MS);
                assert!(
                    end <= OUTAGE_EARLIEST_MS + OUTAGE_SPREAD_MS + OUTAGE_MIN_MS + OUTAGE_VAR_MS
                );
                assert!(end - start >= OUTAGE_MIN_MS);
                let mid = (start + end) / 2;
                assert!(plan.pop_in_outage(pop, mid));
                assert_eq!(
                    plan.query_fault(1, pop, false, mid, 7),
                    Some(QueryFault::Outage)
                );
                assert!(!plan.pop_in_outage(pop, start.saturating_sub(1)));
                assert!(!plan.pop_in_outage(pop, end));
            }
        }
        assert!(
            any,
            "pop-churn must schedule at least one outage across 45 PoPs"
        );
    }

    #[test]
    fn flaps_are_window_stable() {
        let plan = FaultPlan::new(8, &FaultConfig::profile(FaultProfile::PopChurn, 9));
        let mut flapped = 0u64;
        for w in 0..2_000u64 {
            let t = w * FLAP_WINDOW_MS;
            let f = plan.flap(42, t);
            // Stable anywhere inside the window.
            assert_eq!(f, plan.flap(42, t + FLAP_WINDOW_MS - 1));
            flapped += u64::from(f);
        }
        let rate = flapped as f64 / 2_000.0;
        assert!((0.04..0.13).contains(&rate), "flap rate {rate}");
    }

    #[test]
    fn fault_metrics_reconcile_by_class() {
        let m = MetricsRegistry::new();
        let fm = FaultMetrics::register(&m);
        let plan = FaultPlan::new(2, &FaultConfig::profile(FaultProfile::Lossy, 3));
        let mut injected = 0u64;
        for q in 0..10_000u64 {
            if let Some(f) = plan.query_fault(q, (q % 7) as usize, q % 3 == 0, q * 31, 1) {
                fm.count_injected(f);
                injected += 1;
            }
        }
        let snap = m.snapshot();
        assert_eq!(snap.sum_counters("faults.injected."), injected);
        assert_eq!(snap.counter("faults.flaps"), 0);
    }
}
