//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (`Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Regenerates until `f` accepts (bounded; `whence` names the
    /// filter in the give-up panic).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy for heterogeneous storage
    /// (`prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// Numeric ranges are strategies over their element type.
macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Tuples of strategies generate element-wise, in declaration order (the
// order matters for cross-run determinism).
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
