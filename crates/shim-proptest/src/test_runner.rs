//! Case execution: config, RNG, and the run loop behind `proptest!`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!`/filter rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is skipped, not failed.
    Reject(String),
    /// A property was violated.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// The generator handed to strategies. Seeded from the test name, so
/// every run of a given test sees the same value sequence.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// FNV-1a, used to turn a test path into a stable seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `cfg.cases` successes; panics on the first failure
/// with enough context to replay it.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let seed = fnv1a(name);
    let mut rng = TestRng::from_seed(seed);
    let mut passed: u32 = 0;
    let mut rejects: u32 = 0;
    let mut attempts: u32 = 0;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > cfg.max_global_rejects {
                    panic!("proptest '{name}': too many rejections ({rejects}); last: {why}");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at attempt #{attempts} \
                     (seed {seed:#x}, {passed} cases passed):\n{msg}"
                );
            }
        }
        attempts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_per_name() {
        let mut a = TestRng::from_seed(fnv1a("x::y"));
        let mut b = TestRng::from_seed(fnv1a("x::y"));
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_seed(fnv1a("x::z"));
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn run_cases_counts_only_successes() {
        let cfg = ProptestConfig::with_cases(10);
        let mut calls = 0;
        run_cases(&cfg, "t", |_rng| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::reject("odd"))
            } else {
                Ok(())
            }
        });
        assert_eq!(calls, 19);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_cases_panics_on_failure() {
        run_cases(&ProptestConfig::with_cases(5), "t", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
