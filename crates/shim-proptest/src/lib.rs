//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the subset of proptest the test suite uses: the `proptest!`
//! macro with per-test strategy bindings and `#![proptest_config]`,
//! `Strategy`/`prop_map`/`prop_oneof!`, `any::<T>()`, collection/option
//! strategies, `prop::sample::Index`, and a small `string_regex`
//! generator. Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! * **Deterministic seeds.** Each test derives its RNG seed from the
//!   fully-qualified test name, so runs are reproducible and
//!   failure-stable across machines (upstream defaults to OS entropy).
//! * `string_regex` supports the char-class + quantifier subset the
//!   suite actually uses, not full regex syntax.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$ty>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.gen::<u64>())
        }
    }

    /// Strategy producing arbitrary values of `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of`: `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod sample {
    /// An index into a not-yet-known-length collection
    /// (`prop::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects onto `0..len`. Panics if `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt;

    /// Error from an unsupported or malformed pattern.
    #[derive(Debug)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One pattern element: a set of candidate chars and a repetition
    /// bound (inclusive).
    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    pub struct RegexGeneratorStrategy {
        elements: Vec<Element>,
    }

    /// Builds a string strategy from a simplified regex: literal chars,
    /// `[...]` classes with ranges, and `{n}`/`{n,m}`/`?`/`*`/`+`
    /// quantifiers (`*`/`+` capped at 8 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => {
                    let lit = chars
                        .next()
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    vec![lit]
                }
                '.' => (' '..='~').collect(),
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(Error(format!("unsupported metacharacter '{c}'")));
                }
                lit => vec![lit],
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            elements.push(Element {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { elements })
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Vec<char>, Error> {
        let mut set = Vec::new();
        loop {
            let c = chars
                .next()
                .ok_or_else(|| Error("unterminated char class".into()))?;
            match c {
                ']' => break,
                '\\' => {
                    let lit = chars
                        .next()
                        .ok_or_else(|| Error("dangling escape in class".into()))?;
                    set.push(lit);
                }
                lo => {
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // the '-'
                        match ahead.peek() {
                            Some(&']') | None => set.push(lo), // trailing '-' is literal
                            Some(&hi) => {
                                chars.next(); // '-'
                                chars.next(); // hi
                                if hi < lo {
                                    return Err(Error(format!("bad range {lo}-{hi}")));
                                }
                                set.extend(lo..=hi);
                            }
                        }
                    } else {
                        set.push(lo);
                    }
                }
            }
        }
        if set.is_empty() {
            return Err(Error("empty char class".into()));
        }
        Ok(set)
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(usize, usize), Error> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        let (min, max) = match body.split_once(',') {
                            Some((a, b)) => (
                                a.parse().map_err(|_| Error("bad quantifier".into()))?,
                                b.parse().map_err(|_| Error("bad quantifier".into()))?,
                            ),
                            None => {
                                let n = body.parse().map_err(|_| Error("bad quantifier".into()))?;
                                (n, n)
                            }
                        };
                        if max < min {
                            return Err(Error("quantifier max < min".into()));
                        }
                        return Ok((min, max));
                    }
                    body.push(c);
                }
                Err(Error("unterminated quantifier".into()))
            }
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for el in &self.elements {
                let n = rng.gen_range(el.min..=el.max);
                for _ in 0..n {
                    out.push(el.chars[rng.gen_range(0..el.chars.len())]);
                }
            }
            out
        }
    }
}

/// The `prop::` namespace exposed by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                            l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                            l, r, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: {:?}", l),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __proptest_cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                &__proptest_cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $crate::__proptest_bindings!(__proptest_rng; $($params)*);
                    let __proptest_result: $crate::test_runner::TestCaseResult =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    __proptest_result
                },
            );
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}
