//! Offline stand-in for `crossbeam` (scoped-thread API subset).
//!
//! Since Rust 1.63 the standard library has `std::thread::scope`, which
//! covers everything the probe runners need from
//! `crossbeam::thread::scope`; this shim adapts the crossbeam call shape
//! (closures receive the scope handle, `scope` returns a `Result`) onto
//! the std implementation.

pub mod thread {
    /// Scope handle passed to spawned closures (mirrors
    /// `crossbeam::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing local state across
    /// spawned threads is safe; all threads are joined before returning.
    ///
    /// Unlike crossbeam this propagates panics from unjoined threads as
    /// a panic rather than an `Err`, which is indistinguishable for the
    /// `.expect()` call sites in this workspace.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
