//! End-to-end technique benches: the measurement pipelines themselves.

use clientmap_cacheprobe::{run_technique, ProbeConfig};
use clientmap_chromium::{collisions, crawl, ChromiumClassifier};
use clientmap_net::Prefix;
use clientmap_sim::{Sim, SimTime};
use clientmap_world::{World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_techniques(c: &mut Criterion) {
    // World + sim construction.
    c.bench_function("world_generate_tiny", |b| {
        b.iter(|| {
            let w = World::generate(WorldConfig::tiny(1));
            black_box(w.slash24s.len())
        })
    });

    c.bench_function("sim_build_tiny", |b| {
        let world = World::generate(WorldConfig::tiny(2));
        b.iter_batched(
            || World::generate(WorldConfig::tiny(2)),
            |w| black_box(Sim::new(w)),
            criterion::BatchSize::LargeInput,
        );
        black_box(world.slash24s.len());
    });

    // Cache probing end-to-end (short window).
    c.bench_function("cacheprobe_run_tiny", |b| {
        b.iter_batched(
            || {
                let world = World::generate(WorldConfig::tiny(3));
                let universe: Vec<Prefix> = world.blocks.iter().map(|bl| bl.prefix).collect();
                (Sim::new(world), universe)
            },
            |(mut sim, universe)| {
                let mut cfg = ProbeConfig::test_scale();
                cfg.duration_hours = 0.5;
                cfg.calibration_sample = 100;
                black_box(run_technique(&mut sim, &cfg, &universe).probes_sent)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // DNS logs: capture + crawl.
    c.bench_function("chromium_crawl_tiny", |b| {
        let sim = Sim::new(World::generate(WorldConfig::tiny(4)));
        let traces = sim.capture_root_traces(SimTime::ZERO, 2, 0.005);
        b.iter(|| {
            let r = crawl(black_box(&traces), &ChromiumClassifier::default());
            black_box(r.resolvers.len())
        })
    });

    // The §3.2 collision simulation.
    c.bench_function("chromium_collision_sim", |b| {
        b.iter(|| black_box(collisions::simulate_max_multiplicity(200_000, 5)))
    });

    c.bench_function("chromium_collision_analytic", |b| {
        b.iter(|| black_box(collisions::expected_max_multiplicity(1.0e9, 0.99)))
    });
}

criterion_group! {
    name = techniques;
    // End-to-end runs are seconds each: keep sampling light.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(20))
        .warm_up_time(std::time::Duration::from_secs(2));
    targets = bench_techniques
}
criterion_main!(techniques);
