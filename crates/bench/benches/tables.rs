//! One bench group per paper table: each measures regenerating that
//! table's numbers from a cached pipeline run (`repro` prints them).

use clientmap_analysis::overlap::{as_matrix, prefix_matrix, volume_matrix};
use clientmap_analysis::{domain_overlap, scope_stability_table};
use clientmap_bench::tiny_run;
use clientmap_datasets::DatasetId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PREFIX_IDS: [DatasetId; 5] = [
    DatasetId::CacheProbing,
    DatasetId::DnsLogs,
    DatasetId::Union,
    DatasetId::MicrosoftClients,
    DatasetId::MicrosoftResolvers,
];

const AS_IDS: [DatasetId; 6] = [
    DatasetId::CacheProbing,
    DatasetId::DnsLogs,
    DatasetId::Union,
    DatasetId::Apnic,
    DatasetId::MicrosoftClients,
    DatasetId::MicrosoftResolvers,
];

fn bench_tables(c: &mut Criterion) {
    let out = tiny_run();

    c.bench_function("table1_prefix_overlap", |b| {
        b.iter(|| {
            let m = prefix_matrix(black_box(&out.bundle), &PREFIX_IDS);
            black_box(m.cells.len())
        })
    });

    c.bench_function("table2_scope_stability", |b| {
        b.iter(|| {
            let rows = scope_stability_table(black_box(&out.cache_probe));
            black_box(rows.len())
        })
    });

    c.bench_function("table3_as_overlap", |b| {
        b.iter(|| {
            let m = as_matrix(black_box(&out.bundle), &AS_IDS);
            black_box(m.cells.len())
        })
    });

    c.bench_function("table4_volume_coverage", |b| {
        b.iter(|| {
            let m = volume_matrix(black_box(&out.bundle), &AS_IDS, &AS_IDS);
            black_box(m.pct.len())
        })
    });

    c.bench_function("table5_per_domain", |b| {
        b.iter(|| {
            let d = domain_overlap(black_box(&out.cache_probe), &out.sim.world().rib);
            black_box(d.domains.len())
        })
    });
}

criterion_group!(tables, bench_tables);
criterion_main!(tables);
