//! One bench per paper figure: regenerating each figure's data series.

use clientmap_analysis::{
    country_coverage, fraction_active_cdf, pop_density, relative_volume_cdf,
    relative_volume_differences, service_radius_cdfs,
};
use clientmap_bench::tiny_run;
use clientmap_datasets::DatasetId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let out = tiny_run();

    c.bench_function("fig1_pop_density", |b| {
        b.iter(|| black_box(pop_density(&out.cache_probe).len()))
    });

    c.bench_function("fig2_service_radius", |b| {
        b.iter(|| {
            let cdfs = service_radius_cdfs(&out.cache_probe);
            black_box(cdfs.len())
        })
    });

    c.bench_function("fig3_country_coverage", |b| {
        b.iter(|| {
            let cov = country_coverage(
                out.sim.world(),
                &out.bundle.apnic,
                &out.bundle.cache_probing_as,
            );
            black_box(cov.len())
        })
    });

    c.bench_function("fig4_fraction_active", |b| {
        b.iter(|| {
            let (points, lower, upper) =
                fraction_active_cdf(&out.cache_probe, &out.sim.world().rib);
            black_box((points.len(), lower.len(), upper.len()))
        })
    });

    c.bench_function("fig6_relative_volume", |b| {
        b.iter(|| {
            let cdf = relative_volume_cdf(&out.bundle.as_view(DatasetId::DnsLogs));
            black_box(cdf.len())
        })
    });

    c.bench_function("fig7_volume_differences", |b| {
        b.iter(|| {
            let d = relative_volume_differences(
                &out.bundle.as_view(DatasetId::MicrosoftResolvers),
                &out.bundle.as_view(DatasetId::Apnic),
            );
            black_box(d.len())
        })
    });
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
