//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Timing captures the *cost* side of each ablation; the effect on
//! recall/coverage is reported by `repro ablations` (costs here, quality
//! there — both sides of each paper design decision).

use clientmap_cacheprobe::scopescan::scan_domain;
use clientmap_cacheprobe::vantage::discover;
use clientmap_cacheprobe::{probe, ProbeConfig};
use clientmap_dns::DomainName;
use clientmap_net::Prefix;
use clientmap_sim::{Sim, SimTime, Transport};
use clientmap_world::{World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (Sim, Vec<Prefix>) {
    let world = World::generate(WorldConfig::tiny(0xAB1A));
    let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
    (Sim::new(world), universe)
}

/// §3.1.1 "identifying candidate prefixes": authoritative pre-scan with
/// scope skipping vs the naive per-/24 walk.
fn bench_scope_reduction(c: &mut Criterion) {
    let (sim, universe) = setup();
    let domain: DomainName = "www.google.com".parse().unwrap();

    let mut g = c.benchmark_group("ablation_scope_reduction");
    g.bench_function("with_scope_skipping", |b| {
        b.iter(|| black_box(scan_domain(&sim, &domain, &universe, SimTime::ZERO).queries_spent))
    });
    g.bench_function("naive_per_slash24", |b| {
        b.iter(|| {
            // The unoptimised scan: one authoritative query per /24.
            let mut queries = 0u64;
            for block in &universe {
                for sub in block.slash24s() {
                    let _ = black_box(sim.authoritative_scan(&domain, sub, SimTime::ZERO));
                    queries += 1;
                }
            }
            black_box(queries)
        })
    });
    g.finish();
}

/// §3.1.1 redundancy: 1 vs 5 queries per ⟨PoP, prefix, domain⟩.
fn bench_redundancy(c: &mut Criterion) {
    let (mut sim, universe) = setup();
    let bound = discover(&mut sim, SimTime::ZERO);
    let b0 = bound[0];
    let domain: DomainName = "www.google.com".parse().unwrap();
    let scopes: Vec<Prefix> = universe
        .iter()
        .take(200)
        .map(|b| b.supernet(20).unwrap_or(*b))
        .collect();

    let mut g = c.benchmark_group("ablation_redundancy");
    for redundancy in [1u32, 5] {
        let mut cfg = ProbeConfig::test_scale();
        cfg.redundancy = redundancy;
        g.bench_function(format!("redundancy_{redundancy}"), |bch| {
            bch.iter(|| {
                let mut hits = 0u32;
                for (i, s) in scopes.iter().enumerate() {
                    let t = SimTime::from_hours(10) + SimTime::from_millis(i as u64 * 25);
                    if matches!(
                        probe::probe_scope(&mut sim, &b0, &domain, *s, &cfg, t),
                        clientmap_sim::ProbeOutcome::Hit { .. }
                    ) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

/// §3.1.1 transport: TCP (the paper's choice) vs UDP under the rate
/// limit. UDP drops show up as wasted work.
fn bench_transport(c: &mut Criterion) {
    let (mut sim, universe) = setup();
    let bound = discover(&mut sim, SimTime::ZERO);
    let b0 = bound[0];
    let domain: DomainName = "www.google.com".parse().unwrap();
    let scopes: Vec<Prefix> = universe
        .iter()
        .take(200)
        .map(|b| b.supernet(20).unwrap_or(*b))
        .collect();

    let mut g = c.benchmark_group("ablation_tcp_udp");
    for (label, transport) in [("tcp", Transport::Tcp), ("udp", Transport::Udp)] {
        let mut cfg = ProbeConfig::test_scale();
        cfg.transport = transport;
        g.bench_function(label, |bch| {
            bch.iter(|| {
                let mut answered = 0u32;
                for (i, s) in scopes.iter().enumerate() {
                    // Paper-rate burst: 50/s → one every 20 ms.
                    let t = SimTime::from_hours(11) + SimTime::from_millis(i as u64 * 20);
                    if !matches!(
                        probe::probe_scope(&mut sim, &b0, &domain, *s, &cfg, t),
                        clientmap_sim::ProbeOutcome::Dropped
                    ) {
                        answered += 1;
                    }
                }
                black_box(answered)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_scope_reduction,
    bench_redundancy,
    bench_transport
);
criterion_main!(ablations);
