//! Substrate microbenches: the hot paths every probe goes through.

use clientmap_dns::{wire, CacheKey, EcsCache, Message, Question, Record, RrType};
use clientmap_net::{Asn, Prefix, PrefixSet, PrefixTrie, Rib};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn deterministic_prefixes(n: usize) -> Vec<Prefix> {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    (0..n)
        .map(|_| {
            state = clientmap_net::splitmix64(state);
            let len = 16 + (state % 9) as u8; // 16..=24
            Prefix::new((state >> 16) as u32, len).expect("valid length")
        })
        .collect()
}

fn bench_substrate(c: &mut Criterion) {
    // Wire codec: the exact packet shape a probe sends.
    let probe = Message::query(0x1234, Question::a("www.google.com").unwrap())
        .with_recursion_desired(false)
        .with_ecs("203.0.113.0/24".parse().unwrap());
    let encoded = wire::encode(&probe).unwrap();

    c.bench_function("wire_encode_probe", |b| {
        b.iter(|| black_box(wire::encode(black_box(&probe)).unwrap().len()))
    });

    c.bench_function("wire_decode_probe", |b| {
        b.iter(|| black_box(wire::decode(black_box(&encoded)).unwrap()))
    });

    // Trie LPM over a realistic table.
    let prefixes = deterministic_prefixes(100_000);
    let mut trie = PrefixTrie::new();
    for (i, p) in prefixes.iter().enumerate() {
        trie.insert(*p, i as u32);
    }
    c.bench_function("trie_lpm_100k", |b| {
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(0x01010101);
            black_box(trie.longest_match_addr(black_box(addr)))
        })
    });

    // RIB origin lookups.
    let mut rib = Rib::new();
    for (i, p) in prefixes.iter().enumerate() {
        rib.announce(*p, Asn(i as u32 % 5000));
    }
    c.bench_function("rib_origin_100k", |b| {
        let mut addr = 7u32;
        b.iter(|| {
            addr = addr.wrapping_add(0x00010101);
            black_box(rib.origin_of_addr(black_box(addr)))
        })
    });

    // PrefixSet: the Table 1 workhorse.
    let set_a = PrefixSet::from_prefixes(prefixes.iter().take(50_000).copied());
    let set_b = PrefixSet::from_prefixes(prefixes.iter().skip(25_000).take(50_000).copied());
    c.bench_function("prefixset_intersection_50k", |b| {
        b.iter(|| black_box(set_a.intersection_slash24s(black_box(&set_b))))
    });

    // ECS cache insert + lookup.
    c.bench_function("ecs_cache_insert_lookup", |b| {
        let key = CacheKey::new("www.google.com".parse().unwrap(), RrType::A);
        let rec = Record::a("www.google.com".parse().unwrap(), 300, 1);
        b.iter_batched(
            || EcsCache::new(4096),
            |mut cache| {
                for i in 0u32..256 {
                    let scope = Prefix::new(i << 20, 16).unwrap();
                    cache.insert(key.clone(), scope, vec![rec.clone()], 300, 0);
                }
                let mut hits = 0;
                for i in 0u32..256 {
                    let q = Prefix::new((i << 20) | 0x100, 24).unwrap();
                    if cache.lookup(&key, q, 100).is_hit() {
                        hits += 1;
                    }
                }
                black_box(hits)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(substrate, bench_substrate);
criterion_main!(substrate);
