//! Hot-path microbenches for the PR 2 fast lanes: the zero-allocation
//! probe loop vs the allocating slow path, and the borrowed wire views
//! vs full encode/decode. The paired benches share inputs so the
//! reported deltas are the cost of allocation + parsing alone.

use clientmap_cacheprobe::probe::{probe_scope_fast, probe_scope_with, select_domains};
use clientmap_cacheprobe::vantage::discover;
use clientmap_cacheprobe::ProbeConfig;
use clientmap_dns::{wire, Message, Question};
use clientmap_net::Prefix;
use clientmap_sim::{GpdnsSession, Sim, SimTime};
use clientmap_world::{World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// End-to-end probe: template render → simulated Google front end →
/// response classification, on both lanes. Scopes cycle through the
/// world's routed blocks and timestamps advance monotonically, so the
/// two lanes see identical query sequences.
fn bench_probe_hot_path(c: &mut Criterion) {
    let mut sim = Sim::new(World::generate(WorldConfig::tiny(11)));
    let bound = discover(&mut sim, SimTime::ZERO)[0];
    let cfg = ProbeConfig::test_scale();
    let domain = select_domains(&sim, &cfg)
        .into_iter()
        .next()
        .expect("catalog has probeable domains");
    let template = wire::ProbeQueryTemplate::new(&domain);
    let scopes: Vec<Prefix> = sim
        .world()
        .blocks
        .iter()
        .map(|b| b.prefix)
        .take(64)
        .collect();
    let view = sim.view();
    let t0 = SimTime::from_hours(8);

    let mut session = GpdnsSession::new();
    let mut query_buf = Vec::with_capacity(128);
    let mut resp_buf = Vec::with_capacity(512);
    let mut i = 0u64;
    c.bench_function("probe_hot_path", |b| {
        b.iter(|| {
            let scope = scopes[i as usize % scopes.len()];
            i += 1;
            black_box(probe_scope_fast(
                &view,
                &mut session,
                &bound,
                &template,
                scope,
                &cfg,
                t0 + SimTime::from_millis(i * 10),
                &mut query_buf,
                &mut resp_buf,
            ))
        })
    });

    let mut session = GpdnsSession::new();
    let mut i = 0u64;
    c.bench_function("probe_slow_path", |b| {
        b.iter(|| {
            let scope = scopes[i as usize % scopes.len()];
            i += 1;
            black_box(probe_scope_with(
                &view,
                &mut session,
                &bound,
                &domain,
                scope,
                &cfg,
                t0 + SimTime::from_millis(i * 10),
            ))
        })
    });
}

/// Query + response handling at the wire layer: allocation-free
/// template render + borrowed views vs allocating encode/decode of the
/// same packets.
fn bench_wire_roundtrip(c: &mut Criterion) {
    let domain: clientmap_dns::DomainName = "www.google.com".parse().unwrap();
    let scope: Prefix = "203.0.113.0/24".parse().unwrap();
    let probe = Message::query(0x1234, Question::a("www.google.com").unwrap())
        .with_recursion_desired(false)
        .with_ecs(scope);
    let template = wire::ProbeQueryTemplate::new(&domain);

    let mut buf = Vec::with_capacity(128);
    c.bench_function("wire_roundtrip_views", |b| {
        b.iter(|| {
            template.render(black_box(0x1234), black_box(scope), &mut buf);
            let v = wire::query_view(black_box(&buf)).expect("template renders valid query");
            black_box((v.id, v.ecs.map(|e| e.source)))
        })
    });

    c.bench_function("wire_roundtrip_alloc", |b| {
        b.iter(|| {
            let bytes = wire::encode(black_box(&probe)).unwrap();
            let m = wire::decode(black_box(&bytes)).unwrap();
            black_box((m.id, m.ecs().map(|e| e.source)))
        })
    });
}

criterion_group!(hotpath, bench_probe_hot_path, bench_wire_roundtrip);
criterion_main!(hotpath);
