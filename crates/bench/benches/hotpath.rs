//! Hot-path microbenches for the probe fast lanes: the zero-allocation
//! scalar loop vs the allocating slow path, the batched serve kernel vs
//! both, and the borrowed wire views vs full encode/decode. The paired
//! benches share inputs so the reported deltas are the cost of
//! allocation + parsing + per-probe routing alone.
//!
//! The batched bench doubles as an allocation regression gate: before
//! timing, a counted steady-state pass through the kernel must perform
//! zero heap allocations, or the harness aborts.

use clientmap_cacheprobe::probe::{probe_scope_fast, probe_scope_with, select_domains};
use clientmap_cacheprobe::vantage::discover;
use clientmap_cacheprobe::ProbeConfig;
use clientmap_dns::{wire, Message, Question};
use clientmap_net::Prefix;
use clientmap_sim::{GpdnsSession, ProbeOutcome, ScopeLane, Sim, SimTime};
use clientmap_world::{World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting allocation events — the
/// regression gate for the batched kernel's steady state.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// End-to-end probe: template render → simulated Google front end →
/// response classification, on both lanes. Scopes cycle through the
/// world's routed blocks and timestamps advance monotonically, so the
/// two lanes see identical query sequences.
fn bench_probe_hot_path(c: &mut Criterion) {
    let mut sim = Sim::new(World::generate(WorldConfig::tiny(11)));
    let bound = discover(&mut sim, SimTime::ZERO)[0];
    let cfg = ProbeConfig::test_scale();
    let domain = select_domains(&sim, &cfg)
        .into_iter()
        .next()
        .expect("catalog has probeable domains");
    let template = wire::ProbeQueryTemplate::new(&domain);
    let scopes: Vec<Prefix> = sim
        .world()
        .blocks
        .iter()
        .map(|b| b.prefix)
        .take(64)
        .collect();
    let view = sim.view();
    let t0 = SimTime::from_hours(8);

    let mut session = GpdnsSession::new();
    let mut query_buf = Vec::with_capacity(128);
    let mut resp_buf = Vec::with_capacity(512);
    let mut i = 0u64;
    c.bench_function("probe_hot_path", |b| {
        b.iter(|| {
            let scope = scopes[i as usize % scopes.len()];
            i += 1;
            black_box(probe_scope_fast(
                &view,
                &mut session,
                &bound,
                &template,
                scope,
                &cfg,
                t0 + SimTime::from_millis(i * 10),
                &mut query_buf,
                &mut resp_buf,
            ))
        })
    });

    let mut session = GpdnsSession::new();
    let mut i = 0u64;
    c.bench_function("probe_slow_path", |b| {
        b.iter(|| {
            let scope = scopes[i as usize % scopes.len()];
            i += 1;
            black_box(probe_scope_with(
                &view,
                &mut session,
                &bound,
                &domain,
                scope,
                &cfg,
                t0 + SimTime::from_millis(i * 10),
            ))
        })
    });
}

/// The batched serve kernel over the same world: routing, admission,
/// and cache lanes hoisted once, then whole 64-probe arenas served per
/// iteration. Divide the per-iteration time by 64 to compare with the
/// per-probe lanes above. Gated: a counted steady-state pass must not
/// allocate before the timed bench may run.
fn bench_probe_hot_path_batched(c: &mut Criterion) {
    let mut sim = Sim::new(World::generate(WorldConfig::tiny(11)));
    let bound = discover(&mut sim, SimTime::ZERO)[0];
    let cfg = ProbeConfig::test_scale();
    let domain = select_domains(&sim, &cfg)
        .into_iter()
        .next()
        .expect("catalog has probeable domains");
    let template = wire::ProbeQueryTemplate::new(&domain);
    let scopes: Vec<Prefix> = sim
        .world()
        .blocks
        .iter()
        .map(|b| b.prefix)
        .take(64)
        .collect();
    let view = sim.view();
    let t0 = SimTime::from_hours(8);

    let session = GpdnsSession::new();
    let mut conn = view
        .gpdns
        .open_batch(
            view.catchments,
            &session,
            bound.prober_key(),
            bound.coord(),
            cfg.transport,
        )
        .expect("fault-free core opens a batch connection");
    let dom = view
        .gpdns
        .batch_domain(&conn, template.qname_wire())
        .expect("selected domain is probeable");
    let lanes: Vec<ScopeLane> = scopes
        .iter()
        .map(|&s| view.gpdns.scope_lane(view.auth, &dom, s))
        .collect();
    let mut batch = wire::ProbeBatch::new();
    let mut events: Vec<(u32, SimTime)> = Vec::with_capacity(scopes.len());
    let mut out: Vec<ProbeOutcome> = Vec::with_capacity(scopes.len());

    let fill = |batch: &mut wire::ProbeBatch, events: &mut Vec<(u32, SimTime)>, round: u64| {
        batch.clear();
        events.clear();
        for (i, &scope) in scopes.iter().enumerate() {
            batch.push(&template, 0x1234, scope);
            events.push((
                i as u32,
                t0 + SimTime::from_millis(round * 60_000 + i as u64 * 10),
            ));
        }
    };

    // Warm-up (sizes the arena, creates the token bucket), then the
    // allocation regression gate over a counted steady-state pass.
    fill(&mut batch, &mut events, 0);
    assert!(view.gpdns.serve_batch(
        &mut conn,
        &dom,
        view.auth,
        &lanes,
        &batch,
        &events,
        cfg.redundancy,
        &mut out
    ));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 1..=4u64 {
        fill(&mut batch, &mut events, round);
        out.clear();
        assert!(view.gpdns.serve_batch(
            &mut conn,
            &dom,
            view.auth,
            &lanes,
            &batch,
            &events,
            cfg.redundancy,
            &mut out
        ));
    }
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "batched kernel allocated {allocated} time(s) in steady state — regression"
    );

    let mut round = 4u64;
    c.bench_function("probe_hot_path_batched_64", |b| {
        b.iter(|| {
            round += 1;
            fill(&mut batch, &mut events, round);
            out.clear();
            view.gpdns.serve_batch(
                &mut conn,
                &dom,
                view.auth,
                &lanes,
                &batch,
                &events,
                cfg.redundancy,
                &mut out,
            );
            black_box(out.len())
        })
    });
}

/// Query + response handling at the wire layer: allocation-free
/// template render + borrowed views vs allocating encode/decode of the
/// same packets.
fn bench_wire_roundtrip(c: &mut Criterion) {
    let domain: clientmap_dns::DomainName = "www.google.com".parse().unwrap();
    let scope: Prefix = "203.0.113.0/24".parse().unwrap();
    let probe = Message::query(0x1234, Question::a("www.google.com").unwrap())
        .with_recursion_desired(false)
        .with_ecs(scope);
    let template = wire::ProbeQueryTemplate::new(&domain);

    let mut buf = Vec::with_capacity(128);
    c.bench_function("wire_roundtrip_views", |b| {
        b.iter(|| {
            template.render(black_box(0x1234), black_box(scope), &mut buf);
            let v = wire::query_view(black_box(&buf)).expect("template renders valid query");
            black_box((v.id, v.ecs.map(|e| e.source)))
        })
    });

    c.bench_function("wire_roundtrip_alloc", |b| {
        b.iter(|| {
            let bytes = wire::encode(black_box(&probe)).unwrap();
            let m = wire::decode(black_box(&bytes)).unwrap();
            black_box((m.id, m.ecs().map(|e| e.source)))
        })
    });
}

criterion_group!(
    hotpath,
    bench_probe_hot_path,
    bench_probe_hot_path_batched,
    bench_wire_roundtrip
);
criterion_main!(hotpath);
