//! `repro` — regenerates every table and figure of the paper.
//!
//! ```sh
//! repro [--scale tiny|small|paper] [--seed N] [--faults PROFILE] [--fault-seed N]
//!       [--scalar-probing] [--metrics FILE] [section…]
//! repro [--scale …] [--seed N] [--faults …] bench [--json FILE]
//! ```
//!
//! Sections: `headline table1 table2 table3 table4 table5 fig1 fig2
//! fig3 fig4 fig5 fig6 fig7 collisions ablations metrics all` (default
//! `all`).
//!
//! `--metrics FILE` writes the run's full telemetry snapshot as JSON.
//! The snapshot is deterministic: two runs with the same scale and seed
//! produce byte-identical files.
//!
//! `bench` runs the pipeline once and reports per-stage wall times plus
//! the executor's thread count (set `CLIENTMAP_THREADS` to pin it) as
//! JSON, to stdout or to `--json FILE`.
//!
//! `--faults PROFILE` (`off|light|lossy|pop-churn`) runs the whole
//! pipeline under the named deterministic fault plan; the report grows
//! a Robustness section with the partial-result accounting.
//!
//! `--scalar-probing` forces the per-probe scalar lane instead of the
//! default batched kernels. Both lanes are byte-identical in every
//! report and metric (CI diffs them); the flag exists to prove exactly
//! that, and to time the lanes against each other.

use clientmap_cacheprobe::scopescan::scan_domain;
use clientmap_cacheprobe::vantage::discover;
use clientmap_cacheprobe::{probe, ProbeConfig};
use clientmap_chromium::collisions;
use clientmap_core::{Pipeline, PipelineConfig, PipelineOutput};
use clientmap_faults::{FaultConfig, FaultProfile};
use clientmap_net::Prefix;
use clientmap_sim::{Sim, SimTime, Transport};
use clientmap_world::World;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "tiny".to_string();
    let mut seed = 2021u64;
    let mut faults = FaultProfile::Off;
    let mut fault_seed = 0u64;
    let mut scalar_probing = false;
    let mut metrics_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut sections: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(2021);
                i += 2;
            }
            "--faults" => {
                let name = args.get(i + 1).cloned().unwrap_or_default();
                faults = match name.parse() {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("repro: bad --faults {name:?}: {e}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--fault-seed" => {
                fault_seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(0);
                i += 2;
            }
            "--scalar-probing" => {
                scalar_probing = true;
                i += 1;
            }
            "--metrics" => {
                metrics_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            s => {
                sections.push(s.to_string());
                i += 1;
            }
        }
    }
    if sections.is_empty() {
        sections.push("all".into());
    }

    let mut config = match scale.as_str() {
        "paper" => PipelineConfig::paper_scale(seed),
        "small" => PipelineConfig::small(seed),
        _ => PipelineConfig::tiny(seed),
    };
    config.faults = FaultConfig::profile(faults, fault_seed);
    if scalar_probing {
        config.probe.batched_probing = false;
    }

    if sections.iter().any(|s| s == "bench") {
        bench_run(&scale, seed, config, json_path.as_deref());
        return;
    }

    eprintln!(
        "repro: scale={scale} seed={seed} faults={} — running pipeline…",
        faults.as_str()
    );
    let start = std::time::Instant::now();
    let out = match Pipeline::run(config) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("repro: pipeline failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "repro: pipeline done in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    if let Some(path) = &metrics_path {
        let snap = out.metrics_snapshot();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => eprintln!("repro: wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("repro: cannot write metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let report = out.report();
    let want =
        |name: &str| sections.iter().any(|s| s == name) || sections.iter().any(|s| s == "all");

    if want("headline") {
        println!("{}", report.headlines());
    }
    if let Some(robustness) = report.robustness() {
        if want("robustness") || sections.iter().any(|s| s == "all") {
            println!("{robustness}");
        }
    }
    if want("table1") {
        println!("{}", report.table1());
    }
    if want("table2") {
        println!("{}", report.table2());
    }
    if want("table3") {
        println!("{}", report.table3());
    }
    if want("table4") {
        println!("{}", report.table4());
    }
    if want("table5") {
        println!("{}", report.table5());
    }
    if want("fig1") {
        println!("{}", report.figure1());
    }
    if want("fig2") {
        println!("{}", report.figure2());
    }
    if want("fig3") {
        println!("{}", report.figure3());
    }
    if want("fig4") {
        println!("{}", report.figure4());
    }
    if want("fig5") {
        println!("{}", report.figure5());
    }
    if want("fig6") {
        println!("{}", report.figure6());
    }
    if want("fig7") {
        println!("{}", report.figure7());
    }
    if want("collisions") {
        println!("{}", collisions_section());
    }
    if want("ranking") {
        println!("{}", ranking_section(&out));
    }
    if want("baseline") {
        println!("{}", baseline_section(&out));
    }
    if want("diurnal") {
        println!("{}", diurnal_section(&out));
    }
    if want("microsim") {
        println!("{}", microsim_section(&out));
    }
    if want("combine") {
        println!("{}", combine_section(&out));
    }
    if want("ablations") {
        println!("{}", ablations_section(&out));
    }
    if want("metrics") {
        println!(
            "{}",
            clientmap_analysis::telemetry::render_summary(&out.metrics_snapshot())
        );
    }
}

/// `repro bench`: three timed pipeline runs — cold, warm from the
/// cold run's snapshot (nothing expired: zero probe work replanned),
/// and warm at a 10% expiry budget — reported as JSON with per-stage
/// wall seconds, warm-planner accounting, and the executor's worker
/// count.
fn bench_run(scale: &str, seed: u64, config: PipelineConfig, json_path: Option<&str>) {
    let threads = clientmap_par::thread_count();
    let faults = config.faults;
    eprintln!(
        "repro bench: scale={scale} seed={seed} faults={} threads={threads} — cold run…",
        faults.profile.as_str()
    );
    let run = |config: PipelineConfig,
               prior: Option<clientmap_store::SweepSnapshot>,
               timings: &mut Vec<(String, f64)>| {
        let start = std::time::Instant::now();
        match Pipeline::run_warm_timed(config, prior, timings) {
            Ok(out) => (out, start.elapsed().as_secs_f64()),
            Err(e) => {
                eprintln!("repro bench: pipeline failed: {e}");
                std::process::exit(1);
            }
        }
    };

    let mut cold_timings: Vec<(String, f64)> = Vec::new();
    let (cold, cold_secs) = run(config.clone(), None, &mut cold_timings);
    eprintln!(
        "repro bench: cold run done in {cold_secs:.1}s ({} probes sent) — warm run…",
        cold.cache_probe.probes_sent
    );

    let mut warm_timings: Vec<(String, f64)> = Vec::new();
    let (warm, warm_secs) = run(config.clone(), Some(cold.sweep.clone()), &mut warm_timings);
    eprintln!("repro bench: warm run done in {warm_secs:.1}s — warm run at 10% expiry…");

    let mut expiry_config = config.clone();
    expiry_config.probe.expiry_budget = 0.10;
    let mut expiry_timings: Vec<(String, f64)> = Vec::new();
    let (expiry, expiry_secs) = run(expiry_config, Some(cold.sweep.clone()), &mut expiry_timings);
    eprintln!(
        "repro bench: 10%-expiry warm run done in {expiry_secs:.1}s — \
         cold/warm speedup {:.1}x",
        cold_secs / warm_secs.max(1e-9)
    );

    let stages_json = |timings: &[(String, f64)]| {
        let mut s = String::from("    \"stages\": {\n");
        for (i, (name, secs)) in timings.iter().enumerate() {
            let comma = if i + 1 < timings.len() { "," } else { "" };
            s.push_str(&format!("      \"{name}\": {secs:.3}{comma}\n"));
        }
        s.push_str("    }\n");
        s
    };
    let planner_json = |out: &PipelineOutput| {
        let snap = out.metrics_snapshot();
        let c = |name: &str| snap.counter(&format!("cacheprobe.planner.{name}"));
        format!(
            "    \"planner\": {{\n      \"universe\": {},\n      \"planned\": {},\n      \
             \"skipped_warm\": {},\n      \"units\": {},\n      \"new\": {},\n      \
             \"expired\": {},\n      \"rescued\": {},\n      \"dirty\": {}\n    }},\n",
            c("universe"),
            c("planned"),
            c("skipped_warm"),
            c("units"),
            c("new"),
            c("expired"),
            c("rescued"),
            c("dirty"),
        )
    };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"faults\": \"{}\",\n", faults.profile.as_str()));
    json.push_str(&format!("  \"threads\": {threads},\n"));

    json.push_str("  \"cold\": {\n");
    json.push_str(&format!("    \"total_secs\": {cold_secs:.3},\n"));
    if let Some(f) = &cold.cache_probe.fault {
        json.push_str("    \"fault_summary\": {\n");
        json.push_str(&format!("      \"observed\": {},\n", f.observed));
        json.push_str(&format!("      \"retries\": {},\n", f.retries));
        json.push_str(&format!("      \"recovered\": {},\n", f.recovered));
        json.push_str(&format!("      \"degraded\": {},\n", f.degraded));
        json.push_str(&format!("      \"lost\": {},\n", f.lost));
        json.push_str(&format!(
            "      \"quarantined_pops\": {},\n",
            f.quarantined_pops.len()
        ));
        json.push_str(&format!(
            "      \"rescued_scopes\": {},\n",
            f.rescued_scopes
        ));
        json.push_str(&format!(
            "      \"unmeasured_scopes\": {},\n",
            f.unmeasured_scopes
        ));
        json.push_str(&format!(
            "      \"assigned_scopes\": {}\n",
            f.assigned_scopes
        ));
        json.push_str("    },\n");
    }
    json.push_str(&stages_json(&cold_timings));
    json.push_str("  },\n");

    json.push_str("  \"warm\": {\n");
    json.push_str(&format!("    \"total_secs\": {warm_secs:.3},\n"));
    json.push_str(&format!(
        "    \"speedup_vs_cold\": {:.2},\n",
        cold_secs / warm_secs.max(1e-9)
    ));
    json.push_str(&planner_json(&warm));
    json.push_str(&stages_json(&warm_timings));
    json.push_str("  },\n");

    json.push_str("  \"warm_expiry_10pct\": {\n");
    json.push_str(&format!("    \"total_secs\": {expiry_secs:.3},\n"));
    json.push_str(&format!(
        "    \"speedup_vs_cold\": {:.2},\n",
        cold_secs / expiry_secs.max(1e-9)
    ));
    json.push_str(&planner_json(&expiry));
    json.push_str(&stages_json(&expiry_timings));
    json.push_str("  },\n");
    json.push_str(&clustered_sweep_json(
        config.clone(),
        &cold,
        cold_secs,
        &cold_timings,
    ));
    json.push_str(&fleet_fault_overhead_json(scale, config, threads));
    json.push_str("}\n");

    match json_path {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => eprintln!("repro bench: wrote {path}"),
            Err(e) => {
                eprintln!("repro bench: cannot write {path}: {e}");
                std::process::exit(1);
            }
        },
        None => print!("{json}"),
    }
}

/// The `clustered_sweep` bench entry: the cost and quality of
/// cluster-based predictive probing.
///
/// * **Cost** — a cold clustered run against the cold exhaustive run
///   `bench_run` already timed: total and probing-stage seconds, plus
///   the planner's live-probe ratio (representatives + escalations
///   over the planned universe).
/// * **Quality** — the warm differential the equivalence suite pins: a
///   full-expiry warm exhaustive re-sweep versus a full-expiry warm
///   clustered re-sweep from the *same* cold snapshot, compared on the
///   /24 `Hit` verdict tables as precision/recall.
fn clustered_sweep_json(
    base: PipelineConfig,
    cold: &PipelineOutput,
    cold_secs: f64,
    cold_timings: &[(String, f64)],
) -> String {
    use clientmap_analysis::verdict_precision_recall;
    use clientmap_store::Verdict;

    let stage = |timings: &[(String, f64)], name: &str| {
        timings
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    };
    let run = |config: PipelineConfig,
               prior: Option<clientmap_store::SweepSnapshot>,
               what: &str|
     -> (PipelineOutput, f64, Vec<(String, f64)>) {
        let mut timings = Vec::new();
        let start = std::time::Instant::now();
        match Pipeline::run_warm_timed(config, prior, &mut timings) {
            Ok(out) => (out, start.elapsed().as_secs_f64(), timings),
            Err(e) => {
                eprintln!("repro bench: {what} failed: {e}");
                std::process::exit(1);
            }
        }
    };

    let mut clustered_cfg = base.clone();
    clustered_cfg.probe.clustered_probing = true;

    eprintln!("repro bench: clustered sweep — cold clustered run…");
    let (cold_clustered, clustered_secs, clustered_timings) =
        run(clustered_cfg.clone(), None, "cold clustered run");
    let snap = cold_clustered.metrics_snapshot();
    let c = |name: &str| snap.counter(&format!("cacheprobe.cluster.{name}"));
    let universe = c("planned_universe");
    let reps = c("representatives");
    let escalated = c("escalated");
    let live_ratio = (reps + escalated) as f64 / universe.max(1) as f64;

    eprintln!("repro bench: clustered sweep — full-expiry warm differential…");
    let mut warm_ex_cfg = base;
    warm_ex_cfg.probe.expiry_budget = 1.0;
    clustered_cfg.probe.expiry_budget = 1.0;
    let (warm_ex, _, _) = run(
        warm_ex_cfg,
        Some(cold.sweep.clone()),
        "full-expiry warm exhaustive run",
    );
    let (warm_cl, _, _) = run(
        clustered_cfg,
        Some(cold.sweep.clone()),
        "full-expiry warm clustered run",
    );
    let pr = verdict_precision_recall(
        &warm_cl.cache_probe.verdict_table(),
        &warm_ex.cache_probe.verdict_table(),
        Verdict::Hit,
    );
    eprintln!(
        "repro bench: clustered sweep done — live-probe ratio {live_ratio:.3}, \
         warm Hit precision {:.4} recall {:.4}",
        pr.precision(),
        pr.recall()
    );

    format!(
        "  \"clustered_sweep\": {{\n    \
         \"cold_exhaustive_secs\": {cold_secs:.3},\n    \
         \"cold_clustered_secs\": {clustered_secs:.3},\n    \
         \"sweep_time_ratio\": {:.3},\n    \
         \"probing_secs_exhaustive\": {:.3},\n    \
         \"probing_secs_clustered\": {:.3},\n    \
         \"planned_universe\": {universe},\n    \
         \"representatives\": {reps},\n    \
         \"extrapolated\": {},\n    \
         \"escalated\": {escalated},\n    \
         \"clusters\": {},\n    \
         \"live_probe_ratio\": {live_ratio:.4},\n    \
         \"warm_hit_precision\": {:.4},\n    \
         \"warm_hit_recall\": {:.4}\n  }},\n",
        clustered_secs / cold_secs.max(1e-9),
        stage(cold_timings, "probing"),
        stage(&clustered_timings, "probing"),
        c("extrapolated"),
        c("clusters"),
        pr.precision(),
        pr.recall(),
    )
}

/// The `fleet_fault_overhead` bench entry: one lossy sweep single-
/// process versus the same seed on a 2-worker fleet, timing what the
/// distributed quarantine/rescue protocol costs on top of the local
/// path. The snapshots must be byte-identical — the overhead is pure
/// transport and merge, never a different answer. Skipped (with a
/// reason in the JSON) when the `clientmap` binary is not built next
/// to `repro`.
fn fleet_fault_overhead_json(scale: &str, base: PipelineConfig, threads: usize) -> String {
    use clientmap_fleet::{FleetOptions, FleetSweep};

    const WORKERS: usize = 2;
    const FAULT_SEED: u64 = 7;
    let mut config = base;
    config.faults = FaultConfig::profile(FaultProfile::Lossy, FAULT_SEED);

    eprintln!("repro bench: fleet fault overhead — single-process lossy run…");
    let mut timings = Vec::new();
    let start = std::time::Instant::now();
    let single = match Pipeline::run_warm_timed(config.clone(), None, &mut timings) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("repro bench: single-process lossy run failed: {e}");
            std::process::exit(1);
        }
    };
    let single_secs = start.elapsed().as_secs_f64();

    let (mut children, addrs) = match spawn_fleet_workers(WORKERS, threads) {
        Ok(pair) => pair,
        Err(why) => {
            eprintln!("repro bench: fleet fault overhead skipped: {why}");
            return format!("  \"fleet_fault_overhead\": {{ \"skipped\": \"{why}\" }}\n");
        }
    };
    eprintln!("repro bench: fleet fault overhead — {WORKERS}-worker lossy run…");
    let opts = FleetOptions {
        workers: addrs,
        num_shards: 0,
        ..FleetOptions::default()
    };
    let mut fleet = FleetSweep::new(opts, scale.to_string());
    let mut fleet_timings = Vec::new();
    let start = std::time::Instant::now();
    let result = Pipeline::run_warm_timed_with(config, None, &mut fleet_timings, &mut fleet);
    let fleet_secs = start.elapsed().as_secs_f64();
    for child in &mut children {
        let _ = child.wait();
    }
    let out = match result {
        Ok(out) => out,
        Err(e) => {
            eprintln!("repro bench: 2-worker lossy run failed: {e}");
            std::process::exit(1);
        }
    };
    let identical = out.sweep.encode() == single.sweep.encode();
    if !identical {
        eprintln!("repro bench: WARNING: fleet lossy snapshot differs from single-process");
    }
    format!(
        "  \"fleet_fault_overhead\": {{\n    \"profile\": \"lossy\",\n    \
         \"fault_seed\": {FAULT_SEED},\n    \"workers\": {WORKERS},\n    \
         \"single_process_secs\": {single_secs:.3},\n    \"fleet_secs\": {fleet_secs:.3},\n    \
         \"overhead_vs_single\": {:.2},\n    \"identical_snapshots\": {identical}\n  }}\n",
        fleet_secs / single_secs.max(1e-9)
    )
}

/// Spawns `n` one-shot `clientmap worker` processes beside this binary
/// and collects their announced listen addresses.
fn spawn_fleet_workers(
    n: usize,
    threads: usize,
) -> Result<(Vec<std::process::Child>, Vec<String>), String> {
    use std::io::BufRead as _;

    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let clientmap = exe.with_file_name("clientmap");
    if !clientmap.exists() {
        return Err(format!("{} is not built", clientmap.display()));
    }
    let mut children: Vec<std::process::Child> = Vec::new();
    let mut addrs = Vec::new();
    let fail = |children: &mut Vec<std::process::Child>, why: String| {
        for child in children {
            let _ = child.kill();
        }
        why
    };
    for _ in 0..n {
        let mut child = std::process::Command::new(&clientmap)
            .args(["worker", "--listen", "127.0.0.1:0", "--once"])
            .env("CLIENTMAP_THREADS", threads.to_string())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn worker: {e}"))?;
        let stdout = child.stdout.take().expect("worker stdout is piped");
        let mut line = String::new();
        if std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .is_err()
            || line.trim().is_empty()
        {
            let _ = child.kill();
            return Err(fail(
                &mut children,
                "worker announced no listen address".into(),
            ));
        }
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .unwrap_or_default()
            .to_string();
        children.push(child);
        addrs.push(addr);
    }
    Ok((children, addrs))
}

/// §6 future work, implemented: relative activity ranking from cache
/// hit rates, validated against the simulation's ground-truth rates.
fn ranking_section(out: &PipelineOutput) -> String {
    use clientmap_analysis::ranking::{activity_estimates, rank_agreement};
    use std::collections::HashMap;

    let mut s = String::from(
        "Relative activity ranking (§6 future work)\n------------------------------------------------------------\n",
    );
    let world = out.sim.world();
    let pools = clientmap_sim::POOLS_PER_POP as u32;
    for (d, name) in out.cache_probe.domains.iter().enumerate() {
        let Some(spec) = world.domains.get(name) else {
            continue;
        };
        let estimates = activity_estimates(
            &out.cache_probe,
            d,
            pools,
            out.config.probe.redundancy,
            spec.ttl_secs,
        );
        if estimates.len() < 10 {
            continue;
        }
        // Ground truth: each scope's Google-bound query rate for this
        // domain at the diurnal mean.
        let mut truth: HashMap<Prefix, f64> = HashMap::new();
        for s24 in &world.slash24s {
            if !s24.is_active() || s24.resolver_mix.google <= 0.0 {
                continue;
            }
            let rate = (s24.users + s24.machines)
                * world.config.dns_queries_per_user_per_day
                * spec.popularity_weight
                / 86_400.0
                * s24.resolver_mix.google;
            for e in &estimates {
                if e.scope.contains(s24.prefix) {
                    *truth.entry(e.scope).or_insert(0.0) += rate;
                    break;
                }
            }
        }
        // Missing scopes truly have zero activity.
        for e in &estimates {
            truth.entry(e.scope).or_insert(0.0);
        }
        let rho = rank_agreement(&estimates, &truth);
        let probed = estimates.len();
        let nonzero = estimates.iter().filter(|e| e.lambda_hat > 0.0).count();
        s.push_str(&format!(
            "{name}: {probed} scopes probed, {nonzero} with activity; \
             Spearman ρ(λ̂, truth) = {}\n",
            rho.map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "n/a".into()),
        ));
    }
    s.push_str(
        "(λ̂ inverts the Poisson cache-liveness model from observed hit rates;\n\
         the paper sketches exactly this in §6 / the HotNets companion [20])\n",
    );
    s
}

/// The §6 ⟨region, AS⟩ technique combination, summarised.
fn combine_section(out: &PipelineOutput) -> String {
    use clientmap_analysis::combine::{combine_region_as, summarize};
    let world = out.sim.world();
    let cells = combine_region_as(&out.cache_probe, &out.dns_logs, &world.geodb, &world.rib);
    let s5 = summarize(&cells);
    let mut s = String::from(
        "⟨region, AS⟩ combination of the two techniques (§6)
------------------------------------------------------------
",
    );
    s.push_str(&format!(
        "cells: {} joined (both signals), {} resolver-only, {} prefix-only;          {:.0}% of resolver activity joined to active prefixes
",
        s5.joined_cells,
        s5.resolver_only,
        s5.prefix_only,
        100.0 * s5.joined_activity_fraction,
    ));
    s.push_str(
        "top cells by Chromium activity:
",
    );
    for c in cells.iter().filter(|c| c.resolver_probes > 0.0).take(8) {
        match c.per_slash24_activity() {
            Some(per24) => s.push_str(&format!(
                "  {} {}: {:.0} probes over {} active /24s → {:.2} per /24
",
                c.country, c.asn, c.resolver_probes, c.active_24s, per24,
            )),
            None => s.push_str(&format!(
                "  {} {}: {:.0} probes, no located active prefixes (residual)
",
                c.country, c.asn, c.resolver_probes,
            )),
        }
    }
    s
}

/// Event-level validation of the analytic cache model (DESIGN.md's
/// faithfulness claim, demonstrated).
fn microsim_section(out: &PipelineOutput) -> String {
    use clientmap_sim::microsim::validate_liveness_model;
    let sim = Sim::new(World::generate(out.config.world.clone()));
    let domain: clientmap_dns::DomainName = "www.google.com".parse().unwrap();
    let pop = clientmap_sim::pop_catalog()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.status == clientmap_sim::PopStatus::ProbedVerified)
        .map(|(i, _)| i)
        .max_by(|a, b| {
            sim.gpdns()
                .pop_load(*a)
                .total_cmp(&sim.gpdns().pop_load(*b))
        })
        .unwrap_or(0);
    let report = validate_liveness_model(&sim, pop, &domain, 30, 36.0, 5, 7);
    let mut s = String::from(
        "Micro-simulation: event-level caches vs the analytic model
------------------------------------------------------------
",
    );
    s.push_str(&format!(
        "{} scopes × {} probes each at {}: mean |event − analytic| = {:.3}, worst {:.3}
",
        report.scopes.len(),
        report.probes_per_scope,
        clientmap_sim::pop_catalog()[pop].code,
        report.mean_abs_diff,
        report.max_abs_diff,
    ));
    for c in report.scopes.iter().take(8) {
        s.push_str(&format!(
            "  {:<18} rate {:>9.5}/s  event {:>5.3}  analytic {:>5.3}
",
            c.scope.to_string(),
            c.rate,
            c.event_hit_rate,
            c.analytic_hit_rate,
        ));
    }
    s.push_str(
        "(real EcsCache instances fed by Poisson arrival events through the
 event queue, probed like the real prober — the fast path's closed form
 is statistically indistinguishable)
",
    );
    s
}

/// Time-of-day analysis (§2): hourly hit-rate profiles recover each
/// prefix's local-time activity phase, hence its longitude band.
fn diurnal_section(out: &PipelineOutput) -> String {
    use clientmap_cacheprobe::diurnal::{hour_distance, probe_diurnal};
    use clientmap_cacheprobe::vantage::discover;

    let mut s = String::from(
        "Time-of-day analysis (§2 use case)\n------------------------------------------------------------\n",
    );
    let mut sim = Sim::new(World::generate(out.config.world.clone()));
    let bound = discover(&mut sim, SimTime::ZERO);
    let domain: clientmap_dns::DomainName = "www.google.com".parse().unwrap();
    let cfg = out.config.probe.clone();

    // Pick up to 6 scopes whose main-run hit rate was neither saturated
    // nor dead (a flat profile carries no phase information), preferring
    // one per PoP.
    let mut marginal: Vec<Prefix> = out
        .cache_probe
        .probe_counts
        .iter()
        .filter(|((d, _), c)| *d == 0 && c.attempts >= 2)
        .filter(|(_, c)| {
            let r = c.hit_rate();
            (0.15..=0.9).contains(&r)
        })
        .map(|((_, sc), _)| *sc)
        .collect();
    marginal.sort();
    let mut targets: Vec<(clientmap_cacheprobe::vantage::BoundVantage, Prefix)> = Vec::new();
    for b in &bound {
        if targets.len() >= 6 {
            break;
        }
        if let Some(set) = out.cache_probe.pop_hit_prefixes.get(&b.pop) {
            if let Some(scope) = marginal.iter().find(|sc| {
                set.contains_slash24(sc.supernet(24.min(sc.len())).unwrap_or(**sc))
                    || set.intersects(**sc)
            }) {
                targets.push((*b, *scope));
                continue;
            }
            if let Some(scope) = set.prefixes().first().copied() {
                targets.push((*b, scope));
            }
        }
    }
    let mut errors: Vec<f64> = Vec::new();
    let mut session = clientmap_sim::GpdnsSession::new();
    for (b, scope) in targets {
        let profile = probe_diurnal(
            &sim,
            &mut session,
            &b,
            &domain,
            scope,
            &cfg,
            SimTime::from_hours(24),
            2,
            4,
        );
        let world = sim.world();
        let truth_lon = world
            .geodb
            .lookup(scope)
            .or_else(|| world.geodb.lookup_addr(scope.addr()))
            .map(|e| e.coord.lon);
        match (profile.inferred_longitude(16.0), truth_lon) {
            (Some(lon), Some(truth)) => {
                let err_hours = hour_distance(lon / 15.0, truth / 15.0);
                errors.push(err_hours);
                s.push_str(&format!(
                    "scope {scope}: inferred lon {lon:>7.1}°, geo DB lon {truth:>7.1}° \
                     (Δ {err_hours:.1} h; {} hits)\n",
                    profile.total_hits(),
                ));
            }
            _ => s.push_str(&format!("scope {scope}: profile too flat to phase-lock\n")),
        }
    }
    if !errors.is_empty() {
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        s.push_str(&format!(
            "mean timezone error: {mean:.1} h over {} prefixes — diurnal phase alone \
             localises activity to a longitude band\n",
            errors.len()
        ));
    }
    s
}

/// The §3.1 baseline: open-resolver cache snooping, quantified against
/// the Google-ECS technique.
fn baseline_section(out: &PipelineOutput) -> String {
    use clientmap_cacheprobe::openresolver::run_baseline;
    let sim = Sim::new(World::generate(out.config.world.clone()));
    let domains: Vec<clientmap_dns::DomainName> = sim
        .world()
        .domains
        .top_probeable(4)
        .iter()
        .map(|s| s.name.clone())
        .collect();
    let baseline = run_baseline(&sim, &domains, 9, 3600, SimTime::from_hours(8));
    let ecs_ases = out.cache_probe.active_ases(&out.sim.world().rib).len();
    let total_resolvers = sim.world().resolvers.len();
    format!(
        concat!(
            "Baseline: open-resolver cache snooping (§3.1's rejected alternative)\n",
            "------------------------------------------------------------\n",
            "open resolvers found by scanning: {} of {}\n",
            "resolvers with cache hits: {}\n",
            "ASes detected: {} (Google-ECS technique: {}) — {:.0}% of the technique's coverage\n",
            "(paper: prior work found open forwarders in only 4,905 ASes,\n",
            "\"far below our goal of global coverage\")\n",
        ),
        baseline.open_resolvers.len(),
        total_resolvers,
        baseline.resolvers_with_hits.len(),
        baseline.num_ases(),
        ecs_ases,
        100.0 * baseline.num_ases() as f64 / ecs_ases.max(1) as f64,
    )
}

/// §3.2's collision-threshold experiment.
fn collisions_section() -> String {
    let mut s = String::from(
        "Chromium collision analysis (§3.2)\n------------------------------------------------------------\n",
    );
    for n in [1.0e6f64, 1.0e8, 1.0e9, 1.0e10] {
        let m = collisions::expected_max_multiplicity(n, 0.99);
        s.push_str(&format!(
            "{n:>9.0e} probes/day → max per-name multiplicity < {m} with 99% probability\n"
        ));
    }
    let sim_max = collisions::simulate_max_multiplicity(2_000_000, 7);
    s.push_str(&format!(
        "empirical simulation at 2e6/day: observed max multiplicity {sim_max}\n\
         paper: \"collide fewer than 7 times per day across all roots with 99% probability\"\n",
    ));
    s
}

/// Quality side of the ablations (the criterion benches measure cost).
fn ablations_section(out: &PipelineOutput) -> String {
    let mut s = String::from(
        "Ablations (design choices, §3.1.1)\n------------------------------------------------------------\n",
    );

    // Fresh small sim so probing state is untouched by the main run.
    let world = World::generate(out.config.world.clone());
    let universe: Vec<Prefix> = world.blocks.iter().map(|b| b.prefix).collect();
    let mut sim = Sim::new(world);

    // 1. Scope-reduction: authoritative queries spent.
    let domain: clientmap_dns::DomainName = "www.google.com".parse().unwrap();
    let plan = scan_domain(&sim, &domain, &universe, SimTime::ZERO);
    let naive: u64 = universe.iter().map(|b| b.num_slash24s()).sum();
    s.push_str(&format!(
        "scope pre-scan: {} authoritative queries vs {} naive per-/24 \
         ({}x reduction), {} Google-probe scopes instead of {} /24s\n",
        plan.queries_spent,
        naive,
        naive / plan.queries_spent.max(1),
        plan.scopes.len(),
        naive,
    ));

    // 2. Service radii: assignment sizes under three policies.
    let radii = &out.cache_probe.service_radii;
    let assigned_per_pop: f64 = out
        .cache_probe
        .assigned_per_pop
        .values()
        .map(|v| *v as f64)
        .sum::<f64>()
        / out.cache_probe.assigned_per_pop.len().max(1) as f64;
    let max_radius = radii.max_radius().unwrap_or(0.0);
    s.push_str(&format!(
        "service radii: avg {assigned_per_pop:.0} scopes/PoP with per-PoP radii; \
         max calibrated radius {max_radius:.0} km (paper: per-PoP radii cut \
         2.4M vs 4.4M prefixes per PoP)\n",
    ));

    // 3. Redundancy: hit recall with 1..5 queries per probe, using the
    //    PoP with the most assigned work and scopes plausibly near it
    //    (probing far-away scopes at the wrong PoP never hits).
    let bound = discover(&mut sim, SimTime::ZERO);
    let b0 = *out
        .cache_probe
        .assigned_per_pop
        .iter()
        .max_by_key(|(_, n)| **n)
        .and_then(|(pop, _)| bound.iter().find(|b| b.pop == *pop))
        .unwrap_or(&bound[0]);
    let pop_coord = clientmap_sim::pop_catalog()[b0.pop].coord;
    let radius = out
        .cache_probe
        .service_radii
        .radius(b0.pop, out.config.probe.fallback_radius_km);
    let geodb = &sim.world().geodb;
    let near_pop = |s: &Prefix| {
        geodb
            .lookup(*s)
            .or_else(|| geodb.lookup_addr(s.addr()))
            .map(|e| e.coord.distance_km(&pop_coord) <= radius + e.error_radius_km)
            .unwrap_or(false)
    };
    // Redundancy only matters for *marginal* scopes (cache entries that
    // are sometimes live in some pools); saturated and dead scopes are
    // insensitive to it. Select scopes whose main-run hit rate was
    // strictly between 0 and 1.
    let mut scopes: Vec<Prefix> = out
        .cache_probe
        .probe_counts
        .iter()
        .filter(|((d, _), c)| *d == 0 && c.hits > 0 && c.hits < c.attempts)
        .map(|((_, s), _)| *s)
        .filter(near_pop)
        .collect();
    scopes.sort();
    scopes.truncate(400);
    if scopes.len() < 50 {
        // Fall back to any near-PoP scopes if few marginal ones exist.
        scopes = plan
            .scopes
            .iter()
            .filter(|s| near_pop(s))
            .take(400)
            .copied()
            .collect();
    }
    // Probe each scope at several local times of day (including the
    // diurnal trough, where cache entries are scarce and pool coverage
    // matters most).
    for redundancy in [1u32, 2, 5] {
        let mut cfg = ProbeConfig::test_scale();
        cfg.redundancy = redundancy;
        let mut hit_events = 0u32;
        let mut attempts = 0u32;
        for hour in [4u64, 10, 16, 22] {
            for (i, sc) in scopes.iter().enumerate() {
                let t = SimTime::from_hours(24 + hour) + SimTime::from_millis(i as u64 * 25);
                attempts += 1;
                if matches!(
                    probe::probe_scope(&mut sim, &b0, &domain, *sc, &cfg, t),
                    clientmap_sim::ProbeOutcome::Hit { .. }
                ) {
                    hit_events += 1;
                }
            }
        }
        s.push_str(&format!(
            "redundancy {redundancy}: {hit_events}/{attempts} probe events hit at one PoP\n"
        ));
    }

    // 4. Geo-distribution: the full deployment vs a single vantage
    //    point (the paper's reason for probing from many clouds: Google
    //    only caches at the PoP a client's anycast reaches).
    {
        let world = World::generate(out.config.world.clone());
        let mut single_sim = Sim::new(world);
        let mut cfg = out.config.probe.clone();
        cfg.max_pops = Some(1);
        let single = clientmap_cacheprobe::run_technique(&mut single_sim, &cfg, &universe);
        let full = out.cache_probe.active_set().num_slash24s();
        let one = single.active_set().num_slash24s();
        s.push_str(&format!(
            "geo-distribution: 1 vantage point finds {one} active /24s vs {full} \
             with the full deployment ({:.0}%)\n",
            100.0 * one as f64 / full.max(1) as f64,
        ));
    }

    // 5. Transport: answered probes under a paper-rate burst.
    for (label, transport) in [("TCP", Transport::Tcp), ("UDP", Transport::Udp)] {
        let mut cfg = ProbeConfig::test_scale();
        cfg.transport = transport;
        let mut answered = 0u32;
        for (i, sc) in scopes.iter().take(200).enumerate() {
            let t = SimTime::from_hours(12) + SimTime::from_millis(i as u64 * 20);
            if !matches!(
                probe::probe_scope(&mut sim, &b0, &domain, *sc, &cfg, t),
                clientmap_sim::ProbeOutcome::Dropped
            ) {
                answered += 1;
            }
        }
        s.push_str(&format!(
            "{label}: {answered}/200 probes answered at 50/s\n"
        ));
    }
    s
}
