//! # clientmap-bench
//!
//! Shared fixtures for the criterion benches and the `repro` binary.
//!
//! The benches regenerate every table and figure of the paper from one
//! cached pipeline run (building the run itself is benchmarked in
//! `benches/techniques.rs`), plus ablation benches for the design
//! choices DESIGN.md calls out and microbenches for the substrate hot
//! paths.

#![warn(missing_docs)]

use std::sync::OnceLock;

use clientmap_core::{Pipeline, PipelineConfig, PipelineOutput};

/// The shared tiny pipeline run used by table/figure benches (cached:
/// the benches measure the *analysis*, not the run).
pub fn tiny_run() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(PipelineConfig::tiny(0xC11E)).expect("tiny run is healthy"))
}

/// A shared small run for heavier comparisons.
pub fn small_run() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(PipelineConfig::small(0xC11E)).expect("small run is healthy"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_build() {
        let out = super::tiny_run();
        assert!(out.cache_probe.probes_sent > 0);
    }
}
