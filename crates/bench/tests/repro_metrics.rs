//! Integration tests for `repro --metrics`: the flag writes a JSON
//! telemetry snapshot, the snapshot satisfies the cross-counter
//! invariants, and two same-seed runs produce byte-identical files.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_with_metrics(path: &std::path::Path) -> String {
    let out = repro()
        .args([
            "--scale",
            "tiny",
            "--seed",
            "2021",
            "--metrics",
            path.to_str().unwrap(),
            "headline",
        ])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(path).expect("metrics file written")
}

#[test]
fn metrics_flag_writes_valid_invariant_satisfying_json() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("clientmap_metrics_{}.json", std::process::id()));
    let json = run_with_metrics(&path);
    std::fs::remove_file(&path).ok();

    assert!(json.starts_with("{"), "not a JSON object: {json:.40}");
    assert!(json.contains("\"counters\""), "missing counters section");
    assert!(
        json.contains("\"histograms\""),
        "missing histograms section"
    );

    // Pull a few counters back out of the JSON (integers, so a plain
    // scan suffices — no JSON parser in the offline toolchain).
    let counter = |name: &str| -> u64 {
        let key = format!("\"{name}\": ");
        let at = json.find(&key).unwrap_or_else(|| panic!("missing {name}"));
        json[at + key.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let attempts = counter("cacheprobe.attempts");
    assert!(attempts > 0);
    // ProbeConfig::test_scale uses redundancy 3; the invariant holds
    // whatever the value, so derive it from the snapshot itself.
    let probes = counter("cacheprobe.probes_sent");
    assert_eq!(probes % attempts, 0, "probes {probes} attempts {attempts}");
    assert_eq!(
        counter("cacheprobe.outcome.hit")
            + counter("cacheprobe.outcome.scope0")
            + counter("cacheprobe.outcome.miss")
            + counter("cacheprobe.outcome.dropped"),
        attempts
    );
    assert_eq!(counter("pipeline.runs"), 1);
    assert!(counter("gpdns.queries.tcp") > 0, "probing goes over TCP");
}

#[test]
fn metrics_snapshots_byte_identical_across_same_seed_runs() {
    let dir = std::env::temp_dir();
    let pa = dir.join(format!("clientmap_metrics_a_{}.json", std::process::id()));
    let pb = dir.join(format!("clientmap_metrics_b_{}.json", std::process::id()));
    let a = run_with_metrics(&pa);
    let b = run_with_metrics(&pb);
    std::fs::remove_file(&pa).ok();
    std::fs::remove_file(&pb).ok();
    assert_eq!(a, b, "same-seed telemetry snapshots diverged");
}
