//! Proves the probe fast lane performs **zero heap allocations** in
//! steady state: a counting global allocator tracks every allocation
//! on the test thread, and after one warm-up pass (which sizes the
//! reusable buffers and creates the session's token bucket) a measured
//! pass of several hundred probes must allocate nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use clientmap_cacheprobe::probe::{probe_scope_fast, select_domains};
use clientmap_cacheprobe::vantage::discover;
use clientmap_cacheprobe::ProbeConfig;
use clientmap_dns::wire;
use clientmap_net::Prefix;
use clientmap_sim::{GpdnsSession, ProbeOutcome, ScopeLane, Sim, SimTime};
use clientmap_world::{World, WorldConfig};

thread_local! {
    // Const-init + non-Drop payload: reading the counter from inside
    // the allocator is a plain TLS access and can never itself
    // allocate or recurse.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Forwards to the system allocator, counting every allocation event
/// (alloc, alloc_zeroed, realloc) made by the current thread.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn probe_fast_lane_is_allocation_free_after_warmup() {
    let mut sim = Sim::new(World::generate(WorldConfig::tiny(17)));
    let bound = discover(&mut sim, SimTime::ZERO)[0];
    let cfg = ProbeConfig::test_scale();
    let domain = select_domains(&sim, &cfg)
        .into_iter()
        .next()
        .expect("catalog has probeable domains");
    let template = wire::ProbeQueryTemplate::new(&domain);
    let scopes: Vec<Prefix> = sim
        .world()
        .blocks
        .iter()
        .map(|b| b.prefix)
        .take(32)
        .collect();
    assert!(!scopes.is_empty(), "tiny world has routed blocks");
    let view = sim.view();
    let t0 = SimTime::from_hours(8);

    let mut session = GpdnsSession::new();
    // Response sizes vary by outcome (a hit carries an answer record,
    // a miss does not); pre-reserving past the largest possible probe
    // response means buffer growth cannot masquerade as a hot-path
    // allocation that warm-up merely happened to hide.
    let mut query_buf: Vec<u8> = Vec::with_capacity(128);
    let mut resp_buf: Vec<u8> = Vec::with_capacity(512);

    // Warm-up: creates the session's (prober, PoP, transport) token
    // bucket and touches every lookup table once.
    for (i, &scope) in scopes.iter().enumerate() {
        probe_scope_fast(
            &view,
            &mut session,
            &bound,
            &template,
            scope,
            &cfg,
            t0 + SimTime::from_millis(i as u64 * 10),
            &mut query_buf,
            &mut resp_buf,
        );
    }

    let before = allocations();
    let mut outcomes = 0u64;
    for round in 1..=8u64 {
        for (i, &scope) in scopes.iter().enumerate() {
            let t = t0 + SimTime::from_millis(round * 60_000 + i as u64 * 10);
            probe_scope_fast(
                &view,
                &mut session,
                &bound,
                &template,
                scope,
                &cfg,
                t,
                &mut query_buf,
                &mut resp_buf,
            );
            outcomes += 1;
        }
    }
    let allocated = allocations() - before;

    assert!(outcomes >= 256, "measured pass actually probed");
    assert_eq!(
        allocated, 0,
        "probe fast lane allocated {allocated} time(s) across {outcomes} probes after warm-up"
    );
}

#[test]
fn batched_lane_is_allocation_free_after_warmup() {
    let mut sim = Sim::new(World::generate(WorldConfig::tiny(17)));
    let bound = discover(&mut sim, SimTime::ZERO)[0];
    let cfg = ProbeConfig::test_scale();
    let domain = select_domains(&sim, &cfg)
        .into_iter()
        .next()
        .expect("catalog has probeable domains");
    let template = wire::ProbeQueryTemplate::new(&domain);
    let scopes: Vec<Prefix> = sim
        .world()
        .blocks
        .iter()
        .map(|b| b.prefix)
        .take(32)
        .collect();
    assert!(!scopes.is_empty(), "tiny world has routed blocks");
    let view = sim.view();
    let t0 = SimTime::from_hours(8);

    // Per-unit state, built once: connection, domain tables, lanes.
    let session = GpdnsSession::new();
    let mut conn = view
        .gpdns
        .open_batch(
            view.catchments,
            &session,
            bound.prober_key(),
            bound.coord(),
            cfg.transport,
        )
        .expect("fault-free core opens a batch connection");
    let dom = view
        .gpdns
        .batch_domain(&conn, template.qname_wire())
        .expect("selected domain is probeable");
    let lanes: Vec<ScopeLane> = scopes
        .iter()
        .map(|&s| view.gpdns.scope_lane(view.auth, &dom, s))
        .collect();
    let mut batch = wire::ProbeBatch::new();
    let mut events: Vec<(u32, SimTime)> = Vec::with_capacity(scopes.len());
    let mut out: Vec<ProbeOutcome> = Vec::with_capacity(scopes.len());

    // Warm-up pass: sizes the arena and the event/outcome vectors and
    // creates the connection's token bucket.
    for (i, &scope) in scopes.iter().enumerate() {
        batch.push(&template, 0x1234, scope);
        events.push((i as u32, t0 + SimTime::from_millis(i as u64 * 10)));
    }
    assert!(view.gpdns.serve_batch(
        &mut conn,
        &dom,
        view.auth,
        &lanes,
        &batch,
        &events,
        cfg.redundancy,
        &mut out
    ));

    let before = allocations();
    let mut outcomes = 0u64;
    for round in 1..=8u64 {
        batch.clear();
        events.clear();
        out.clear();
        for (i, &scope) in scopes.iter().enumerate() {
            let t = t0 + SimTime::from_millis(round * 60_000 + i as u64 * 10);
            batch.push(&template, 0x1234, scope);
            events.push((i as u32, t));
        }
        let served = view.gpdns.serve_batch(
            &mut conn,
            &dom,
            view.auth,
            &lanes,
            &batch,
            &events,
            cfg.redundancy,
            &mut out,
        );
        assert!(served, "steady-state batch failed validation");
        outcomes += out.len() as u64;
    }
    let allocated = allocations() - before;

    assert!(outcomes >= 256, "measured pass actually probed");
    assert_eq!(
        allocated, 0,
        "batched lane allocated {allocated} time(s) across {outcomes} probes after warm-up"
    );
}
