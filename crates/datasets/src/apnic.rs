//! The APNIC-style per-AS user estimator.
//!
//! APNIC's "How big is that network?" methodology [19] estimates AS
//! user populations from Google Ads impressions. The paper lists its
//! structural limitations (§1): unvalidated, AS-granular, expensive,
//! coverage at the mercy of ad bidding, and blind to networks whose
//! users don't see ads. The simulation reproduces the *mechanism*:
//! a daily ad budget reaches a fraction of the world's users; an AS
//! enters the dataset only if enough of its users were sampled, so
//! small ASes drop out — which is exactly why APNIC misses 64% of the
//! ASes the Microsoft CDN sees while still covering 92% of the volume.

use std::collections::HashMap;

use clientmap_net::{Asn, SeedMixer};
use clientmap_world::World;

use crate::AsView;

/// Parameters of the simulated ad campaign.
#[derive(Debug, Clone, Copy)]
pub struct ApnicConfig {
    /// Fraction of the world's users that see a campaign ad
    /// (impressions / population).
    pub impression_rate: f64,
    /// Minimum sampled impressions for an AS to be published.
    pub min_impressions: u64,
}

impl Default for ApnicConfig {
    fn default() -> Self {
        ApnicConfig {
            impression_rate: 2.0e-3,
            min_impressions: 3,
        }
    }
}

/// The published dataset: per-AS estimated user counts.
#[derive(Debug, Clone, Default)]
pub struct ApnicDataset {
    /// AS → estimated users.
    pub estimates: HashMap<Asn, f64>,
}

impl ApnicDataset {
    /// Runs the simulated campaign over the world's ground truth (ads
    /// are shown to real users; this is the one dataset whose *source*
    /// is inherently population-level).
    pub fn estimate(world: &World, cfg: &ApnicConfig) -> ApnicDataset {
        let seed = SeedMixer::new(world.config.seed).mix_str("apnic").finish();
        let mut estimates = HashMap::new();
        for info in &world.ases {
            if info.users <= 0.0 {
                continue; // machines see no ads
            }
            let mean = info.users * cfg.impression_rate;
            let h = SeedMixer::new(seed).mix(u64::from(info.asn.0)).finish();
            let impressions = poisson(h, mean);
            if impressions >= cfg.min_impressions {
                estimates.insert(info.asn, impressions as f64 / cfg.impression_rate);
            }
        }
        ApnicDataset { estimates }
    }

    /// Number of ASes published.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Total estimated Internet population.
    pub fn total_users(&self) -> f64 {
        self.estimates.values().sum()
    }

    /// As a comparable [`AsView`] (volume = estimated users).
    pub fn as_view(&self) -> AsView {
        AsView::from_volumes(self.estimates.iter().map(|(a, v)| (*a, *v)))
    }
}

/// Seeded Poisson (same scheme as the simulator's log generators).
fn poisson(h: u64, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let mut state = h;
    let mut next_unit = || {
        state = clientmap_net::splitmix64(state);
        ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(f64::MIN_POSITIVE, 1.0)
    };
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= next_unit();
            if p <= l || k > 1000 {
                return k;
            }
            k += 1;
        }
    } else {
        let u1 = next_unit();
        let u2 = next_unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * mean.sqrt()).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{AsCategory, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(111))
    }

    #[test]
    fn misses_small_ases_keeps_volume() {
        let w = world();
        let apnic = ApnicDataset::estimate(&w, &ApnicConfig::default());
        let user_ases: Vec<&clientmap_world::AsInfo> =
            w.ases.iter().filter(|a| a.users > 0.0).collect();
        let covered = user_ases
            .iter()
            .filter(|a| apnic.estimates.contains_key(&a.asn))
            .count();
        let frac_ases = covered as f64 / user_ases.len() as f64;
        // Structural bias: far from full AS coverage…
        assert!((0.05..0.9).contains(&frac_ases), "AS coverage {frac_ases}");
        // …but the covered ASes hold most of the user volume.
        let total: f64 = user_ases.iter().map(|a| a.users).sum();
        let covered_users: f64 = user_ases
            .iter()
            .filter(|a| apnic.estimates.contains_key(&a.asn))
            .map(|a| a.users)
            .sum();
        assert!(
            covered_users / total > 0.85,
            "volume coverage {}",
            covered_users / total
        );
    }

    #[test]
    fn estimates_track_truth_for_large_ases() {
        let w = world();
        let apnic = ApnicDataset::estimate(&w, &ApnicConfig::default());
        for a in &w.ases {
            if a.users > 50_000.0 {
                let est = apnic.estimates.get(&a.asn).copied().unwrap_or(0.0);
                assert!(
                    (est - a.users).abs() < 0.5 * a.users,
                    "AS {}: est {est}, truth {}",
                    a.asn,
                    a.users
                );
            }
        }
    }

    #[test]
    fn hosting_ases_never_published() {
        let w = world();
        let apnic = ApnicDataset::estimate(&w, &ApnicConfig::default());
        for a in &w.ases {
            if a.category == AsCategory::HostingCloud {
                assert!(
                    !apnic.estimates.contains_key(&a.asn),
                    "hosting AS {} published",
                    a.asn
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = ApnicDataset::estimate(&w, &ApnicConfig::default());
        let b = ApnicDataset::estimate(&w, &ApnicConfig::default());
        assert_eq!(a.estimates.len(), b.estimates.len());
        assert_eq!(a.total_users(), b.total_users());
    }

    #[test]
    fn as_view_roundtrip() {
        let w = world();
        let apnic = ApnicDataset::estimate(&w, &ApnicConfig::default());
        let view = apnic.as_view();
        assert_eq!(view.len(), apnic.len());
        assert!((view.total_volume() - apnic.total_users()).abs() < 1e-6);
    }
}
