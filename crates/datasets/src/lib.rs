//! # clientmap-datasets
//!
//! Turns raw technique outputs and service logs into the five (plus
//! union) **comparable datasets** of the paper's §4:
//!
//! | dataset | source | granularity | volume measure |
//! |---|---|---|---|
//! | cache probing | `clientmap-cacheprobe` | /24 (via scopes) | none |
//! | DNS logs | `clientmap-chromium` | resolver /24 | Chromium probes |
//! | APNIC | simulated ad campaign | AS | estimated users |
//! | Microsoft clients | CDN access log | /24 | HTTP requests |
//! | Microsoft resolvers | CDN resolver join | resolver /24 | client IPs |
//! | cloud ECS prefixes | Traffic Manager log | /24 | DNS queries |
//!
//! Every dataset exposes an [`AsView`] (AS set + per-AS volume) and,
//! where meaningful, a [`PrefixView`] (/24 set + per-/24 volume), which
//! is all `clientmap-analysis` needs to rebuild Tables 1, 3 and 4.

#![warn(missing_docs)]

mod apnic;
mod bundle;
pub mod export;
mod views;

pub use apnic::{ApnicConfig, ApnicDataset};
pub use bundle::{DatasetBundle, DatasetId};
pub use views::{AsView, PrefixView};
