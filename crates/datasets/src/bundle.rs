//! Assembling all six datasets into one comparable bundle.

use clientmap_cacheprobe::CacheProbeResult;
use clientmap_chromium::DnsLogsResult;
use clientmap_net::{Prefix, Rib};
use clientmap_sim::cdn::CdnLogs;

use crate::{ApnicDataset, AsView, PrefixView};

/// Identifies one of the comparable datasets (row/column labels of
/// Tables 1, 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// The cache-probing technique.
    CacheProbing,
    /// The DNS-logs (Chromium) technique.
    DnsLogs,
    /// cache probing ∪ DNS logs.
    Union,
    /// APNIC per-AS user estimates.
    Apnic,
    /// Microsoft CDN client log.
    MicrosoftClients,
    /// Microsoft resolver observations.
    MicrosoftResolvers,
    /// Traffic Manager ECS prefixes.
    CloudEcs,
}

impl DatasetId {
    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DatasetId::CacheProbing => "cache probing",
            DatasetId::DnsLogs => "DNS logs",
            DatasetId::Union => "cache probing ∪ DNS logs",
            DatasetId::Apnic => "APNIC",
            DatasetId::MicrosoftClients => "Microsoft clients",
            DatasetId::MicrosoftResolvers => "Microsoft resolvers",
            DatasetId::CloudEcs => "cloud ECS prefixes",
        }
    }
}

/// All datasets in both granularities, ready for cross-comparison.
#[derive(Debug)]
pub struct DatasetBundle {
    /// Cache probing (/24 upper-bound set; no volume).
    pub cache_probing: PrefixView,
    /// DNS logs (resolver /24s; volume = probes).
    pub dns_logs: PrefixView,
    /// Microsoft clients (/24; volume = HTTP requests).
    pub ms_clients: PrefixView,
    /// Microsoft resolvers (resolver /24s; volume = client IPs).
    pub ms_resolvers: PrefixView,
    /// Cloud ECS prefixes (/24; volume = TM queries).
    pub cloud_ecs: PrefixView,
    /// APNIC (AS only; volume = estimated users).
    pub apnic: AsView,

    /// AS projections of the prefix datasets.
    pub cache_probing_as: AsView,
    /// DNS logs by AS (resolver → AS; volume = probes).
    pub dns_logs_as: AsView,
    /// Microsoft clients by AS.
    pub ms_clients_as: AsView,
    /// Microsoft resolvers by AS.
    pub ms_resolvers_as: AsView,
    /// Cloud ECS by AS.
    pub cloud_ecs_as: AsView,
}

impl DatasetBundle {
    /// Builds the bundle from technique outputs and service logs.
    pub fn build(
        cache_probe: &CacheProbeResult,
        dns_logs: &DnsLogsResult,
        cdn_logs: &CdnLogs,
        apnic: &ApnicDataset,
        rib: &Rib,
    ) -> DatasetBundle {
        let cache_probing = PrefixView::from_set(cache_probe.active_set());
        let dns_logs_view = PrefixView::from_volumes(
            dns_logs
                .resolvers
                .iter()
                .map(|r| (Prefix::slash24_of(r.resolver_addr), r.probes)),
        );
        let ms_clients =
            PrefixView::from_volumes(cdn_logs.clients.iter().map(|(p, c)| (*p, *c as f64)));
        let ms_resolvers = PrefixView::from_volumes(
            cdn_logs
                .resolvers
                .iter()
                .map(|(addr, c)| (Prefix::slash24_of(*addr), *c as f64)),
        );
        let cloud_ecs =
            PrefixView::from_volumes(cdn_logs.ecs_prefixes.iter().map(|(p, c)| (*p, *c as f64)));

        let cache_probing_as = AsView::from_set(cache_probe.active_ases(rib));
        let dns_logs_as = AsView::from_volumes(dns_logs.by_as(rib));
        let ms_clients_as = ms_clients.to_as_view(rib);
        let ms_resolvers_as = ms_resolvers.to_as_view(rib);
        let cloud_ecs_as = cloud_ecs.to_as_view(rib);

        DatasetBundle {
            cache_probing,
            dns_logs: dns_logs_view,
            ms_clients,
            ms_resolvers,
            cloud_ecs,
            apnic: apnic.as_view(),
            cache_probing_as,
            dns_logs_as,
            ms_clients_as,
            ms_resolvers_as,
            cloud_ecs_as,
        }
    }

    /// Registers per-dataset sizes under `datasets.` in `m` — the
    /// headline scale of Tables 1 and 3 as machine-readable gauges, so
    /// a snapshot diff shows at a glance which dataset grew or shrank.
    pub fn register_metrics(&self, m: &clientmap_telemetry::MetricsRegistry) {
        let prefix_views: [(&str, &PrefixView); 5] = [
            ("cache_probing", &self.cache_probing),
            ("dns_logs", &self.dns_logs),
            ("ms_clients", &self.ms_clients),
            ("ms_resolvers", &self.ms_resolvers),
            ("cloud_ecs", &self.cloud_ecs),
        ];
        for (name, v) in prefix_views {
            m.counter(&format!("datasets.{name}.slash24s"))
                .add(v.num_slash24s());
        }
        let as_views: [(&str, &AsView); 6] = [
            ("cache_probing", &self.cache_probing_as),
            ("dns_logs", &self.dns_logs_as),
            ("ms_clients", &self.ms_clients_as),
            ("ms_resolvers", &self.ms_resolvers_as),
            ("cloud_ecs", &self.cloud_ecs_as),
            ("apnic", &self.apnic),
        ];
        for (name, v) in as_views {
            m.counter(&format!("datasets.{name}.ases"))
                .add(v.len() as u64);
        }
    }

    /// The prefix-granularity view of a dataset (`None` for APNIC,
    /// which is AS-only — one of the paper's points).
    pub fn prefix_view(&self, id: DatasetId) -> Option<PrefixView> {
        match id {
            DatasetId::CacheProbing => Some(self.cache_probing.clone()),
            DatasetId::DnsLogs => Some(self.dns_logs.clone()),
            DatasetId::Union => Some(self.cache_probing.union(&self.dns_logs)),
            DatasetId::MicrosoftClients => Some(self.ms_clients.clone()),
            DatasetId::MicrosoftResolvers => Some(self.ms_resolvers.clone()),
            DatasetId::CloudEcs => Some(self.cloud_ecs.clone()),
            DatasetId::Apnic => None,
        }
    }

    /// The AS-granularity view of a dataset.
    pub fn as_view(&self, id: DatasetId) -> AsView {
        match id {
            DatasetId::CacheProbing => self.cache_probing_as.clone(),
            DatasetId::DnsLogs => self.dns_logs_as.clone(),
            DatasetId::Union => self.cache_probing_as.union(&self.dns_logs_as),
            DatasetId::MicrosoftClients => self.ms_clients_as.clone(),
            DatasetId::MicrosoftResolvers => self.ms_resolvers_as.clone(),
            DatasetId::CloudEcs => self.cloud_ecs_as.clone(),
            DatasetId::Apnic => self.apnic.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_net::Asn;

    /// A hand-built bundle (end-to-end construction is covered by the
    /// integration tests; here we check the wiring logic).
    fn mini_bundle() -> (DatasetBundle, Rib) {
        let mut rib = Rib::new();
        rib.announce("10.1.0.0/16".parse().unwrap(), Asn(100));
        rib.announce("10.2.0.0/16".parse().unwrap(), Asn(200));

        let cache_probe = {
            let mut r = clientmap_cacheprobe::CacheProbeResult::new(
                vec!["www.google.com".parse().unwrap()],
                Vec::new(),
                Default::default(),
                Default::default(),
            );
            r.record_hit(
                0,
                0,
                "10.1.0.0/20".parse().unwrap(),
                "10.1.0.0/20".parse().unwrap(),
                9,
            );
            r
        };
        let dns_logs = clientmap_chromium::DnsLogsResult {
            resolvers: vec![clientmap_chromium::ResolverActivity {
                resolver_addr: 0x0A020035, // 10.2.0.53
                probes: 40.0,
            }],
            rejected_noise_records: 0,
            records_examined: 1,
        };
        let mut cdn_logs = CdnLogs::default();
        cdn_logs.clients.insert("10.1.2.0/24".parse().unwrap(), 100);
        cdn_logs.clients.insert("10.2.9.0/24".parse().unwrap(), 50);
        cdn_logs.resolvers.insert(0x0A020035, 77);
        cdn_logs
            .ecs_prefixes
            .insert("10.1.2.0/24".parse().unwrap(), 8);
        let apnic = ApnicDataset {
            estimates: [(Asn(100), 5000.0)].into_iter().collect(),
        };
        let bundle = DatasetBundle::build(&cache_probe, &dns_logs, &cdn_logs, &apnic, &rib);
        (bundle, rib)
    }

    #[test]
    fn views_wired_correctly() {
        let (b, _) = mini_bundle();
        assert_eq!(b.cache_probing.num_slash24s(), 16);
        assert_eq!(b.dns_logs.num_slash24s(), 1);
        assert_eq!(b.ms_clients.num_slash24s(), 2);
        assert_eq!(b.ms_clients.total_volume(), 150.0);
        assert_eq!(b.cloud_ecs.num_slash24s(), 1);
        assert_eq!(b.apnic.len(), 1);
        // AS projections.
        assert!(b.cache_probing_as.contains(Asn(100)));
        assert!(!b.cache_probing_as.contains(Asn(200)));
        assert!(b.dns_logs_as.contains(Asn(200)));
        assert_eq!(b.ms_clients_as.volume[&Asn(100)], 100.0);
    }

    #[test]
    fn union_views() {
        let (b, _) = mini_bundle();
        let u = b.prefix_view(DatasetId::Union).unwrap();
        assert_eq!(u.num_slash24s(), 16 + 1);
        let ua = b.as_view(DatasetId::Union);
        assert!(ua.contains(Asn(100)) && ua.contains(Asn(200)));
        assert!(
            b.prefix_view(DatasetId::Apnic).is_none(),
            "APNIC is AS-only"
        );
    }

    #[test]
    fn headline_volume_coverage() {
        let (b, _) = mini_bundle();
        // "prefixes identified as active are responsible for X% of
        // Microsoft clients volume":
        let covered = b.ms_clients.volume_in(&b.cache_probing);
        assert_eq!(covered, 100.0);
        let frac = covered / b.ms_clients.total_volume();
        assert!((frac - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn register_metrics_mirrors_view_sizes() {
        let (b, _) = mini_bundle();
        let m = clientmap_telemetry::MetricsRegistry::new();
        b.register_metrics(&m);
        let snap = m.snapshot();
        assert_eq!(snap.counter("datasets.cache_probing.slash24s"), 16);
        assert_eq!(snap.counter("datasets.dns_logs.slash24s"), 1);
        assert_eq!(snap.counter("datasets.ms_clients.slash24s"), 2);
        assert_eq!(snap.counter("datasets.apnic.ases"), 1);
        assert_eq!(snap.counter("datasets.dns_logs.ases"), 1);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DatasetId::MicrosoftClients.label(), "Microsoft clients");
        assert_eq!(DatasetId::Union.label(), "cache probing ∪ DNS logs");
    }
}
