//! The two comparable dataset views: by AS and by /24 prefix.

use std::collections::{HashMap, HashSet};

use clientmap_net::{Asn, Prefix, PrefixSet, Rib};
use clientmap_store::Slash24Bitset;

/// An AS-granularity view: which ASes a dataset observed, with an
/// optional per-AS activity volume (Tables 3 & 4).
#[derive(Debug, Clone, Default)]
pub struct AsView {
    /// Per-AS volume. ASes observed without a volume measure carry 0.
    pub volume: HashMap<Asn, f64>,
}

impl AsView {
    /// Builds a view from an iterator of (AS, volume).
    pub fn from_volumes<I: IntoIterator<Item = (Asn, f64)>>(iter: I) -> Self {
        let mut volume = HashMap::new();
        for (asn, v) in iter {
            *volume.entry(asn).or_insert(0.0) += v;
        }
        AsView { volume }
    }

    /// Builds a set-only view (no volumes).
    pub fn from_set<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        AsView {
            volume: iter.into_iter().map(|a| (a, 0.0)).collect(),
        }
    }

    /// The AS set.
    pub fn set(&self) -> HashSet<Asn> {
        self.volume.keys().copied().collect()
    }

    /// Number of ASes observed.
    pub fn len(&self) -> usize {
        self.volume.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.volume.is_empty()
    }

    /// Whether an AS was observed.
    pub fn contains(&self, asn: Asn) -> bool {
        self.volume.contains_key(&asn)
    }

    /// Total volume.
    pub fn total_volume(&self) -> f64 {
        self.volume.values().sum()
    }

    /// Volume carried by ASes that `other` also observed — the Table 4
    /// "percent of row volume in column ASes" numerator.
    pub fn volume_in(&self, other: &AsView) -> f64 {
        self.volume
            .iter()
            .filter(|(a, _)| other.contains(**a))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Set union with another view (volumes summed).
    pub fn union(&self, other: &AsView) -> AsView {
        let mut volume = self.volume.clone();
        for (a, v) in &other.volume {
            *volume.entry(*a).or_insert(0.0) += v;
        }
        AsView { volume }
    }

    /// Intersection size (Table 3 cells).
    pub fn intersection_len(&self, other: &AsView) -> usize {
        self.volume.keys().filter(|a| other.contains(**a)).count()
    }

    /// Relative volume of an AS (share of the dataset total), for the
    /// Figure 6/7 comparisons.
    pub fn relative_volume(&self, asn: Asn) -> f64 {
        let total = self.total_volume();
        if total <= 0.0 {
            return 0.0;
        }
        self.volume.get(&asn).copied().unwrap_or(0.0) / total
    }
}

/// A /24-granularity view (Table 1).
#[derive(Debug, Clone, Default)]
pub struct PrefixView {
    /// The covered space (normalised to /24 units).
    pub set: PrefixSet,
    /// Optional per-/24 volume for datasets that have one.
    pub volume: HashMap<Prefix, f64>,
}

impl PrefixView {
    /// Builds from per-/24 volumes.
    pub fn from_volumes<I: IntoIterator<Item = (Prefix, f64)>>(iter: I) -> Self {
        let mut volume = HashMap::new();
        let mut set = PrefixSet::new();
        for (p, v) in iter {
            let p24 = if p.len() > 24 {
                p.supernet(24).expect("<=24")
            } else {
                p
            };
            set.insert(p24);
            *volume.entry(p24).or_insert(0.0) += v;
        }
        PrefixView { set, volume }
    }

    /// Builds a set-only view from arbitrary prefixes.
    pub fn from_set(set: PrefixSet) -> Self {
        PrefixView {
            set,
            volume: HashMap::new(),
        }
    }

    /// /24 count.
    pub fn num_slash24s(&self) -> u64 {
        self.set.num_slash24s()
    }

    /// Intersection /24 count with another view (Table 1 cells).
    pub fn intersection_slash24s(&self, other: &PrefixView) -> u64 {
        self.set.intersection_slash24s(&other.set)
    }

    /// The dense /24 membership of this view, for word-wise set
    /// algebra. Building the full overlap matrix materialises each
    /// dataset's bitset once and answers every pairwise cell with an
    /// AND + popcount instead of a trie walk per pair.
    pub fn slash24_bitset(&self) -> Slash24Bitset {
        Slash24Bitset::from_prefixes(self.set.prefixes().iter())
    }

    /// Total volume.
    pub fn total_volume(&self) -> f64 {
        self.volume.values().sum()
    }

    /// Volume of this dataset inside another dataset's space — e.g.
    /// "prefixes identified as active are responsible for 95.2% of
    /// Microsoft clients volume" uses
    /// `ms_clients.volume_in(&cache_probing)`.
    pub fn volume_in(&self, other: &PrefixView) -> f64 {
        self.volume
            .iter()
            .filter(|(p, _)| other.set.contains_slash24(**p))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Union with another view.
    pub fn union(&self, other: &PrefixView) -> PrefixView {
        let mut volume = self.volume.clone();
        for (p, v) in &other.volume {
            *volume.entry(*p).or_insert(0.0) += v;
        }
        PrefixView {
            set: self.set.union(&other.set),
            volume,
        }
    }

    /// The AS-level projection of this view through a RIB: per-AS
    /// volume (or /24 counts when the dataset has no volume measure).
    pub fn to_as_view(&self, rib: &Rib) -> AsView {
        let mut volume: HashMap<Asn, f64> = HashMap::new();
        if self.volume.is_empty() {
            // Set-only dataset: count /24s per AS as a stand-in volume
            // of 0 (set membership only).
            for p in self.set.prefixes() {
                for asn in rib.origins_within(p) {
                    volume.entry(asn).or_insert(0.0);
                }
            }
        } else {
            for (p, v) in &self.volume {
                if let Some(asn) = rib.origin_of_prefix(*p) {
                    *volume.entry(asn).or_insert(0.0) += v;
                }
            }
        }
        AsView { volume }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn as_view_basics() {
        let a = AsView::from_volumes([(Asn(1), 10.0), (Asn(2), 30.0), (Asn(1), 5.0)]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_volume(), 45.0);
        assert_eq!(a.relative_volume(Asn(2)), 30.0 / 45.0);
        assert_eq!(a.relative_volume(Asn(9)), 0.0);
        let b = AsView::from_set([Asn(2), Asn(3)]);
        assert_eq!(a.intersection_len(&b), 1);
        assert_eq!(a.volume_in(&b), 30.0);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn prefix_view_normalises_and_counts() {
        let v = PrefixView::from_volumes([
            (p("10.1.2.0/24"), 5.0),
            (p("10.1.2.128/25"), 3.0), // same /24 after normalisation
            (p("10.9.0.0/24"), 2.0),
        ]);
        assert_eq!(v.num_slash24s(), 2);
        assert_eq!(v.volume[&p("10.1.2.0/24")], 8.0);
        assert_eq!(v.total_volume(), 10.0);
    }

    #[test]
    fn bitset_agrees_with_trie_set_algebra() {
        let a = PrefixView::from_set(PrefixSet::from_prefixes([
            p("10.1.0.0/16"),
            p("10.9.0.0/24"),
        ]));
        let b = PrefixView::from_set(PrefixSet::from_prefixes([
            p("10.1.128.0/17"),
            p("172.16.0.0/24"),
        ]));
        assert_eq!(a.slash24_bitset().count(), a.num_slash24s());
        assert_eq!(b.slash24_bitset().count(), b.num_slash24s());
        assert_eq!(
            a.slash24_bitset().and_count(&b.slash24_bitset()),
            a.intersection_slash24s(&b)
        );
    }

    #[test]
    fn prefix_volume_in() {
        let clients =
            PrefixView::from_volumes([(p("10.1.2.0/24"), 90.0), (p("10.9.0.0/24"), 10.0)]);
        let probing = PrefixView::from_set(PrefixSet::from_prefixes([p("10.1.0.0/16")]));
        assert_eq!(clients.volume_in(&probing), 90.0);
        assert_eq!(clients.intersection_slash24s(&probing), 1);
    }

    #[test]
    fn as_projection() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(100));
        rib.announce(p("10.9.0.0/24"), Asn(200));
        let v = PrefixView::from_volumes([
            (p("10.1.2.0/24"), 90.0),
            (p("10.1.3.0/24"), 10.0),
            (p("10.9.0.0/24"), 7.0),
            (p("8.8.8.0/24"), 3.0), // unrouted → dropped
        ]);
        let a = v.to_as_view(&rib);
        assert_eq!(a.len(), 2);
        assert_eq!(a.volume[&Asn(100)], 100.0);
        assert_eq!(a.volume[&Asn(200)], 7.0);
        // Set-only projection keeps AS membership without volume.
        let s = PrefixView::from_set(PrefixSet::from_prefixes([p("10.1.0.0/16")]));
        let sa = s.to_as_view(&rib);
        assert!(sa.contains(Asn(100)));
        assert_eq!(sa.total_volume(), 0.0);
    }
}
