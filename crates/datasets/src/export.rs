//! Plain-text (CSV) export of the shareable datasets.
//!
//! The paper commits to sharing its measurement data ("we are happy to
//! share our data (except proprietary data we use for validation)").
//! These writers produce exactly that split: the technique outputs
//! export cleanly; the Microsoft-derived views exist only inside the
//! validation layer and deliberately have no exporter here.

use std::fmt::Write as _;

use clientmap_net::Rib;

use crate::{ApnicDataset, AsView, PrefixView};

/// Exports a prefix view as `prefix,volume` rows (volume empty for
/// set-only datasets like cache probing).
pub fn prefix_view_csv(view: &PrefixView) -> String {
    let mut out = String::from("prefix,volume\n");
    let mut rows: Vec<(clientmap_net::Prefix, Option<f64>)> = view
        .set
        .prefixes()
        .iter()
        .map(|p| (*p, view.volume.get(p).copied()))
        .collect();
    rows.sort_by_key(|(p, _)| *p);
    for (p, v) in rows {
        match v {
            Some(v) => {
                let _ = writeln!(out, "{p},{v}");
            }
            None => {
                let _ = writeln!(out, "{p},");
            }
        }
    }
    out
}

/// Exports an AS view as `asn,volume` rows.
pub fn as_view_csv(view: &AsView) -> String {
    let mut out = String::from("asn,volume\n");
    let mut rows: Vec<(u32, f64)> = view.volume.iter().map(|(a, v)| (a.0, *v)).collect();
    rows.sort_unstable_by_key(|(a, _)| *a);
    for (a, v) in rows {
        let _ = writeln!(out, "AS{a},{v}");
    }
    out
}

/// Exports the APNIC-style estimates as `asn,estimated_users`.
pub fn apnic_csv(apnic: &ApnicDataset) -> String {
    let mut out = String::from("asn,estimated_users\n");
    let mut rows: Vec<(u32, f64)> = apnic.estimates.iter().map(|(a, v)| (a.0, *v)).collect();
    rows.sort_unstable_by_key(|(a, _)| *a);
    for (a, v) in rows {
        let _ = writeln!(out, "AS{a},{v:.0}");
    }
    out
}

/// Exports a prefix view joined with its origin ASes:
/// `prefix,asn,volume`.
pub fn prefix_view_with_origins_csv(view: &PrefixView, rib: &Rib) -> String {
    let mut out = String::from("prefix,asn,volume\n");
    let mut prefixes = view.set.prefixes();
    prefixes.sort();
    for p in prefixes {
        let origin = rib
            .origin_of_prefix(p)
            .map(|a| a.to_string())
            .unwrap_or_default();
        let volume = view
            .volume
            .get(&p)
            .map(|v| v.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "{p},{origin},{volume}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_net::{Asn, Prefix, PrefixSet};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_csv_round_shape() {
        let v = PrefixView::from_volumes([(p("10.1.2.0/24"), 5.0), (p("9.0.0.0/24"), 2.0)]);
        let csv = prefix_view_csv(&v);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "prefix,volume");
        assert_eq!(lines[1], "9.0.0.0/24,2");
        assert_eq!(lines[2], "10.1.2.0/24,5");
    }

    #[test]
    fn set_only_prefixes_have_empty_volume() {
        let v = PrefixView::from_set(PrefixSet::from_prefixes([p("10.1.0.0/16")]));
        let csv = prefix_view_csv(&v);
        assert!(csv.contains("10.1.0.0/16,\n"), "{csv}");
    }

    #[test]
    fn as_csv_sorted() {
        let v = AsView::from_volumes([(Asn(300), 1.0), (Asn(2), 9.5)]);
        let csv = as_view_csv(&v);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "AS2,9.5");
        assert_eq!(lines[2], "AS300,1");
    }

    #[test]
    fn apnic_csv_format() {
        let a = ApnicDataset {
            estimates: [(Asn(7), 1234.6)].into_iter().collect(),
        };
        assert_eq!(apnic_csv(&a), "asn,estimated_users\nAS7,1235\n");
    }

    #[test]
    fn origins_join() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(55));
        let v = PrefixView::from_volumes([(p("10.1.2.0/24"), 3.0), (p("8.8.8.0/24"), 1.0)]);
        let csv = prefix_view_with_origins_csv(&v, &rib);
        assert!(csv.contains("10.1.2.0/24,AS55,3"), "{csv}");
        assert!(
            csv.contains("8.8.8.0/24,,1"),
            "unrouted keeps empty ASN: {csv}"
        );
    }
}
