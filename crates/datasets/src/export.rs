//! Plain-text (CSV) export of the shareable datasets.
//!
//! The paper commits to sharing its measurement data ("we are happy to
//! share our data (except proprietary data we use for validation)").
//! These writers produce exactly that split: the technique outputs
//! export cleanly; the Microsoft-derived views exist only inside the
//! validation layer and deliberately have no exporter here.
//!
//! Every writer has a matching `parse_*` reader, and the pair is
//! lossless: export → parse reproduces the view (checked by the
//! round-trip test suite). That is what makes the shared files usable
//! as an interchange format rather than a one-way dump.

use std::fmt::Write as _;

use clientmap_net::{Asn, Prefix, PrefixSet, Rib};

use crate::{ApnicDataset, AsView, PrefixView};

/// Why a CSV could not be parsed back into a dataset view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvParseError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for CsvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvParseError {}

/// Splits one data row into exactly `n` comma fields.
fn fields(row: &str, n: usize, line: usize) -> Result<Vec<&str>, CsvParseError> {
    let parts: Vec<&str> = row.split(',').collect();
    if parts.len() != n {
        return Err(CsvParseError {
            line,
            message: format!("expected {n} fields, got {}: {row:?}", parts.len()),
        });
    }
    Ok(parts)
}

fn parse_err<E: std::fmt::Display>(
    line: usize,
    what: &str,
) -> impl FnOnce(E) -> CsvParseError + '_ {
    move |e| CsvParseError {
        line,
        message: format!("bad {what}: {e}"),
    }
}

/// Checks the header row and returns the data rows with line numbers.
fn data_rows<'a>(csv: &'a str, header: &str) -> Result<Vec<(usize, &'a str)>, CsvParseError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == header => {}
        other => {
            return Err(CsvParseError {
                line: 1,
                message: format!(
                    "expected header {header:?}, got {:?}",
                    other.map(|(_, h)| h)
                ),
            })
        }
    }
    Ok(lines
        .filter(|(_, row)| !row.is_empty())
        .map(|(i, row)| (i + 1, row))
        .collect())
}

fn parse_asn(s: &str, line: usize) -> Result<Asn, CsvParseError> {
    let digits = s.strip_prefix("AS").ok_or_else(|| CsvParseError {
        line,
        message: format!("ASN must start with 'AS': {s:?}"),
    })?;
    Ok(Asn(digits.parse().map_err(parse_err(line, "ASN"))?))
}

/// Exports a prefix view as `prefix,volume` rows (volume empty for
/// set-only datasets like cache probing).
pub fn prefix_view_csv(view: &PrefixView) -> String {
    let mut out = String::from("prefix,volume\n");
    let mut rows: Vec<(clientmap_net::Prefix, Option<f64>)> = view
        .set
        .prefixes()
        .iter()
        .map(|p| (*p, view.volume.get(p).copied()))
        .collect();
    rows.sort_by_key(|(p, _)| *p);
    for (p, v) in rows {
        match v {
            Some(v) => {
                let _ = writeln!(out, "{p},{v}");
            }
            None => {
                let _ = writeln!(out, "{p},");
            }
        }
    }
    out
}

/// Parses [`prefix_view_csv`] output back into a [`PrefixView`].
pub fn parse_prefix_view_csv(csv: &str) -> Result<PrefixView, CsvParseError> {
    let mut set = PrefixSet::new();
    let mut volume = std::collections::HashMap::new();
    for (line, row) in data_rows(csv, "prefix,volume")? {
        let parts = fields(row, 2, line)?;
        let p: Prefix = parts[0].parse().map_err(parse_err(line, "prefix"))?;
        set.insert(p);
        if !parts[1].is_empty() {
            let v: f64 = parts[1].parse().map_err(parse_err(line, "volume"))?;
            *volume.entry(p).or_insert(0.0) += v;
        }
    }
    Ok(PrefixView { set, volume })
}

/// Exports an AS view as `asn,volume` rows.
pub fn as_view_csv(view: &AsView) -> String {
    let mut out = String::from("asn,volume\n");
    let mut rows: Vec<(u32, f64)> = view.volume.iter().map(|(a, v)| (a.0, *v)).collect();
    rows.sort_unstable_by_key(|(a, _)| *a);
    for (a, v) in rows {
        let _ = writeln!(out, "AS{a},{v}");
    }
    out
}

/// Parses [`as_view_csv`] output back into an [`AsView`].
pub fn parse_as_view_csv(csv: &str) -> Result<AsView, CsvParseError> {
    let mut volume = std::collections::HashMap::new();
    for (line, row) in data_rows(csv, "asn,volume")? {
        let parts = fields(row, 2, line)?;
        let asn = parse_asn(parts[0], line)?;
        let v: f64 = parts[1].parse().map_err(parse_err(line, "volume"))?;
        *volume.entry(asn).or_insert(0.0) += v;
    }
    Ok(AsView { volume })
}

/// Exports the APNIC-style estimates as `asn,estimated_users`.
pub fn apnic_csv(apnic: &ApnicDataset) -> String {
    let mut out = String::from("asn,estimated_users\n");
    let mut rows: Vec<(u32, f64)> = apnic.estimates.iter().map(|(a, v)| (a.0, *v)).collect();
    rows.sort_unstable_by_key(|(a, _)| *a);
    for (a, v) in rows {
        let _ = writeln!(out, "AS{a},{v:.0}");
    }
    out
}

/// Parses [`apnic_csv`] output back into an [`ApnicDataset`].
///
/// The writer rounds estimates to whole users (`{v:.0}`), so the
/// round-trip is exact for already-whole estimates and
/// whole-number-close otherwise.
pub fn parse_apnic_csv(csv: &str) -> Result<ApnicDataset, CsvParseError> {
    let mut estimates = std::collections::HashMap::new();
    for (line, row) in data_rows(csv, "asn,estimated_users")? {
        let parts = fields(row, 2, line)?;
        let asn = parse_asn(parts[0], line)?;
        let v: f64 = parts[1].parse().map_err(parse_err(line, "estimate"))?;
        estimates.insert(asn, v);
    }
    Ok(ApnicDataset { estimates })
}

/// Exports a prefix view joined with its origin ASes:
/// `prefix,asn,volume`.
pub fn prefix_view_with_origins_csv(view: &PrefixView, rib: &Rib) -> String {
    let mut out = String::from("prefix,asn,volume\n");
    let mut prefixes = view.set.prefixes();
    prefixes.sort();
    for p in prefixes {
        let origin = rib
            .origin_of_prefix(p)
            .map(|a| a.to_string())
            .unwrap_or_default();
        let volume = view
            .volume
            .get(&p)
            .map(|v| v.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "{p},{origin},{volume}");
    }
    out
}

/// Parses [`prefix_view_with_origins_csv`] output: the view plus the
/// `(prefix, origin AS)` pairs the join carried (unrouted prefixes
/// have no pair).
pub fn parse_prefix_view_with_origins_csv(
    csv: &str,
) -> Result<(PrefixView, Vec<(Prefix, Asn)>), CsvParseError> {
    let mut set = PrefixSet::new();
    let mut volume = std::collections::HashMap::new();
    let mut origins = Vec::new();
    for (line, row) in data_rows(csv, "prefix,asn,volume")? {
        let parts = fields(row, 3, line)?;
        let p: Prefix = parts[0].parse().map_err(parse_err(line, "prefix"))?;
        set.insert(p);
        if !parts[1].is_empty() {
            origins.push((p, parse_asn(parts[1], line)?));
        }
        if !parts[2].is_empty() {
            let v: f64 = parts[2].parse().map_err(parse_err(line, "volume"))?;
            *volume.entry(p).or_insert(0.0) += v;
        }
    }
    Ok((PrefixView { set, volume }, origins))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_csv_round_shape() {
        let v = PrefixView::from_volumes([(p("10.1.2.0/24"), 5.0), (p("9.0.0.0/24"), 2.0)]);
        let csv = prefix_view_csv(&v);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "prefix,volume");
        assert_eq!(lines[1], "9.0.0.0/24,2");
        assert_eq!(lines[2], "10.1.2.0/24,5");
    }

    #[test]
    fn set_only_prefixes_have_empty_volume() {
        let v = PrefixView::from_set(PrefixSet::from_prefixes([p("10.1.0.0/16")]));
        let csv = prefix_view_csv(&v);
        assert!(csv.contains("10.1.0.0/16,\n"), "{csv}");
    }

    #[test]
    fn as_csv_sorted() {
        let v = AsView::from_volumes([(Asn(300), 1.0), (Asn(2), 9.5)]);
        let csv = as_view_csv(&v);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "AS2,9.5");
        assert_eq!(lines[2], "AS300,1");
    }

    #[test]
    fn apnic_csv_format() {
        let a = ApnicDataset {
            estimates: [(Asn(7), 1234.6)].into_iter().collect(),
        };
        assert_eq!(apnic_csv(&a), "asn,estimated_users\nAS7,1235\n");
    }

    #[test]
    fn origins_join() {
        let mut rib = Rib::new();
        rib.announce(p("10.1.0.0/16"), Asn(55));
        let v = PrefixView::from_volumes([(p("10.1.2.0/24"), 3.0), (p("8.8.8.0/24"), 1.0)]);
        let csv = prefix_view_with_origins_csv(&v, &rib);
        assert!(csv.contains("10.1.2.0/24,AS55,3"), "{csv}");
        assert!(
            csv.contains("8.8.8.0/24,,1"),
            "unrouted keeps empty ASN: {csv}"
        );
    }
}
