//! Export → parse round-trips for every shareable dataset writer.
//!
//! The CSV files are the paper's interchange format ("we are happy to
//! share our data"); these tests prove the writers and readers in
//! `clientmap_datasets::export` are lossless inverses, so a consumer
//! parsing a shared file reconstructs exactly the view that was
//! exported — including on a real end-to-end pipeline output, not just
//! hand-built fixtures.

use clientmap_datasets::export::{
    apnic_csv, as_view_csv, parse_apnic_csv, parse_as_view_csv, parse_prefix_view_csv,
    parse_prefix_view_with_origins_csv, prefix_view_csv, prefix_view_with_origins_csv,
};
use clientmap_datasets::{ApnicDataset, AsView, PrefixView};
use clientmap_net::{Asn, Prefix, PrefixSet, Rib};

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// `PrefixSet` has no `PartialEq`; its canonical form is the sorted
/// disjoint prefix list.
fn assert_views_equal(a: &PrefixView, b: &PrefixView) {
    assert_eq!(a.set.prefixes(), b.set.prefixes());
    assert_eq!(a.num_slash24s(), b.num_slash24s());
    let sorted = |v: &PrefixView| {
        let mut rows: Vec<(Prefix, f64)> = v.volume.iter().map(|(p, v)| (*p, *v)).collect();
        rows.sort_by_key(|(p, _)| *p);
        rows
    };
    assert_eq!(sorted(a), sorted(b));
}

#[test]
fn prefix_view_round_trips() {
    let view = PrefixView::from_volumes([
        (p("10.1.2.0/24"), 5.5),
        (p("10.9.0.0/24"), 2.0),
        (p("172.16.0.0/24"), 0.25),
    ]);
    let back = parse_prefix_view_csv(&prefix_view_csv(&view)).unwrap();
    assert_views_equal(&view, &back);
}

#[test]
fn set_only_prefix_view_round_trips_without_volumes() {
    let view = PrefixView::from_set(PrefixSet::from_prefixes([
        p("10.1.0.0/16"),
        p("192.0.2.0/24"),
    ]));
    let back = parse_prefix_view_csv(&prefix_view_csv(&view)).unwrap();
    assert_views_equal(&view, &back);
    assert!(back.volume.is_empty());
}

#[test]
fn as_view_round_trips() {
    let view = AsView::from_volumes([(Asn(300), 1.5), (Asn(2), 9.5), (Asn(65000), 0.0)]);
    let back = parse_as_view_csv(&as_view_csv(&view)).unwrap();
    let sorted = |v: &AsView| {
        let mut rows: Vec<(Asn, f64)> = v.volume.iter().map(|(a, v)| (*a, *v)).collect();
        rows.sort_by_key(|(a, _)| a.0);
        rows
    };
    assert_eq!(sorted(&view), sorted(&back));
}

#[test]
fn apnic_round_trips_at_whole_user_precision() {
    // The writer rounds to whole users, so whole-valued estimates are
    // exact through the round-trip.
    let apnic = ApnicDataset {
        estimates: [(Asn(7), 1235.0), (Asn(99), 17.0)].into_iter().collect(),
    };
    let back = parse_apnic_csv(&apnic_csv(&apnic)).unwrap();
    assert_eq!(back.estimates, apnic.estimates);

    // Fractional estimates land on the written whole number.
    let fractional = ApnicDataset {
        estimates: [(Asn(7), 1234.6)].into_iter().collect(),
    };
    let back = parse_apnic_csv(&apnic_csv(&fractional)).unwrap();
    assert_eq!(back.estimates[&Asn(7)], 1235.0);
}

#[test]
fn origins_join_round_trips() {
    let mut rib = Rib::new();
    rib.announce(p("10.1.0.0/16"), Asn(55));
    rib.announce(p("10.9.0.0/24"), Asn(77));
    let view = PrefixView::from_volumes([
        (p("10.1.2.0/24"), 3.0),
        (p("10.9.0.0/24"), 1.0),
        (p("8.8.8.0/24"), 4.0), // unrouted: empty ASN column
    ]);
    let (back, origins) =
        parse_prefix_view_with_origins_csv(&prefix_view_with_origins_csv(&view, &rib)).unwrap();
    assert_views_equal(&view, &back);
    assert_eq!(
        origins,
        vec![(p("10.1.2.0/24"), Asn(55)), (p("10.9.0.0/24"), Asn(77))]
    );
}

#[test]
fn malformed_rows_are_rejected_with_line_numbers() {
    let err = parse_prefix_view_csv("wrong,header\n").unwrap_err();
    assert_eq!(err.line, 1);

    let err = parse_prefix_view_csv("prefix,volume\n10.0.0.0/24,1\nnot-a-prefix,2\n").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("prefix"), "{err}");

    let err = parse_as_view_csv("asn,volume\n55,1\n").unwrap_err();
    assert!(err.message.contains("AS"), "{err}");

    let err = parse_apnic_csv("asn,estimated_users\nAS7,many\n").unwrap_err();
    assert!(err.message.contains("estimate"), "{err}");
}

#[test]
fn pipeline_exports_round_trip() {
    // The real thing: a tiny end-to-end run's shareable views survive
    // export → parse unchanged.
    use clientmap_core::{Pipeline, PipelineConfig};
    use clientmap_datasets::DatasetId;
    let out = Pipeline::run(PipelineConfig::tiny(11)).expect("tiny run is healthy");

    let probing = out.bundle.prefix_view(DatasetId::CacheProbing).unwrap();
    let back = parse_prefix_view_csv(&prefix_view_csv(&probing)).unwrap();
    assert_views_equal(&probing, &back);

    let dns = out.bundle.as_view(DatasetId::DnsLogs);
    let back = parse_as_view_csv(&as_view_csv(&dns)).unwrap();
    assert_eq!(back.len(), dns.len());
    assert!(dns.set().iter().all(|a| back.contains(*a)));

    let (joined, origins) = parse_prefix_view_with_origins_csv(&prefix_view_with_origins_csv(
        &probing,
        &out.sim.world().rib,
    ))
    .unwrap();
    assert_views_equal(&probing, &joined);
    assert!(!origins.is_empty());
}
