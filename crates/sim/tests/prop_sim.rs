//! Cross-module properties of the simulator (DESIGN.md §6).

use clientmap_net::Prefix;
use clientmap_sim::{Sim, SimTime};
use clientmap_world::{World, WorldConfig};
use proptest::prelude::*;

fn sim() -> &'static Sim {
    static SIM: std::sync::OnceLock<Sim> = std::sync::OnceLock::new();
    SIM.get_or_init(|| Sim::new(World::generate(WorldConfig::tiny(303))))
}

/// Scope alignment: an authoritative's ECS response scope never spans
/// announced prefixes of different origin ASes (CDN mapping follows
/// BGP aggregates). This is what keeps AS-level attribution of cache
/// hits sound.
#[test]
fn scopes_never_cross_origin_boundaries() {
    let s = sim();
    let world = s.world();
    let domains = ["www.google.com", "www.wikipedia.org", "facebook.com"];
    for (i, s24) in world.slash24s.iter().enumerate().step_by(7) {
        for d in &domains {
            let name = d.parse().unwrap();
            let Some(ans) = s.authoritative_scan(&name, s24.prefix, SimTime::ZERO) else {
                continue;
            };
            let Some(scope) = ans.scope else { continue };
            if scope.is_default() {
                continue;
            }
            let origins = world.rib.origins_within(scope);
            assert!(
                origins.len() <= 1,
                "scope {scope} for {d} spans origins {origins:?} (prefix #{i})"
            );
        }
    }
}

/// The same query at the same time always gets the same answer
/// (end-to-end determinism of the wire path).
#[test]
fn gpdns_wire_path_deterministic() {
    use clientmap_dns::{wire, Message, Question};
    let world1 = World::generate(WorldConfig::tiny(304));
    let world2 = World::generate(WorldConfig::tiny(304));
    let mut sim1 = Sim::new(world1);
    let mut sim2 = Sim::new(world2);
    let coord = clientmap_net::GeoCoord::new(48.0, 10.0).unwrap();
    for i in 0..50u16 {
        let prefix = Prefix::new(u32::from(i) << 20, 20).unwrap();
        let q = Message::query(i, Question::a("www.google.com").unwrap())
            .with_recursion_desired(false)
            .with_ecs(prefix);
        let pkt = wire::encode(&q).unwrap();
        let t = SimTime::from_hours(9) + SimTime::from_millis(u64::from(i) * 40);
        let r1 = sim1.gpdns_query(5, coord, &pkt, clientmap_sim::Transport::Tcp, t);
        let r2 = sim2.gpdns_query(5, coord, &pkt, clientmap_sim::Transport::Tcp, t);
        assert_eq!(r1, r2, "query {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any ECS prefix (routed or not) gets a well-formed authoritative
    /// answer for ECS domains: scope ⊆/⊇ relationship with the query and
    /// TTL matching the catalog.
    #[test]
    fn authoritative_answers_well_formed(addr in any::<u32>(), len in 8u8..=24) {
        let s = sim();
        let ecs = Prefix::new(addr, len).unwrap();
        let name: clientmap_dns::DomainName = "www.google.com".parse().unwrap();
        let ans = s
            .authoritative_scan(&name, ecs, SimTime::ZERO)
            .expect("catalog domain answers");
        prop_assert_eq!(ans.records[0].ttl, 300);
        if let Some(scope) = ans.scope {
            prop_assert!(
                scope.is_default()
                    || scope.contains(ecs)
                    || ecs.contains(scope)
                    || scope.addr() == ecs.addr(),
                "scope {} unrelated to query {}", scope, ecs
            );
        }
    }

    /// Probe outcomes classify exhaustively and hits always carry a
    /// scope consistent with the query source.
    #[test]
    fn classify_response_total(bytes in prop::collection::vec(any::<u8>(), 0..120)) {
        use clientmap_sim::{GooglePublicDns, ProbeOutcome};
        // Must never panic, whatever bytes arrive.
        let outcome = GooglePublicDns::classify_response(Some(&bytes));
        let total = matches!(
            outcome,
            ProbeOutcome::Hit { .. }
                | ProbeOutcome::HitScopeZero
                | ProbeOutcome::Miss
                | ProbeOutcome::Dropped
        );
        prop_assert!(total);
    }
}
