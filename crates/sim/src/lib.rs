//! # clientmap-sim
//!
//! The simulated Internet services the measurement techniques run
//! against — every proprietary or external system the paper touches,
//! rebuilt from its public description (DESIGN.md §2):
//!
//! - **Google Public DNS** ([`GooglePublicDns`]): 45 anycast PoPs (22
//!   reachable from cloud VMs, 5 active but unreachable, 18 inactive),
//!   multiple independent cache pools per PoP, ECS-scoped cache entries,
//!   client-supplied-ECS handling, non-recursive query semantics, and a
//!   UDP rate limit that TCP bypasses (paper §3.1.1).
//! - **Authoritative servers** ([`Authoritatives`]): per-domain ECS
//!   scope policies (Wikipedia /16–/18, Google-style /20–/24), TTLs, and
//!   the mostly-stable response scopes Table 2 measures.
//! - **Anycast catchments** ([`Catchments`]): noisy-nearest routing of
//!   client prefixes and cloud vantage points to PoPs.
//! - **The Microsoft CDN + Traffic Manager** ([`cdn`]): HTTP access
//!   logs by client /24, recursive-resolver observations, and the ECS
//!   prefixes seen at the Traffic Manager authoritative — the three
//!   private validation datasets of §4.
//! - **Root DNS servers** ([`roots`]): DITL-style two-day traces mixing
//!   Chromium interception probes with NXDOMAIN background noise.
//!
//! ## Faithfulness model
//!
//! Client query *arrivals* are Poisson with rates from
//! [`clientmap_world::activity`]. Rather than materialising billions of
//! events, cache-entry liveness is sampled from the closed form
//! `P(live at t) = 1 − exp(−λ(t)·min(TTL, t))`, deterministically keyed
//! by (seed, PoP, pool, scope, domain, TTL-window) — statistically
//! exactly what an event-driven run would produce for probes spaced
//! beyond a TTL, at a millionth of the cost. The probing side (what the
//! measurement tool itself does) *is* simulated query by query, through
//! the real wire codec.

#![warn(missing_docs)]

pub mod cdn;
pub mod microsim;
pub mod resolvers;
pub mod roots;

mod anycast;
mod authoritative;
mod events;
mod gpdns;
mod pops;
mod sim;
mod time;

pub use anycast::Catchments;
pub use authoritative::Authoritatives;
pub use events::{EventQueue, Scheduled};
pub use gpdns::{
    BatchConn, BatchDomain, BatchStats, GooglePublicDns, GpdnsMetrics, GpdnsSession, GpdnsStats,
    ProbeOutcome, ScopeLane, Transport, POOLS_PER_POP,
};
pub use pops::{pop_catalog, PopId, PopSite, PopStatus};
pub use sim::{Sim, SimView};
pub use time::SimTime;
