//! Event-level micro-simulation validating the analytic cache model.
//!
//! The production Google-cache model answers probes from the closed
//! form `P(live) = 1 − exp(−λ·min(TTL, t))` (see the `gpdns` module),
//! which is exact for Poisson arrivals but worth *demonstrating*, not
//! just asserting. This module rebuilds a PoP's caches the slow way —
//! actual Poisson arrival events drawn through the [`EventQueue`],
//! inserted into real [`EcsCache`] instances (one per pool), probed by
//! real lookups — and compares the measured hit rates against the
//! closed form for the same scopes.
//!
//! Besides validating the approximation, this is the reference
//! implementation future contributors can diff the fast path against.

use clientmap_dns::{CacheKey, DomainName, EcsCache, Record, RrType};
use clientmap_net::{Prefix, SeedMixer};
use clientmap_world::activity::diurnal_multiplier;

use crate::gpdns::POOLS_PER_POP;
use crate::{EventQueue, PopId, Sim, SimTime};

/// Per-scope comparison of measured vs analytic hit rates.
#[derive(Debug, Clone, Copy)]
pub struct ScopeComparison {
    /// The scope.
    pub scope: Prefix,
    /// Mean arrival rate (qps, diurnal mean).
    pub rate: f64,
    /// Hit rate measured against event-fed real caches.
    pub event_hit_rate: f64,
    /// Hit rate predicted by the closed form the fast path uses.
    pub analytic_hit_rate: f64,
}

/// The validation report.
#[derive(Debug, Clone)]
pub struct MicroSimReport {
    /// Per-scope comparisons.
    pub scopes: Vec<ScopeComparison>,
    /// Probe events per scope.
    pub probes_per_scope: u32,
    /// Mean absolute difference between the two hit rates.
    pub mean_abs_diff: f64,
    /// Worst per-scope difference.
    pub max_abs_diff: f64,
}

/// One queued event in the micro-simulation.
enum Event {
    /// A client query for `scope` arrives (inserted into a random pool).
    Arrival { scope_idx: usize },
    /// A probe samples `redundancy` random pools for `scope`.
    Probe { scope_idx: usize },
}

/// Draws an exponential inter-arrival time with the given rate.
fn exp_draw(state: &mut u64, rate: f64) -> f64 {
    *state = clientmap_net::splitmix64(*state);
    let u = ((*state >> 11) as f64 / (1u64 << 53) as f64).clamp(f64::MIN_POSITIVE, 1.0);
    -u.ln() / rate
}

/// Runs the micro-simulation for the heaviest `max_scopes` scopes of
/// `domain` at `pop` over `hours` of simulated time.
///
/// Probes fire every `TTL` seconds per scope (so each probe lands in a
/// fresh TTL window — independent samples), each sampling `redundancy`
/// pools, mirroring the real prober.
pub fn validate_liveness_model(
    sim: &Sim,
    pop: PopId,
    domain: &DomainName,
    max_scopes: usize,
    hours: f64,
    redundancy: u32,
    seed: u64,
) -> MicroSimReport {
    let gpdns = sim.gpdns();
    let ttl = gpdns.domain_ttl(domain).unwrap_or(300);
    let ttl_s = f64::from(ttl);
    let amplitude = sim.world().config.diurnal_amplitude;
    let scopes: Vec<(Prefix, f64)> = gpdns
        .scopes_at(pop, domain)
        .into_iter()
        .take(max_scopes)
        .collect();
    let lons: Vec<f64> = scopes
        .iter()
        .map(|(p, _)| {
            gpdns
                .scope_load(pop, domain, *p)
                .map(|(_, lon)| lon)
                .unwrap_or(0.0)
        })
        .collect();

    // One real cache per pool, sized to hold everything.
    let mut pools: Vec<EcsCache> = (0..POOLS_PER_POP)
        .map(|_| EcsCache::new(scopes.len().max(1) * 4))
        .collect();
    let key = CacheKey::new(domain.clone(), RrType::A);
    let record = Record::a(domain.clone(), ttl, 0x60AA_0001);

    let horizon = SimTime::from_secs_f64(hours * 3600.0);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut rng = SeedMixer::new(seed).mix_str("microsim").finish();

    // Seed one arrival per scope (non-homogeneous Poisson by thinning:
    // draw at the peak rate, accept with diurnal(t)/peak).
    let peak = 1.0 + amplitude;
    for (i, (_, rate)) in scopes.iter().enumerate() {
        let dt = exp_draw(&mut rng, rate.max(1e-12) * peak);
        queue.push(SimTime::from_secs_f64(dt), Event::Arrival { scope_idx: i });
        // Probes start after one TTL so caches are warm.
        queue.push(
            SimTime::from_secs(u64::from(ttl)),
            Event::Probe { scope_idx: i },
        );
    }

    let mut hits = vec![0u32; scopes.len()];
    let mut probes = vec![0u32; scopes.len()];
    let mut analytic_acc = vec![0f64; scopes.len()];

    while let Some((t, event)) = queue.pop() {
        if t > horizon {
            break;
        }
        match event {
            Event::Arrival { scope_idx } => {
                let (scope, rate) = scopes[scope_idx];
                // Thinning for the diurnal profile.
                rng = clientmap_net::splitmix64(rng);
                let accept = ((rng >> 11) as f64 / (1u64 << 53) as f64)
                    < diurnal_multiplier(t.as_secs_f64(), lons[scope_idx], amplitude) / peak;
                if accept {
                    rng = clientmap_net::splitmix64(rng);
                    let pool = (rng % POOLS_PER_POP as u64) as usize;
                    pools[pool].insert(
                        key.clone(),
                        scope,
                        vec![record.clone()],
                        ttl,
                        t.as_millis(),
                    );
                }
                let dt = exp_draw(&mut rng, rate.max(1e-12) * peak);
                queue.push(t + SimTime::from_secs_f64(dt), Event::Arrival { scope_idx });
            }
            Event::Probe { scope_idx } => {
                let (scope, rate) = scopes[scope_idx];
                probes[scope_idx] += 1;
                let mut hit = false;
                for _ in 0..redundancy {
                    rng = clientmap_net::splitmix64(rng);
                    let pool = (rng % POOLS_PER_POP as u64) as usize;
                    if pools[pool].lookup(&key, scope, t.as_millis()).is_hit() {
                        hit = true;
                    }
                }
                if hit {
                    hits[scope_idx] += 1;
                }
                // The closed form for the same instant: per-pool liveness,
                // combined over the expected distinct pools sampled.
                let k = POOLS_PER_POP as f64;
                let lambda = rate * diurnal_multiplier(t.as_secs_f64(), lons[scope_idx], amplitude);
                let p_pool = 1.0 - (-lambda * ttl_s / k).exp();
                let eff = k * (1.0 - ((k - 1.0) / k).powi(redundancy as i32));
                analytic_acc[scope_idx] += 1.0 - (1.0 - p_pool).powf(eff);
                queue.push(
                    t + SimTime::from_secs(u64::from(ttl)),
                    Event::Probe { scope_idx },
                );
            }
        }
    }

    // Pool-level cache behaviour, on the sim's registry: the reference
    // implementation's hit/miss/expiry mix, comparable across runs.
    for (k, pool) in pools.iter().enumerate() {
        pool.export_metrics(sim.metrics(), &format!("microsim.pool{k}"));
    }

    let comparisons: Vec<ScopeComparison> = scopes
        .iter()
        .enumerate()
        .filter(|(i, _)| probes[*i] > 0)
        .map(|(i, (scope, rate))| ScopeComparison {
            scope: *scope,
            rate: *rate,
            event_hit_rate: f64::from(hits[i]) / f64::from(probes[i]),
            analytic_hit_rate: analytic_acc[i] / f64::from(probes[i]),
        })
        .collect();
    let diffs: Vec<f64> = comparisons
        .iter()
        .map(|c| (c.event_hit_rate - c.analytic_hit_rate).abs())
        .collect();
    MicroSimReport {
        probes_per_scope: probes.iter().copied().max().unwrap_or(0),
        mean_abs_diff: diffs.iter().sum::<f64>() / diffs.len().max(1) as f64,
        max_abs_diff: diffs.iter().copied().fold(0.0, f64::max),
        scopes: comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clientmap_world::{World, WorldConfig};

    #[test]
    fn analytic_model_matches_event_simulation() {
        let sim = Sim::new(World::generate(WorldConfig::tiny(81)));
        let domain: DomainName = "www.google.com".parse().unwrap();
        // Pick the busiest probeable PoP.
        let pop = crate::pops::probeable_pops()
            .max_by(|a, b| {
                sim.gpdns()
                    .pop_load(*a)
                    .total_cmp(&sim.gpdns().pop_load(*b))
            })
            .expect("pops exist");
        let report = validate_liveness_model(&sim, pop, &domain, 30, 36.0, 5, 7);
        assert!(
            report.scopes.len() >= 10,
            "too few scopes: {}",
            report.scopes.len()
        );
        assert!(report.probes_per_scope > 100);
        // The closed form is exact for Poisson arrivals; differences are
        // sampling noise (~1/√n) plus the within-window probe-time bias.
        assert!(
            report.mean_abs_diff < 0.06,
            "mean |event − analytic| = {:.3}",
            report.mean_abs_diff
        );
        assert!(
            report.max_abs_diff < 0.25,
            "worst scope diff {:.3}",
            report.max_abs_diff
        );
    }

    #[test]
    fn saturated_and_dead_scopes_agree_exactly() {
        let sim = Sim::new(World::generate(WorldConfig::tiny(82)));
        let domain: DomainName = "www.google.com".parse().unwrap();
        let pop = crate::pops::probeable_pops().next().unwrap();
        let report = validate_liveness_model(&sim, pop, &domain, 40, 24.0, 5, 9);
        for c in &report.scopes {
            // Very busy scopes: both sides ≈ 1.
            if c.rate * 300.0 > 20.0 {
                assert!(c.event_hit_rate > 0.95, "{:?}", c);
                assert!(c.analytic_hit_rate > 0.95, "{:?}", c);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Sim::new(World::generate(WorldConfig::tiny(83)));
        let domain: DomainName = "facebook.com".parse().unwrap();
        let pop = crate::pops::probeable_pops().next().unwrap();
        let a = validate_liveness_model(&sim, pop, &domain, 10, 24.0, 5, 5);
        let b = validate_liveness_model(&sim, pop, &domain, 10, 24.0, 5, 5);
        assert_eq!(a.scopes.len(), b.scopes.len());
        assert_eq!(a.mean_abs_diff, b.mean_abs_diff);
    }
}
